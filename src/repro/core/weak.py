"""Kernel-level weak-transition engine: tau-SCC condensation + bitset saturation.

Theorem 4.1(a) reduces observational equivalence to strong partition
refinement on the saturated process ``P_hat`` whose arcs are the weak
transitions ``p =>^a q`` / ``p =>^epsilon q``.  The dict-based construction in
:mod:`repro.core.derivatives` (one BFS per state over string-keyed frozensets)
is the readable reference; this module is the engineered implementation that
runs directly on the integer-indexed CSR :class:`~repro.core.lts.LTS` kernel:

1. **tau-SCC condensation** -- an iterative Tarjan strongly-connected-
   components pass over the tau-sub-relation of the CSR arrays.  All states of
   one tau-SCC have the same tau-closure (and therefore identical weak
   transitions), so every subsequent computation is per-SCC, not per-state.
   Tarjan emits SCCs children-first, i.e. in reverse topological order of the
   condensation DAG, which is exactly the order the propagation below needs.

2. **bitset closure propagation** -- tau-closures are Python-int bitsets
   (bit ``i`` = state ``i``).  Walking the SCCs in emission order, the closure
   of an SCC is the bitset of its members OR-ed with the (already final)
   closures of its direct tau-successor SCCs: ``O(n_scc + m_tau)`` big-int
   unions, each word-parallel, instead of one BFS per state.

3. **saturated-LTS emission** -- for every observable action ``a`` the weak
   relation satisfies the same condensation recurrence
   ``W_a(C) = (U_{s in C} step_a(s)) | (U_{C -tau-> C'} W_a(C'))`` with
   ``step_a(s) = U_{s -a-> t} closure(t)``, so one more bottom-up sweep per
   action yields all weak successor sets.  The arcs are written straight into
   CSR arrays in ``(source, action, target)`` order (bit extraction yields
   ascending targets), and the result is adopted by
   :meth:`~repro.core.lts.LTS.from_csr` without ever materialising a
   dict-of-frozensets FSP.

The total work is ``O((n + m) * n / w)`` bitset words plus the size of the
saturated relation itself (which is the output and may be ``Theta(n^2)`` on
tau-dense inputs) -- compare the reference route's ``O(n * (n + m))`` hashed
set operations *plus* an ``O(m_hat)`` pass through FSP validation and
re-interning.  ``BENCH_partition.json``'s weak section records the measured
gap on the tau-heavy generator families.

Example
-------

On ``p -tau-> q -a-> r`` the weak layer sees through the internal move: the
tau-closure of ``p`` contains ``q``, so ``p`` has the weak ``a``-transition
``p =>^a r``, and saturation replaces the tau arc with explicit
``epsilon``-arcs (one per closure pair, reflexive included):

>>> from repro.core.fsp import from_transitions
>>> process = from_transitions(
...     [("p", "τ", "q"), ("q", "a", "r")],
...     start="p", accepting=["p", "q", "r"], alphabet={"a"},
... )
>>> from repro.core.lts import LTS
>>> from repro.core.weak import WeakKernel, saturate_lts
>>> kernel = WeakKernel.from_fsp(process)
>>> sorted(kernel.epsilon_closure("p"))
['p', 'q']
>>> sorted(kernel.weak_successors("p", "a"))
['r']
>>> saturated = saturate_lts(LTS.from_fsp(process, include_tau=True))
>>> saturated.num_transitions, sorted(saturated.action_names)
(6, ['a', 'ε'])
"""

from __future__ import annotations

from array import array
from collections.abc import Iterator, Sequence

from repro.core.errors import InvalidProcessError
from repro.core.fsp import EPSILON, TAU
from repro.core.lts import INDEX_TYPECODE, LTS


def tau_action_index(lts: LTS) -> int:
    """The interned index of :data:`~repro.core.fsp.TAU`, or ``-1`` when tau-free."""
    try:
        return lts.action_names.index(TAU)
    except ValueError:
        return -1


def tau_successor_lists(lts: LTS) -> list[Sequence[int]]:
    """Per-state lists of tau-successors (a shared empty tuple when none)."""
    tau = tau_action_index(lts)
    empty: tuple[int, ...] = ()
    succ: list[Sequence[int]] = [empty] * lts.n
    if tau < 0:
        return succ
    offsets, arc_actions, arc_targets = lts.fwd_offsets, lts.fwd_actions, lts.fwd_targets
    for src in range(lts.n):
        targets = [
            arc_targets[i]
            for i in range(offsets[src], offsets[src + 1])
            if arc_actions[i] == tau
        ]
        if targets:
            succ[src] = targets
    return succ


def tau_scc(
    lts: LTS, tau_succ: list[Sequence[int]] | None = None
) -> tuple[list[int], list[list[int]]]:
    """Tarjan SCC decomposition of the tau-sub-relation.

    Returns ``(scc_of, sccs)`` where ``scc_of[s]`` is the component id of
    state ``s`` and ``sccs[c]`` lists the members of component ``c``.
    Components are numbered in Tarjan emission order, which is *reverse
    topological*: every tau-arc between distinct components goes from a higher
    id to a strictly lower one.  The implementation is iterative (an explicit
    ``(state, next-child)`` stack), so deep tau-chains cannot hit the Python
    recursion limit.
    """
    n = lts.n
    succ = tau_succ if tau_succ is not None else tau_successor_lists(lts)
    index_of = [-1] * n
    low = [0] * n
    on_stack = bytearray(n)
    component_stack: list[int] = []
    scc_of = [-1] * n
    sccs: list[list[int]] = []
    counter = 0
    for root in range(n):
        if index_of[root] != -1:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            state, child = work.pop()
            if child == 0:
                index_of[state] = low[state] = counter
                counter += 1
                component_stack.append(state)
                on_stack[state] = 1
            descended = False
            children = succ[state]
            for i in range(child, len(children)):
                nxt = children[i]
                if index_of[nxt] == -1:
                    work.append((state, i + 1))
                    work.append((nxt, 0))
                    descended = True
                    break
                if on_stack[nxt] and index_of[nxt] < low[state]:
                    low[state] = index_of[nxt]
            if descended:
                continue
            if low[state] == index_of[state]:
                members: list[int] = []
                component = len(sccs)
                while True:
                    member = component_stack.pop()
                    on_stack[member] = 0
                    scc_of[member] = component
                    members.append(member)
                    if member == state:
                        break
                sccs.append(members)
            if work:
                parent = work[-1][0]
                if low[state] < low[parent]:
                    low[parent] = low[state]
    return scc_of, sccs


def _scc_successors(
    scc_of: list[int], sccs: list[list[int]], tau_succ: list[Sequence[int]]
) -> list[list[int]]:
    """Deduplicated direct successor components of each component in the condensation."""
    out: list[list[int]] = []
    for component, members in enumerate(sccs):
        seen: set[int] = set()
        for state in members:
            for target in tau_succ[state]:
                other = scc_of[target]
                if other != component:
                    seen.add(other)
        out.append(sorted(seen))
    return out


def _propagate(
    sccs: list[list[int]],
    scc_succs: list[list[int]],
    seed_bits: dict[int, int] | None,
) -> list[int]:
    """Bottom-up bitset DP over the condensation DAG, one value per component.

    Computes ``bits(C) = (U_{s in C} seed(s)) | (U_{C -tau-> C'} bits(C'))``
    walking components in their numbering order, which :func:`tau_scc`
    guarantees is children-first -- so every successor's value is final when
    it is read.  ``seed_bits`` maps a state to its seed bitset; ``None`` means
    the identity seed ``1 << s`` (which yields the tau-closures).  This single
    recurrence is both the closure computation and, seeded with
    ``step_a(s) = U closure(succ_a(s))``, the per-action weak relation.
    """
    out = [0] * len(sccs)
    for component, members in enumerate(sccs):
        bits = 0
        if seed_bits is None:
            for state in members:
                bits |= 1 << state
        else:
            for state in members:
                bits |= seed_bits.get(state, 0)
        for other in scc_succs[component]:
            bits |= out[other]
        out[component] = bits
    return out


def tau_closure_bits(lts: LTS) -> list[int]:
    """Per-state tau-closures ``{q | p =>^epsilon q}`` as Python-int bitsets.

    Bit ``i`` of ``closure[s]`` is set iff state ``i`` is tau-reachable from
    ``s`` (reflexively, so ``closure[s]`` always contains ``s``).
    """
    tau_succ = tau_successor_lists(lts)
    scc_of, sccs = tau_scc(lts, tau_succ)
    scc_bits = _propagate(sccs, _scc_successors(scc_of, sccs, tau_succ), None)
    return [scc_bits[scc_of[s]] for s in range(lts.n)]


def bits_to_indices(bits: int) -> list[int]:
    """The set bit positions of a bitset, ascending."""
    out: list[int] = []
    while bits:
        low = bits & -bits
        out.append(low.bit_length() - 1)
        bits ^= low
    return out


def bits_iter(bits: int) -> Iterator[int]:
    """Iterate the set bit positions of a bitset (ascending), without a list."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


#: Execution backends understood by :func:`saturate_lts`.
SATURATION_BACKENDS = ("python", "vector")


def _saturation_alphabet(lts: LTS, epsilon_action: str) -> tuple[list[str], list[int], int]:
    """Validate the epsilon marker and build the saturated action table.

    Returns ``(sat_action_names, action_map, epsilon_id)`` where ``action_map``
    sends an input action id to its saturated id (tau has no image; labels
    outside the observable alphabet are tolerated only while arc-free,
    otherwise their weak transitions would be silently dropped).
    """
    if epsilon_action == TAU or epsilon_action in lts.action_names:
        raise InvalidProcessError(
            f"epsilon marker {epsilon_action!r} collides with the process alphabet"
        )
    if lts.observable_alphabet is not None:
        observable = [a for a in lts.observable_alphabet if a != TAU]
    else:
        observable = [a for a in lts.action_names if a != TAU]
    sat_action_names = sorted(set(observable) | {epsilon_action})
    sat_index = {name: i for i, name in enumerate(sat_action_names)}
    used_actions = set(lts.fwd_actions)
    action_map: list[int] = []
    for act_id, name in enumerate(lts.action_names):
        if name == TAU:
            action_map.append(-1)
            continue
        mapped = sat_index.get(name)
        if mapped is None:
            if act_id in used_actions:
                raise InvalidProcessError(
                    f"action {name!r} carries arcs but is outside the observable alphabet"
                )
            action_map.append(-1)
            continue
        action_map.append(mapped)
    return sat_action_names, action_map, sat_index[epsilon_action]


def saturate_lts(lts: LTS, epsilon_action: str = EPSILON, backend: str = "python") -> LTS:
    """The saturated kernel ``P_hat`` of Theorem 4.1(a), entirely in CSR form.

    The result has the same states (and ``ext_sets`` / ``variables``) as the
    input; its actions are the observable alphabet plus ``epsilon_action``,
    and its arcs are exactly the weak transitions: ``p --a--> q`` iff
    ``p =>^a q`` and ``p --epsilon--> q`` iff ``p =>^epsilon q`` (reflexive,
    so every state carries an epsilon self-loop).  ``to_fsp()`` of the result
    equals :func:`repro.core.derivatives.saturate_reference` of the input's
    FSP -- the property tests pin that down.

    ``backend="python"`` runs the Python-int bitset propagation below;
    ``backend="vector"`` computes the identical result with packed-``uint64``
    numpy bitset matrices (one row per tau-SCC) and whole-array emission --
    see :func:`_saturate_lts_vector`.  ``backend="auto"`` dispatches by
    state count: vector at or above
    :data:`repro.partition.generalized.VECTOR_STATE_THRESHOLD` states when
    numpy is available, python otherwise.

    Raises
    ------
    InvalidProcessError
        If ``epsilon_action`` collides with an existing action or tau.
    """
    if backend == "auto":
        # Saturation and partition refinement share one crossover point:
        # the vector kernels win on the same large instances.
        from repro.partition.generalized import resolve_backend

        backend = resolve_backend(backend, lts.n)
    if backend not in SATURATION_BACKENDS:
        raise InvalidProcessError(
            f"unknown saturation backend {backend!r}; "
            f"choose from {', '.join(SATURATION_BACKENDS)} or 'auto'"
        )
    if backend == "vector":
        return _saturate_lts_vector(lts, epsilon_action)
    sat_action_names, action_map, epsilon_id = _saturation_alphabet(lts, epsilon_action)
    n = lts.n
    tau = tau_action_index(lts)
    tau_succ = tau_successor_lists(lts)
    scc_of, sccs = tau_scc(lts, tau_succ)
    scc_succs = _scc_successors(scc_of, sccs, tau_succ)
    # Closures per SCC, children-first.
    closure_bits = _propagate(sccs, scc_succs, None)

    # step_a(s) = union of closure(t) over a-arcs s -> t, for observable a.
    offsets, arc_actions, arc_targets = lts.fwd_offsets, lts.fwd_actions, lts.fwd_targets
    step: dict[int, dict[int, int]] = {}  # saturated action id -> {state: bits}
    for src in range(n):
        for i in range(offsets[src], offsets[src + 1]):
            act = arc_actions[i]
            if act == tau:
                continue
            per_state = step.setdefault(action_map[act], {})
            per_state[src] = per_state.get(src, 0) | closure_bits[scc_of[arc_targets[i]]]

    # W_a per SCC via the same children-first recurrence.
    weak = {
        act_id: _propagate(sccs, scc_succs, per_state) for act_id, per_state in step.items()
    }

    # Emit CSR arcs in (source, action, target) order.  All members of one
    # SCC share each target list, so extraction is cached per (action, SCC).
    target_cache: dict[tuple[int, int], list[int]] = {}
    sat_offsets = array(INDEX_TYPECODE, bytes(array(INDEX_TYPECODE).itemsize * (n + 1)))
    sat_actions_chunks: list[array] = []
    sat_targets_chunks: list[array] = []
    total = 0
    for src in range(n):
        component = scc_of[src]
        for act_id in range(len(sat_action_names)):
            if act_id == epsilon_id:
                key = (epsilon_id, component)
                targets = target_cache.get(key)
                if targets is None:
                    targets = bits_to_indices(closure_bits[component])
                    target_cache[key] = targets
            else:
                w = weak.get(act_id)
                if w is None or not w[component]:
                    continue
                key = (act_id, component)
                targets = target_cache.get(key)
                if targets is None:
                    targets = bits_to_indices(w[component])
                    target_cache[key] = targets
            count = len(targets)
            sat_actions_chunks.append(array(INDEX_TYPECODE, [act_id] * count))
            sat_targets_chunks.append(array(INDEX_TYPECODE, targets))
            total += count
        sat_offsets[src + 1] = total

    sat_actions = array(INDEX_TYPECODE)
    sat_targets = array(INDEX_TYPECODE)
    for chunk in sat_actions_chunks:
        sat_actions.extend(chunk)
    for chunk in sat_targets_chunks:
        sat_targets.extend(chunk)

    return LTS.from_csr(
        lts.state_names,
        sat_action_names,
        sat_offsets,
        sat_actions,
        sat_targets,
        start=lts.start,
        ext_sets=lts.ext_sets,
        variables=lts.variables,
        observable_alphabet=tuple(sat_action_names),
    )


def _propagate_packed(np, matrix, scc_succs) -> None:
    """In-place children-first OR-propagation over a packed bitset matrix.

    ``matrix`` holds one ``uint64`` row per tau-SCC (bit ``i`` = state ``i``),
    pre-seeded; components are walked in :func:`tau_scc` emission order, so
    every successor row is final when OR-ed in -- the packed twin of
    :func:`_propagate`, with each union a word-parallel numpy row OR instead
    of a Python big-int ``|``.
    """
    for component, succs in enumerate(scc_succs):
        if not succs:
            continue
        row = matrix[component]
        for other in succs:
            np.bitwise_or(row, matrix[other], out=row)


def _row_targets(np, row, n: int):
    """The set bit positions of one packed row, ascending, as ``int64``."""
    bits = np.unpackbits(row.view(np.uint8), count=n, bitorder="little")
    return np.flatnonzero(bits).astype(np.int64)


def _emit_action_arcs(np, n: int, scc_of, per_comp_targets):
    """Flatten per-SCC target lists into per-state ``(sources, targets)`` arcs.

    Every state emits its component's target list; the expansion is pure
    array work: per-state counts gathered through ``scc_of``, then one
    ``arange``-minus-``repeat`` pass builds the gather index into the
    concatenated per-component targets.
    """
    lengths = np.array([len(t) for t in per_comp_targets], dtype=np.int64)
    if not lengths.sum():
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    flat = np.concatenate(per_comp_targets)
    comp_starts = np.zeros(len(lengths), dtype=np.int64)
    np.cumsum(lengths[:-1], out=comp_starts[1:])
    counts = lengths[scc_of]
    total = int(counts.sum())
    starts = np.repeat(comp_starts[scc_of], counts)
    run_starts = np.zeros(n, dtype=np.int64)
    np.cumsum(counts[:-1], out=run_starts[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(run_starts, counts)
    sources = np.repeat(np.arange(n, dtype=np.int64), counts)
    return sources, flat[starts + within]


def _saturate_lts_vector(lts: LTS, epsilon_action: str = EPSILON) -> LTS:
    """Packed-bitset twin of :func:`saturate_lts` (``backend="vector"``).

    Same tau-SCC condensation (the iterative Tarjan pass stays Python --
    it is ``O(n + m_tau)`` and sequential by nature), but the closure and
    per-action weak relations live in ``(num_sccs, ceil(n/64))`` ``uint64``
    matrices: seeding, the children-first DP and the arc emission are all
    whole-array numpy passes, so the ``O((n + m) * n / w)`` bitset words of
    the closure run at machine width with no per-bit Python cost.
    """
    from repro.utils.matrices import require_numpy

    np = require_numpy()
    sat_action_names, action_map, epsilon_id = _saturation_alphabet(lts, epsilon_action)
    n = lts.n
    tau_succ = tau_successor_lists(lts)
    scc_of_list, sccs = tau_scc(lts, tau_succ)
    scc_succs = _scc_successors(scc_of_list, sccs, tau_succ)
    num_sccs = max(len(sccs), 1)
    scc_of = np.asarray(scc_of_list, dtype=np.int64) if n else np.zeros(0, dtype=np.int64)
    words = max((n + 63) // 64, 1)

    # Closure matrix, identity-seeded: bit s of row scc_of[s] for every state.
    closure = np.zeros((num_sccs, words), dtype=np.uint64)
    if n:
        states = np.arange(n, dtype=np.int64)
        one = np.uint64(1)
        np.bitwise_or.at(
            closure,
            (scc_of, states >> 6),
            np.left_shift(one, (states & 63).astype(np.uint64)),
        )
    _propagate_packed(np, closure, scc_succs)

    # Arc columns (int64 views over the CSR arrays).
    m = lts.num_transitions
    if m:
        arc_sources = np.repeat(
            np.arange(n, dtype=np.int64),
            np.diff(np.frombuffer(lts.fwd_offsets, dtype=np.int64)),
        )
        arc_actions = np.frombuffer(lts.fwd_actions, dtype=np.int64)
        arc_targets = np.frombuffer(lts.fwd_targets, dtype=np.int64)
    else:
        arc_sources = arc_actions = arc_targets = np.zeros(0, dtype=np.int64)

    # Weak matrices per observable action: seed W_a rows with
    # step_a = OR of closure(scc(target)) over that action's arcs, grouped by
    # source component (sort + bitwise_or.reduceat), then the same DP.
    action_map_np = np.asarray(action_map, dtype=np.int64) if action_map else np.zeros(
        0, dtype=np.int64
    )
    weak: dict[int, object] = {}
    if m:
        sat_acts = action_map_np[arc_actions]
        observable_mask = sat_acts >= 0
        obs_acts = sat_acts[observable_mask]
        obs_comps = scc_of[arc_sources[observable_mask]]
        obs_rows = closure[scc_of[arc_targets[observable_mask]]]
        for act_id in np.unique(obs_acts):
            in_act = obs_acts == act_id
            comps = obs_comps[in_act]
            rows = obs_rows[in_act]
            order = np.argsort(comps, kind="stable")
            comps = comps[order]
            rows = rows[order]
            run_starts = np.ones(len(comps), dtype=bool)
            run_starts[1:] = comps[1:] != comps[:-1]
            starts = np.flatnonzero(run_starts)
            matrix = np.zeros((num_sccs, words), dtype=np.uint64)
            matrix[comps[starts]] = np.bitwise_or.reduceat(rows, starts, axis=0)
            _propagate_packed(np, matrix, scc_succs)
            weak[int(act_id)] = matrix

    # Emission: per (action, SCC) target lists via unpackbits, expanded to
    # per-state arcs, then one global (source, action, target) sort.
    src_parts, act_parts, dst_parts = [], [], []
    for act_id in range(len(sat_action_names)):
        matrix = closure if act_id == epsilon_id else weak.get(act_id)
        if matrix is None:
            continue
        per_comp = [_row_targets(np, matrix[c], n) for c in range(len(sccs))]
        sources, targets = _emit_action_arcs(np, n, scc_of, per_comp)
        if len(sources):
            src_parts.append(sources)
            act_parts.append(np.full(len(sources), act_id, dtype=np.int64))
            dst_parts.append(targets)
    if src_parts:
        sat_src = np.concatenate(src_parts)
        sat_act = np.concatenate(act_parts)
        sat_dst = np.concatenate(dst_parts)
        order = np.lexsort((sat_dst, sat_act, sat_src))
        sat_src, sat_act, sat_dst = sat_src[order], sat_act[order], sat_dst[order]
    else:
        sat_src = sat_act = sat_dst = np.zeros(0, dtype=np.int64)

    sat_offsets = array(INDEX_TYPECODE, bytes(array(INDEX_TYPECODE).itemsize * (n + 1)))
    if len(sat_src):
        offsets_np = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(sat_src, minlength=n), out=offsets_np[1:])
        sat_offsets = array(INDEX_TYPECODE)
        sat_offsets.frombytes(offsets_np.tobytes())
    sat_actions = array(INDEX_TYPECODE)
    sat_actions.frombytes(sat_act.tobytes())
    sat_targets = array(INDEX_TYPECODE)
    sat_targets.frombytes(sat_dst.tobytes())

    return LTS.from_csr(
        lts.state_names,
        sat_action_names,
        sat_offsets,
        sat_actions,
        sat_targets,
        start=lts.start,
        ext_sets=lts.ext_sets,
        variables=lts.variables,
        observable_alphabet=tuple(sat_action_names),
    )


class WeakKernel:
    """Cached kernel-side weak-transition queries for one FSP.

    This is the engine room behind
    :class:`repro.core.derivatives.WeakTransitionView` and the FSP-level
    helpers: the process is interned once into the CSR kernel, the tau-SCC
    condensation and closure bitsets are computed once, and each observable
    action's weak relation is materialised lazily (per tau-SCC, not per
    state) the first time it is queried.  All answers are translated back to
    the string-named world at the boundary.
    """

    __slots__ = (
        "lts",
        "_index",
        "_tau_succ",
        "_scc_of",
        "_sccs",
        "_scc_succs",
        "_closure_scc",
        "_weak_scc",
        "_action_id",
        "_names_cache",
        "_weak_arc_triples",
    )

    def __init__(self, lts: LTS) -> None:
        self.lts = lts
        self._index = {name: i for i, name in enumerate(lts.state_names)}
        self._tau_succ = tau_successor_lists(lts)
        self._scc_of, self._sccs = tau_scc(lts, self._tau_succ)
        self._scc_succs = _scc_successors(self._scc_of, self._sccs, self._tau_succ)
        self._closure_scc = _propagate(self._sccs, self._scc_succs, None)
        self._weak_scc: dict[str, list[int]] = {}
        self._action_id = {name: i for i, name in enumerate(lts.action_names)}
        self._names_cache: dict[int, frozenset[str]] = {}
        self._weak_arc_triples: list[tuple[str, str, str]] | None = None

    @classmethod
    def from_fsp(cls, fsp) -> "WeakKernel":
        return cls(LTS.from_fsp(fsp, include_tau=True))

    # ------------------------------------------------------------------
    # bit-level queries
    # ------------------------------------------------------------------
    def state_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise InvalidProcessError(f"{name!r} is not a state of this process") from None

    def closure_bits(self, state: int) -> int:
        """Tau-closure of one interned state as a bitset."""
        return self._closure_scc[self._scc_of[state]]

    def weak_bits(self, state: int, action: str) -> int:
        """Weak ``action``-successors of one interned state as a bitset.

        ``action == EPSILON`` yields the tau-closure; :data:`TAU` is rejected
        (weak moves are indexed by observable actions only).
        """
        if action == EPSILON:
            return self.closure_bits(state)
        if action == TAU:
            raise InvalidProcessError(
                "weak successors are indexed by observable actions or EPSILON, not TAU"
            )
        table = self._weak_scc.get(action)
        if table is None:
            table = self._build_weak_table(action)
        return table[self._scc_of[state]]

    def _build_weak_table(self, action: str) -> list[int]:
        lts = self.lts
        scc_of, closure = self._scc_of, self._closure_scc
        act = self._action_id.get(action, -1)
        step: dict[int, int] = {}
        if act >= 0:
            offsets, arc_actions, arc_targets = (
                lts.fwd_offsets,
                lts.fwd_actions,
                lts.fwd_targets,
            )
            for src in range(lts.n):
                bits = 0
                for i in range(offsets[src], offsets[src + 1]):
                    if arc_actions[i] == act:
                        bits |= closure[scc_of[arc_targets[i]]]
                if bits:
                    step[src] = bits
        table = _propagate(self._sccs, self._scc_succs, step)
        self._weak_scc[action] = table
        return table

    def names_of(self, bits: int) -> frozenset[str]:
        """Translate a state bitset back to a frozenset of state names (cached)."""
        cached = self._names_cache.get(bits)
        if cached is None:
            names = self.lts.state_names
            cached = frozenset(names[i] for i in bits_to_indices(bits))
            self._names_cache[bits] = cached
        return cached

    # ------------------------------------------------------------------
    # string-named convenience layer
    # ------------------------------------------------------------------
    def closure_dict(self) -> dict[str, frozenset[str]]:
        """The full tau-closure as the dict the reference implementation returns."""
        names = self.lts.state_names
        return {
            name: self.names_of(self._closure_scc[self._scc_of[i]])
            for i, name in enumerate(names)
        }

    def epsilon_closure(self, state: str) -> frozenset[str]:
        return self.names_of(self.closure_bits(self.state_index(state)))

    def weak_successors(self, state: str, action: str) -> frozenset[str]:
        return self.names_of(self.weak_bits(self.state_index(state), action))

    def weak_arc_triples(self) -> list[tuple[str, str, str]]:
        """All observable weak arcs ``(source, action, target)`` as name triples.

        This is the epsilon-free half of the saturation, rendered once in the
        string-named world and cached: the arc set of every
        :func:`repro.equivalence.language.weak_language_nfa` over this
        process, whatever its root and accepting set.
        """
        if self._weak_arc_triples is None:
            names = self.lts.state_names
            scc_of = self._scc_of
            triples: list[tuple[str, str, str]] = []
            for action in self.lts.action_names:
                if action == TAU:
                    continue
                table = self._weak_scc.get(action)
                if table is None:
                    table = self._build_weak_table(action)
                for src in range(self.lts.n):
                    bits = table[scc_of[src]]
                    if bits:
                        src_name = names[src]
                        triples.extend((src_name, action, names[t]) for t in bits_iter(bits))
            self._weak_arc_triples = triples
        return self._weak_arc_triples
