"""The co-action convention shared by every layer that speaks CCS actions.

CCS pairs each channel ``a`` with a complementary *co-action* (Milner's
``a-bar``), rendered here with a ``!`` suffix: the co-action of ``a`` is
``a!`` and vice versa.  Synchronisation in parallel composition happens
exactly between an action and its complement and produces the unobservable
``tau``.

Historically the term layer (:mod:`repro.ccs.syntax`) and the state-machine
layer (:mod:`repro.core.composition`) each carried a private copy of this
convention; this module is the single home both now import, and the lazy
product constructions of :mod:`repro.explore` build on it as well.

The helpers are deliberately tau-agnostic: neither ``tau`` spelling (the
term-level ``"tau"`` or the kernel-level ``"τ"``) is special-cased here, so
callers that must reject tau (the term calculus does) keep that check at
their own layer.
"""

from __future__ import annotations

#: Suffix marking a co-action (the "bar" of CCS): the co-action of ``a`` is ``a!``.
CO_SUFFIX = "!"


def co_action(action: str) -> str:
    """The complementary action: ``co_action("a") == "a!"`` and ``co_action("a!") == "a"``."""
    return action[:-1] if action.endswith(CO_SUFFIX) else action + CO_SUFFIX


def channel_of(action: str) -> str:
    """The channel name of an action or co-action (``channel_of("a!") == "a"``)."""
    return action[:-1] if action.endswith(CO_SUFFIX) else action


def is_co_action(action: str) -> bool:
    """Whether the action is a co-action (an output in the usual reading)."""
    return action.endswith(CO_SUFFIX)


def channel_closure(channels) -> frozenset[str]:
    """The set of actions touching any of ``channels``: each channel and its co-action.

    Restriction and hiding both internalise whole *channels*, which means
    removing or renaming the channel's action and co-action together; this
    helper builds that closed set once for both operators.
    """
    closed: set[str] = set()
    for channel in channels:
        closed.add(channel)
        closed.add(co_action(channel))
    return frozenset(closed)
