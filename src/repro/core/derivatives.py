"""Weak derivatives and the tau-saturation of Theorem 4.1(a).

Section 2.1 of the paper defines the *weak* transition relation ``p =>^s p'``
for a string ``s`` of observable actions: the process may interleave any
number of unobservable tau-moves before, between and after the observable
actions of ``s``.  In particular ``p =>^epsilon p'`` holds when ``p'`` is
reachable from ``p`` by tau-moves only (including the empty sequence, so the
relation is reflexive).

Theorem 4.1(a) decides observational equivalence by *saturating* a general FSP
``P`` into an observable FSP ``P_hat`` over the alphabet ``Sigma u {epsilon}``
whose transition relation is exactly the weak relation, and then checking
strong equivalence on ``P_hat``.  :func:`saturate` implements that
construction; the remaining helpers expose tau-closures, weak successor sets
and weak string derivatives, which are also the substrate for failure
semantics (Section 5) and for the language view of ``approx_1``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.errors import InvalidProcessError
from repro.core.fsp import EPSILON, FSP, TAU, State


def tau_closure(fsp: FSP) -> dict[State, frozenset[State]]:
    """The reflexive-transitive closure of the tau-transition relation.

    Returns a mapping from every state ``p`` to the set
    ``{p' | p =>^epsilon p'}``.  Computed by one breadth-first search per
    state, which is ``O(n * (n + m_tau))`` and entirely adequate for the
    process sizes this library targets; the matrix-product formulation the
    paper uses for its ``n^2.376`` bound is available in
    :mod:`repro.utils.matrices` for the benchmark harness.
    """
    closure: dict[State, frozenset[State]] = {}
    for origin in fsp.states:
        seen = {origin}
        frontier = [origin]
        while frontier:
            state = frontier.pop()
            for nxt in fsp.successors(state, TAU):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        closure[origin] = frozenset(seen)
    return closure


def closure_of_set(fsp: FSP, states: Iterable[State], closure: dict[State, frozenset[State]] | None = None) -> frozenset[State]:
    """The tau-closure of a *set* of states."""
    closure = closure if closure is not None else tau_closure(fsp)
    out: set[State] = set()
    for state in states:
        out |= closure[state]
    return frozenset(out)


def weak_successors(
    fsp: FSP,
    state: State,
    action: State,
    closure: dict[State, frozenset[State]] | None = None,
) -> frozenset[State]:
    """The set ``{p' | p =>^a p'}`` for a single observable action ``a``.

    Following the paper's decomposition, ``p =>^a q`` iff there exist ``p'``
    and ``p''`` with ``p =>^epsilon p' ->^a p'' =>^epsilon q``.  Passing
    ``action == EPSILON`` returns the plain tau-closure of ``state``.
    """
    closure = closure if closure is not None else tau_closure(fsp)
    if action == EPSILON:
        return closure[state]
    if action == TAU:
        raise InvalidProcessError(
            "weak successors are indexed by observable actions or EPSILON, not TAU"
        )
    result: set[State] = set()
    for pre in closure[state]:
        for mid in fsp.successors(pre, action):
            result |= closure[mid]
    return frozenset(result)


def weak_successors_of_set(
    fsp: FSP,
    states: Iterable[State],
    action: State,
    closure: dict[State, frozenset[State]] | None = None,
) -> frozenset[State]:
    """Weak ``action``-successors of a set of states (used by subset constructions)."""
    closure = closure if closure is not None else tau_closure(fsp)
    out: set[State] = set()
    for state in states:
        out |= weak_successors(fsp, state, action, closure)
    return frozenset(out)


def string_derivatives(
    fsp: FSP,
    state: State,
    string: Sequence[State],
    closure: dict[State, frozenset[State]] | None = None,
) -> frozenset[State]:
    """The set of ``s``-derivatives ``{p' | p =>^s p'}`` for a string ``s``.

    ``string`` is a sequence of observable actions; the empty sequence yields
    the tau-closure of ``state``.
    """
    closure = closure if closure is not None else tau_closure(fsp)
    current = closure[state]
    for action in string:
        current = weak_successors_of_set(fsp, current, action, closure)
        if not current:
            return frozenset()
    return current


def weak_initials(
    fsp: FSP,
    state: State,
    closure: dict[State, frozenset[State]] | None = None,
) -> frozenset[State]:
    """The observable actions ``a`` for which ``state =>^a`` holds.

    This is the complement-defining set for the failure semantics of
    Section 5: a refusal set ``Z`` is valid at ``p'`` exactly when
    ``Z`` is disjoint from ``weak_initials(p')``.
    """
    closure = closure if closure is not None else tau_closure(fsp)
    initials: set[State] = set()
    for action in fsp.alphabet:
        if weak_successors(fsp, state, action, closure):
            initials.add(action)
    return frozenset(initials)


def saturate(fsp: FSP, epsilon_action: str = EPSILON) -> FSP:
    """The observable FSP ``P_hat`` of Theorem 4.1(a).

    ``P_hat`` has the same states, variables and extensions as ``P`` but its
    alphabet is ``Sigma u {epsilon_action}`` and its transitions are exactly
    the weak transitions of ``P``:

    * ``p --a--> q`` in ``P_hat`` iff ``p =>^a q`` in ``P``, for ``a`` in
      ``Sigma``;
    * ``p --epsilon--> q`` in ``P_hat`` iff ``p =>^epsilon q`` in ``P``
      (note this includes a self-loop on every state because ``=>^epsilon``
      is reflexive).

    The key property (Proposition 2.2.1(c) + Theorem 4.1(a)) is that two
    states are observationally equivalent in ``P`` iff they are strongly
    equivalent in ``P_hat``.

    Parameters
    ----------
    fsp:
        Any general FSP.
    epsilon_action:
        The label used for the ``=>^epsilon`` relation.  It must not already
        belong to the alphabet.

    Raises
    ------
    InvalidProcessError
        If ``epsilon_action`` collides with an existing action.
    """
    if epsilon_action in fsp.alphabet or epsilon_action == TAU:
        raise InvalidProcessError(
            f"epsilon marker {epsilon_action!r} collides with the process alphabet"
        )
    closure = tau_closure(fsp)
    transitions: set[tuple[State, str, State]] = set()
    for state in fsp.states:
        for target in closure[state]:
            transitions.add((state, epsilon_action, target))
        for action in fsp.alphabet:
            for target in weak_successors(fsp, state, action, closure):
                transitions.add((state, action, target))
    return FSP(
        states=fsp.states,
        start=fsp.start,
        alphabet=fsp.alphabet | {epsilon_action},
        transitions=transitions,
        variables=fsp.variables,
        extensions=fsp.extensions,
    )


def observable_quotient_transitions(fsp: FSP) -> int:
    """Number of transitions of the saturated process (the ``|Delta_hat|`` of Theorem 4.1a).

    Exposed separately so benchmarks can report the saturation blow-up without
    materialising ``P_hat`` twice.
    """
    return saturate(fsp).num_transitions


class WeakTransitionView:
    """A cached view of the weak transition structure of one FSP.

    Several algorithms (failure equivalence, ``approx_k`` refinement, the
    language view) repeatedly need tau-closures and weak successor sets of the
    same process.  This small helper computes the tau-closure once and
    memoises weak successor queries.
    """

    def __init__(self, fsp: FSP) -> None:
        self._fsp = fsp
        self._closure = tau_closure(fsp)
        self._weak_cache: dict[tuple[State, str], frozenset[State]] = {}
        self._initials_cache: dict[State, frozenset[State]] = {}

    @property
    def fsp(self) -> FSP:
        return self._fsp

    @property
    def closure(self) -> dict[State, frozenset[State]]:
        return self._closure

    def epsilon_closure(self, state: State) -> frozenset[State]:
        return self._closure[state]

    def weak_successors(self, state: State, action: str) -> frozenset[State]:
        key = (state, action)
        if key not in self._weak_cache:
            self._weak_cache[key] = weak_successors(self._fsp, state, action, self._closure)
        return self._weak_cache[key]

    def weak_successors_of_set(self, states: Iterable[State], action: str) -> frozenset[State]:
        out: set[State] = set()
        for state in states:
            out |= self.weak_successors(state, action)
        return frozenset(out)

    def weak_initials(self, state: State) -> frozenset[State]:
        if state not in self._initials_cache:
            self._initials_cache[state] = frozenset(
                action for action in self._fsp.alphabet if self.weak_successors(state, action)
            )
        return self._initials_cache[state]

    def string_derivatives(self, state: State, string: Sequence[str]) -> frozenset[State]:
        current = self.epsilon_closure(state)
        for action in string:
            current = self.weak_successors_of_set(current, action)
            if not current:
                break
        return frozenset(current)
