"""Weak derivatives and the tau-saturation of Theorem 4.1(a).

Section 2.1 of the paper defines the *weak* transition relation ``p =>^s p'``
for a string ``s`` of observable actions: the process may interleave any
number of unobservable tau-moves before, between and after the observable
actions of ``s``.  In particular ``p =>^epsilon p'`` holds when ``p'`` is
reachable from ``p`` by tau-moves only (including the empty sequence, so the
relation is reflexive).

Theorem 4.1(a) decides observational equivalence by *saturating* a general FSP
``P`` into an observable FSP ``P_hat`` over the alphabet ``Sigma u {epsilon}``
whose transition relation is exactly the weak relation, and then checking
strong equivalence on ``P_hat``.  :func:`saturate` implements that
construction; the remaining helpers expose tau-closures, weak successor sets
and weak string derivatives, which are also the substrate for failure
semantics (Section 5) and for the language view of ``approx_1``.

Since the weak-transition engine landed, the closure and saturation entry
points are backed by :mod:`repro.core.weak` (tau-SCC condensation plus bitset
propagation on the integer CSR kernel).  The original dict-of-frozensets
implementations are retained verbatim as :func:`tau_closure_reference` and
:func:`saturate_reference`; they are the oracles the kernel's property tests
check against, and they remain the clearest rendering of the paper's
definitions.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.errors import InvalidProcessError
from repro.core.fsp import EPSILON, FSP, TAU, State
from repro.core.lts import LTS
from repro.core.weak import WeakKernel, bits_iter, saturate_lts


def tau_closure_reference(fsp: FSP) -> dict[State, frozenset[State]]:
    """Reference tau-closure: one breadth-first search per state.

    Returns a mapping from every state ``p`` to the set
    ``{p' | p =>^epsilon p'}``.  ``O(n * (n + m_tau))`` hashed set operations;
    kept as the oracle for :func:`tau_closure` (which computes the same map on
    the CSR kernel via tau-SCC condensation and bitset propagation).  The
    matrix-product formulation the paper uses for its ``n^2.376`` bound is
    available in :mod:`repro.utils.matrices` for the benchmark harness.
    """
    closure: dict[State, frozenset[State]] = {}
    for origin in fsp.states:
        seen = {origin}
        frontier = [origin]
        while frontier:
            state = frontier.pop()
            for nxt in fsp.successors(state, TAU):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        closure[origin] = frozenset(seen)
    return closure


def tau_closure(fsp: FSP) -> dict[State, frozenset[State]]:
    """The reflexive-transitive closure of the tau-transition relation.

    Returns a mapping from every state ``p`` to the set
    ``{p' | p =>^epsilon p'}``.  Computed on the integer kernel
    (:class:`repro.core.weak.WeakKernel`): one Tarjan pass over the tau
    sub-relation plus one bitset union per condensation arc, instead of one
    BFS per state.  Agrees with :func:`tau_closure_reference` by construction
    (and by the kernel property tests).
    """
    return WeakKernel.from_fsp(fsp).closure_dict()


def closure_of_set(
    fsp: FSP, states: Iterable[State], closure: dict[State, frozenset[State]] | None = None
) -> frozenset[State]:
    """The tau-closure of a *set* of states."""
    closure = closure if closure is not None else tau_closure(fsp)
    out: set[State] = set()
    for state in states:
        out |= closure[state]
    return frozenset(out)


def weak_successors(
    fsp: FSP,
    state: State,
    action: State,
    closure: dict[State, frozenset[State]] | None = None,
) -> frozenset[State]:
    """The set ``{p' | p =>^a p'}`` for a single observable action ``a``.

    Following the paper's decomposition, ``p =>^a q`` iff there exist ``p'``
    and ``p''`` with ``p =>^epsilon p' ->^a p'' =>^epsilon q``.  Passing
    ``action == EPSILON`` returns the plain tau-closure of ``state``.
    """
    closure = closure if closure is not None else tau_closure(fsp)
    if action == EPSILON:
        return closure[state]
    if action == TAU:
        raise InvalidProcessError(
            "weak successors are indexed by observable actions or EPSILON, not TAU"
        )
    result: set[State] = set()
    for pre in closure[state]:
        for mid in fsp.successors(pre, action):
            result |= closure[mid]
    return frozenset(result)


def weak_successors_of_set(
    fsp: FSP,
    states: Iterable[State],
    action: State,
    closure: dict[State, frozenset[State]] | None = None,
) -> frozenset[State]:
    """Weak ``action``-successors of a set of states (used by subset constructions)."""
    closure = closure if closure is not None else tau_closure(fsp)
    out: set[State] = set()
    for state in states:
        out |= weak_successors(fsp, state, action, closure)
    return frozenset(out)


def string_derivatives(
    fsp: FSP,
    state: State,
    string: Sequence[State],
    closure: dict[State, frozenset[State]] | None = None,
) -> frozenset[State]:
    """The set of ``s``-derivatives ``{p' | p =>^s p'}`` for a string ``s``.

    ``string`` is a sequence of observable actions; the empty sequence yields
    the tau-closure of ``state``.
    """
    closure = closure if closure is not None else tau_closure(fsp)
    current = closure[state]
    for action in string:
        current = weak_successors_of_set(fsp, current, action, closure)
        if not current:
            return frozenset()
    return current


def weak_initials(
    fsp: FSP,
    state: State,
    closure: dict[State, frozenset[State]] | None = None,
) -> frozenset[State]:
    """The *observable* actions ``a`` for which ``state =>^a`` holds.

    This is the complement-defining set for the failure semantics of
    Section 5: a refusal set ``Z`` is valid at ``p'`` exactly when
    ``Z`` is disjoint from ``weak_initials(p')``.

    Only observable actions are considered: the :data:`EPSILON` marker (which
    enters the alphabet of saturated processes and for which ``=>^epsilon``
    trivially holds at every state) is skipped, and :data:`TAU` -- were it
    ever handed in via a malformed alphabet -- is rejected by
    :func:`weak_successors`.
    """
    closure = closure if closure is not None else tau_closure(fsp)
    initials: set[State] = set()
    for action in fsp.alphabet:
        if action == EPSILON:
            continue
        if weak_successors(fsp, state, action, closure):
            initials.add(action)
    return frozenset(initials)


def saturate_reference(fsp: FSP, epsilon_action: str = EPSILON) -> FSP:
    """Reference construction of ``P_hat``: dict-of-frozensets, per-state loops.

    This is the original (pre-kernel) implementation of Theorem 4.1(a)'s
    saturation, kept verbatim as the oracle for :func:`saturate` and the
    weak-kernel property tests.
    """
    if epsilon_action in fsp.alphabet or epsilon_action == TAU:
        raise InvalidProcessError(
            f"epsilon marker {epsilon_action!r} collides with the process alphabet"
        )
    closure = tau_closure_reference(fsp)
    transitions: set[tuple[State, str, State]] = set()
    for state in fsp.states:
        for target in closure[state]:
            transitions.add((state, epsilon_action, target))
        for action in fsp.alphabet:
            for target in weak_successors(fsp, state, action, closure):
                transitions.add((state, action, target))
    return FSP(
        states=fsp.states,
        start=fsp.start,
        alphabet=fsp.alphabet | {epsilon_action},
        transitions=transitions,
        variables=fsp.variables,
        extensions=fsp.extensions,
    )


def saturate(fsp: FSP, epsilon_action: str = EPSILON) -> FSP:
    """The observable FSP ``P_hat`` of Theorem 4.1(a).

    ``P_hat`` has the same states, variables and extensions as ``P`` but its
    alphabet is ``Sigma u {epsilon_action}`` and its transitions are exactly
    the weak transitions of ``P``:

    * ``p --a--> q`` in ``P_hat`` iff ``p =>^a q`` in ``P``, for ``a`` in
      ``Sigma``;
    * ``p --epsilon--> q`` in ``P_hat`` iff ``p =>^epsilon q`` in ``P``
      (note this includes a self-loop on every state because ``=>^epsilon``
      is reflexive).

    The key property (Proposition 2.2.1(c) + Theorem 4.1(a)) is that two
    states are observationally equivalent in ``P`` iff they are strongly
    equivalent in ``P_hat``.

    Computed on the CSR kernel (:func:`repro.core.weak.saturate_lts`) and
    rendered back as an FSP; equal, state for state and arc for arc, to
    :func:`saturate_reference`.  Callers that go on to run partition
    refinement should prefer staying in kernel form
    (``saturate_lts(LTS.from_fsp(p, include_tau=True))``) and skip this FSP
    round-trip entirely, as :mod:`repro.equivalence.observational` does.

    Parameters
    ----------
    fsp:
        Any general FSP.
    epsilon_action:
        The label used for the ``=>^epsilon`` relation.  It must not already
        belong to the alphabet.

    Raises
    ------
    InvalidProcessError
        If ``epsilon_action`` collides with an existing action.
    """
    return saturate_lts(LTS.from_fsp(fsp, include_tau=True), epsilon_action).to_fsp()


def observable_quotient_transitions(fsp: FSP) -> int:
    """Number of transitions of the saturated process (the ``|Delta_hat|`` of Theorem 4.1a).

    Exposed separately so benchmarks can report the saturation blow-up without
    materialising ``P_hat`` at all (the count is read off the saturated CSR
    kernel).
    """
    return saturate_lts(LTS.from_fsp(fsp, include_tau=True)).num_transitions


class WeakTransitionView:
    """A cached view of the weak transition structure of one FSP.

    Several algorithms (failure equivalence, ``approx_k`` refinement, the
    language view) repeatedly need tau-closures and weak successor sets of the
    same process.  The view interns the process once into a
    :class:`~repro.core.weak.WeakKernel` and answers every query from its
    bitsets; the public API is unchanged from the dict era (all answers are
    ``frozenset``s of state names).

    Pass an existing ``kernel`` (built over ``LTS.from_fsp(fsp,
    include_tau=True)``) to share one interned kernel between several
    consumers -- the engine's :class:`~repro.engine.process.Process` handle
    does this so the view and the saturation pipeline reuse one tau-SCC
    decomposition.
    """

    def __init__(self, fsp: FSP, kernel: WeakKernel | None = None) -> None:
        self._fsp = fsp
        self._kernel = kernel if kernel is not None else WeakKernel.from_fsp(fsp)
        self._closure: dict[State, frozenset[State]] | None = None
        self._weak_cache: dict[tuple[State, str], frozenset[State]] = {}
        self._initials_cache: dict[State, frozenset[State]] = {}

    @property
    def fsp(self) -> FSP:
        return self._fsp

    @property
    def kernel(self) -> WeakKernel:
        """The backing kernel (for callers that want to stay in bitset form)."""
        return self._kernel

    @property
    def closure(self) -> dict[State, frozenset[State]]:
        if self._closure is None:
            self._closure = self._kernel.closure_dict()
        return self._closure

    def epsilon_closure(self, state: State) -> frozenset[State]:
        return self._kernel.epsilon_closure(state)

    def weak_successors(self, state: State, action: str) -> frozenset[State]:
        key = (state, action)
        cached = self._weak_cache.get(key)
        if cached is None:
            cached = self._kernel.weak_successors(state, action)
            self._weak_cache[key] = cached
        return cached

    def weak_successors_of_set(self, states: Iterable[State], action: str) -> frozenset[State]:
        kernel = self._kernel
        bits = 0
        for state in states:
            bits |= kernel.weak_bits(kernel.state_index(state), action)
        return kernel.names_of(bits)

    def weak_initials(self, state: State) -> frozenset[State]:
        cached = self._initials_cache.get(state)
        if cached is None:
            cached = frozenset(
                action
                for action in self._fsp.alphabet
                if action != EPSILON and self.weak_successors(state, action)
            )
            self._initials_cache[state] = cached
        return cached

    def string_derivatives(self, state: State, string: Sequence[str]) -> frozenset[State]:
        kernel = self._kernel
        bits = kernel.closure_bits(kernel.state_index(state))
        for action in string:
            step = 0
            for target in bits_iter(bits):
                step |= kernel.weak_bits(target, action)
            bits = step
            if not bits:
                break
        return kernel.names_of(bits)
