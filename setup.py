"""Packaging entry point.

The project is a plain setuptools package with a ``src`` layout.  A classic
``setup.py`` (rather than a PEP 517 build-system declaration) is used so that
``pip install -e .`` works in fully offline environments that lack the
``wheel`` package: pip then falls back to the legacy ``setup.py develop``
code path, which needs nothing beyond the locally installed setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Kanellakis & Smolka: CCS Expressions, Finite State "
        "Processes, and Three Problems of Equivalence"
    ),
    long_description=open("README.md", encoding="utf-8").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    author="Reproduction Authors",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis", "numpy", "scipy", "networkx"],
    },
    classifiers=[
        "Development Status :: 5 - Production/Stable",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
    ],
)
