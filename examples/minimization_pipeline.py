#!/usr/bin/env python3
"""A state-minimisation pipeline built on partition refinement.

Partition refinement does more than answer yes/no equivalence queries: the
coarsest stable partition is exactly the state-space quotient, i.e. the
smallest process with the same behaviour.  This example takes a deliberately
bloated process (every state duplicated several times, plus unobservable
chatter), minimises it under strong and under observational equivalence,
verifies the results, and compares the running time of the three
generalized-partitioning solvers of Section 3 on the same instance.

Run with:  python examples/minimization_pipeline.py
"""

from __future__ import annotations

import time

from repro.core.fsp import TAU, FSPBuilder
from repro.equivalence.minimize import minimize_observational, minimize_strong, reduction_ratio
from repro.equivalence.observational import observationally_equivalent_processes
from repro.equivalence.strong import strongly_equivalent_processes
from repro.partition.generalized import GeneralizedPartitioningInstance, Solver, solve
from repro.utils import serialization


def build_bloated_workflow(copies: int = 4, chatter: int = 3) -> "FSPBuilder":
    """A request/work/reply cycle where every stage is duplicated and tau-padded."""
    builder = FSPBuilder(alphabet={"request", "work", "reply"})
    stages = ["idle", "busy", "done"]
    actions = {"idle": "request", "busy": "work", "done": "reply"}
    for index, stage in enumerate(stages):
        next_stage = stages[(index + 1) % len(stages)]
        for copy_src in range(copies):
            # tau chatter inside a stage
            for step in range(chatter):
                builder.add_transition(
                    f"{stage}{copy_src}_t{step}", TAU, f"{stage}{copy_src}_t{step + 1}"
                )
                builder.add_transition(f"{stage}{copy_src}_t{step + 1}", TAU, f"{stage}{copy_src}_t0")
            for copy_dst in range(copies):
                builder.add_transition(
                    f"{stage}{copy_src}_t0", actions[stage], f"{next_stage}{copy_dst}_t0"
                )
    builder.mark_all_accepting()
    return builder.build(start="idle0_t0")


def main() -> None:
    bloated = build_bloated_workflow()
    print(f"bloated process: {bloated.num_states} states, {bloated.num_transitions} transitions")

    strong_min = minimize_strong(bloated)
    weak_min = minimize_observational(bloated)
    print(
        f"strong quotient:        {strong_min.num_states} states "
        f"({reduction_ratio(bloated, strong_min):.0%} reduction)"
    )
    print(
        f"observational quotient: {weak_min.num_states} states "
        f"({reduction_ratio(bloated, weak_min):.0%} reduction)"
    )
    print(f"strong quotient equivalent to original:        "
          f"{strongly_equivalent_processes(bloated, strong_min)}")
    print(f"observational quotient equivalent to original: "
          f"{observationally_equivalent_processes(bloated, weak_min)}")
    print()

    print("Solver comparison on the same generalized-partitioning instance")
    print("----------------------------------------------------------------")
    instance = GeneralizedPartitioningInstance.from_fsp(bloated, include_tau=True)
    for method in (Solver.NAIVE, Solver.KANELLAKIS_SMOLKA, Solver.PAIGE_TARJAN):
        started = time.perf_counter()
        partition = solve(instance, method)
        elapsed = (time.perf_counter() - started) * 1000
        print(f"  {method.value:<18} {len(partition):>4} blocks   {elapsed:8.2f} ms")
    print()

    document = serialization.dumps(weak_min)
    print(f"observational quotient serialised to JSON ({len(document)} characters); first lines:")
    print("\n".join(document.splitlines()[:8]))


if __name__ == "__main__":
    main()
