#!/usr/bin/env python3
"""Quickstart: build two processes and ask every equivalence question the paper studies.

The example models the classic vending-machine pair -- a machine that lets the
user choose the drink after inserting a coin, and one that commits internally
-- and runs the full battery of checks: language (approx_1), failure,
observational/strong equivalence, the approximation level at which they
separate, and a Hennessy-Milner formula explaining the difference.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    FSPBuilder,
    distinguishing_formula,
    failure_equivalent_processes,
    language_equivalent_processes,
    observationally_equivalent_processes,
    strongly_equivalent_processes,
)
from repro.equivalence.kobs import separation_level


def build_good_machine():
    """coin . (tea + coffee) -- the user keeps the choice."""
    builder = FSPBuilder(alphabet={"coin", "tea", "coffee"})
    builder.add_transition("idle", "coin", "paid")
    builder.add_transition("paid", "tea", "served")
    builder.add_transition("paid", "coffee", "served")
    builder.mark_all_accepting()
    return builder.build(start="idle")


def build_committing_machine():
    """coin . tea + coin . coffee -- the machine commits at the coin."""
    builder = FSPBuilder(alphabet={"coin", "tea", "coffee"})
    builder.add_transition("idle", "coin", "tea_only")
    builder.add_transition("idle", "coin", "coffee_only")
    builder.add_transition("tea_only", "tea", "served")
    builder.add_transition("coffee_only", "coffee", "served")
    builder.mark_all_accepting()
    return builder.build(start="idle")


def main() -> None:
    good = build_good_machine()
    committing = build_committing_machine()

    print("The two vending machines")
    print("------------------------")
    print(good.describe())
    print()
    print(committing.describe())
    print()

    print("Equivalence checks")
    print("------------------")
    print(f"language equivalent (approx_1): {language_equivalent_processes(good, committing)}")
    print(f"failure equivalent:             {failure_equivalent_processes(good, committing)}")
    print(f"observationally equivalent:     {observationally_equivalent_processes(good, committing)}")
    print(f"strongly equivalent:            {strongly_equivalent_processes(good, committing)}")

    combined = good.disjoint_union(committing)
    level = separation_level(combined, "L:idle", "R:idle")
    print(f"first approximation level that separates them: approx_{level}")

    formula = distinguishing_formula(combined, "L:idle", "R:idle", weak=True)
    print()
    print("A Hennessy-Milner formula satisfied by the good machine but not the committing one:")
    print(f"  {formula}")
    print()
    print(
        "Reading: after a coin the good machine can always still offer tea, whereas the\n"
        "committing machine may have silently discarded that option -- the difference the\n"
        "paper's observational (and failure) equivalence detects and language equivalence misses."
    )


if __name__ == "__main__":
    main()
