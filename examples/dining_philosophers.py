#!/usr/bin/env python3
"""Dining philosophers, explored on the fly (Section 6 / repro.explore).

The classic deadlock-prone protocol: ``n`` philosophers around a table, one
fork between each pair, everybody picks up the left fork first.  The system
is a CCS composition -- philosophers and forks in parallel, handshake
channels restricted -- and this script never builds the full product up
front:

1. count the reachable composed states implicitly;
2. find the deadlock (a reachable state with no moves) by lazy exploration;
3. minimise compositionally (components quotiented *before* the product)
   and cross-check against the eager minimise-after-compose route;
4. show the on-the-fly checker separating the symmetric table from an
   asymmetric (deadlock-free) variant early, with a verified trace check
   run along the way.
"""

from __future__ import annotations

from repro.engine import Engine
from repro.equivalence.minimize import minimize_observational
from repro.explore import (
    build_implicit,
    check_implicit,
    compose_eager,
    materialize,
    minimize_compositionally,
    reachable_stats,
)
from repro.generators.families import dining_philosophers_system


def main() -> None:
    seats = 3
    table = dining_philosophers_system(seats)
    implicit = build_implicit(table)

    stats = reachable_stats(implicit)
    print(f"dining philosophers, {seats} seats: {table.describe()}")
    print(f"  reachable composed states: {stats.states} ({stats.transitions} transitions)")

    # The deadlock: everybody holds their left fork.  A reachable state with
    # no outgoing moves is exactly a deadlocked configuration.
    composed = materialize(implicit)
    sources = {src for src, _action, _dst in composed.transitions}
    deadlocks = sorted(composed.states - sources)
    print(f"  reachable deadlocks: {len(deadlocks)}")
    for state in deadlocks:
        print(f"    {state}")

    compositional = minimize_compositionally(table)
    eager = minimize_observational(compose_eager(table))
    verdict = Engine().check(compositional, eager, "observational", align=True, witness=False)
    print(
        f"  compositional minimisation: {stats.states} -> {compositional.num_states} states "
        f"(eager route: {eager.num_states}; routes agree: {verdict.equivalent})"
    )

    # An asymmetric table (one left-handed philosopher) is deadlock-free, so
    # it is *not* observationally equivalent to the symmetric one; the
    # on-the-fly checker finds that without sweeping either product.
    result = check_implicit(implicit, build_implicit(_asymmetric_table(seats)), "observational")
    print(
        f"  symmetric vs asymmetric table: equivalent={result.equivalent} "
        f"({result.route}, {result.pairs_visited} pairs visited)"
    )


def _asymmetric_table(seats: int):
    """A table where philosopher 0 picks the right fork first (deadlock-free)."""
    from repro.core.fsp import FSPBuilder
    from repro.explore import LeafSpec, ProductSpec, RestrictSpec

    spec = dining_philosophers_system(seats)

    # Rebuild philosopher 0 with the fork order swapped, then graft it onto
    # the same spec tree (the innermost left leaf is philosopher 0).
    left, right = 0, 1 % seats
    builder = FSPBuilder(
        alphabet={f"pick{left}!", f"pick{right}!", f"put{left}!", f"put{right}!", "eat0"}
    )
    builder.add_transition("think", f"pick{right}!", "right_held")
    builder.add_transition("right_held", f"pick{left}!", "ready")
    builder.add_transition("ready", "eat0", "sated")
    builder.add_transition("sated", f"put{right}!", "dropping")
    builder.add_transition("dropping", f"put{left}!", "think")
    builder.mark_all_accepting()
    lefty = LeafSpec(builder.build(start="think"), label="lefty0")

    def swap(node):
        if isinstance(node, LeafSpec):
            return lefty if node.label == "phil0" else node
        if isinstance(node, ProductSpec):
            return ProductSpec(node.op, swap(node.left), swap(node.right), node.extension_mode)
        if isinstance(node, RestrictSpec):
            return RestrictSpec(swap(node.of), node.channels)
        return node

    return swap(spec)


if __name__ == "__main__":
    main()
