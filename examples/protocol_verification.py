#!/usr/bin/env python3
"""Protocol verification with CCS and observational equivalence.

This is the workload the paper's introduction motivates: take a concurrent
implementation (parallel composition, hidden synchronisation channels), take a
sequential specification, and check observational equivalence -- tau-moves
produced by internal hand-shakes must be invisible.

Three systems are verified:

1. a two-place buffer built from two one-place cells chained on a hidden
   channel, against its sequential specification;
2. a simplified alternating-bit protocol over lossy channels, against the
   one-place ``send``/``deliver`` buffer;
3. a two-worker mutual-exclusion system, for which we check a safety property
   (never two workers in the critical section) on the compiled state space.

Run with:  python examples/protocol_verification.py
"""

from __future__ import annotations

from repro.ccs.parser import parse_definitions, parse_process
from repro.ccs.semantics import compile_to_fsp
from repro.ccs.stdlib import (
    alternating_bit_protocol,
    buffer_implementation_fsp,
    buffer_specification_fsp,
    compile_system,
    mutual_exclusion,
)
from repro.equivalence.language import accepted_strings_upto
from repro.equivalence.minimize import minimize_observational
from repro.equivalence.observational import observationally_equivalent_processes
from repro.equivalence.strong import strongly_equivalent_processes


def _align(first, second):
    alphabet = first.alphabet | second.alphabet
    return first.with_alphabet(alphabet), second.with_alphabet(alphabet)


def verify_buffer() -> None:
    print("1. Two-place buffer")
    print("-------------------")
    spec, impl = _align(buffer_specification_fsp(), buffer_implementation_fsp())
    print(f"   specification: {spec.num_states} states, implementation: {impl.num_states} states")
    print(f"   observationally equivalent: {observationally_equivalent_processes(spec, impl)}")
    print(f"   strongly equivalent:        {strongly_equivalent_processes(spec, impl)}")
    print("   (the hidden hand-off shows up as a tau, so only the weak notion accepts)")
    print()


def verify_alternating_bit() -> None:
    print("2. Alternating-bit protocol over lossy channels")
    print("-----------------------------------------------")
    protocol = compile_system(alternating_bit_protocol(lossy=True), max_states=20_000)
    spec = compile_to_fsp(parse_process("B"), parse_definitions("B := send.deliver!.B"))
    protocol_aligned, spec_aligned = _align(protocol, spec)
    minimal = minimize_observational(protocol_aligned)
    print(f"   protocol state space: {protocol.num_states} states")
    print(f"   observational quotient: {minimal.num_states} states")
    print(
        "   equivalent to send.deliver!.B: "
        f"{observationally_equivalent_processes(protocol_aligned, spec_aligned)}"
    )
    print()


def verify_mutual_exclusion() -> None:
    print("3. Semaphore-based mutual exclusion (2 workers)")
    print("-----------------------------------------------")
    system = compile_system(mutual_exclusion(2))
    print(f"   compiled state space: {system.num_states} states")
    violations = 0
    for trace in accepted_strings_upto(system, 8):
        inside: set[str] = set()
        for action in trace:
            if action.startswith("enter"):
                inside.add(action[-1])
                if len(inside) > 1:
                    violations += 1
            elif action.startswith("exit"):
                inside.discard(action[-1])
    print(f"   traces examined up to length 8; mutual-exclusion violations found: {violations}")
    print()


def main() -> None:
    verify_buffer()
    verify_alternating_bit()
    verify_mutual_exclusion()


if __name__ == "__main__":
    main()
