#!/usr/bin/env python3
"""The equivalence spectrum of the paper on the Fig. 2 separating examples.

The paper's Fig. 2 presents small restricted-observable-unary processes that
separate the equivalence notions from one another:

* language equivalent (approx_1) but not failure equivalent,
* failure equivalent but not observationally equivalent,
* and, via the Theorem 4.1(b) reduction, pairs that agree up to approx_k and
  disagree at approx_{k+1} for any chosen k.

This example reconstructs those pairs, prints the full equivalence matrix and
shows how the separation level climbs as the reduction is applied.

Run with:  python examples/equivalence_spectrum.py
"""

from __future__ import annotations

from repro.core.paper_figures import fig2_failure_pair, fig2_language_pair
from repro.equivalence.failure import failure_equivalent_processes
from repro.equivalence.kobs import k_observational_equivalent_processes
from repro.equivalence.language import language_equivalent_processes
from repro.equivalence.observational import observationally_equivalent_processes
from repro.equivalence.strong import strongly_equivalent_processes
from repro.reductions.theorem41b import separating_pair


def report(label: str, first, second) -> None:
    print(f"{label}")
    print(f"  language (approx_1) : {language_equivalent_processes(first, second)}")
    print(f"  failure             : {failure_equivalent_processes(first, second)}")
    print(f"  observational       : {observationally_equivalent_processes(first, second)}")
    print(f"  strong              : {strongly_equivalent_processes(first, second)}")
    print()


def main() -> None:
    print("Fig. 2: separating the equivalence notions (r.o.u. processes)")
    print("=" * 62)
    report("pair A: same language, different failures", *fig2_language_pair())
    report("pair B: same failures, not bisimilar", *fig2_failure_pair())

    print("Climbing the approx_k chain with the Theorem 4.1(b) reduction")
    print("=" * 62)
    for level in (1, 2, 3):
        first, second = separating_pair(level)
        at_level = k_observational_equivalent_processes(first, second, level)
        above = k_observational_equivalent_processes(first, second, level + 1)
        print(
            f"separating_pair({level}):  approx_{level}: {at_level}   "
            f"approx_{level + 1}: {above}   "
            f"(sizes: {first.num_states} / {second.num_states} states)"
        )
    print()
    print(
        "Each application of the reduction p' = a.(p u q), q' = (a.p) u (a.q) pushes the\n"
        "disagreement one level up the chain -- the executable core of the PSPACE-hardness\n"
        "proof of Theorem 4.1(b)."
    )


if __name__ == "__main__":
    main()
