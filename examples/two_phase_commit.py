#!/usr/bin/env python3
"""Two-phase commit through the protocol frontend (repro.protocols).

The canonical atomic-commitment protocol: a coordinator broadcasts
``prepare``, collects every participant's ``yes`` vote, broadcasts
``commit`` and performs the observable ``commit`` action, forever.  This
script drives the whole frontend end to end:

1. conformance -- the composed implementation is observationally equivalent
   to its one-leaf spec (an endless ``commit`` stream), checked on the fly;
2. a mutant participant that can defect after voting is caught with a
   replay-verified distinguishing trace;
3. crashing the coordinator wedges every participant: the blocking state is
   found by lazy breadth-first search with its shortest trace;
4. the fault-tolerance sweep certifies that 2PC tolerates zero crash
   faults -- equivalent at ``k = 0``, broken at ``k = 1``.
"""

from __future__ import annotations

from repro.explore import build_implicit, reachable_stats
from repro.protocols import (
    Crash,
    apply_fault,
    build_scenario,
    check_conformance,
    find_stuck,
    sweep_crashes,
)


def main() -> None:
    scenario = build_scenario("two_phase_commit", n=2)
    stats = reachable_stats(build_implicit(scenario.system))
    print(f"two-phase commit, n={scenario.n}: {scenario.description}")
    print(f"  reachable composed states: {stats.states} ({stats.transitions} transitions)")

    # 1. the implementation refines its spec: an endless observable commit
    # stream, everything else synchronised away into tau.
    verdict = check_conformance(scenario.spec, scenario.system)
    details = verdict.stats.details
    print(f"  conforms to spec: {verdict.equivalent} "
          f"({details['pairs_visited']} product pairs, {details['route']})")

    # 2. the mutant participant may defect after voting yes; the checker
    # returns a distinguishing trace and replays it to be sure.
    caught = check_conformance(scenario.spec, scenario.mutant)
    trace = ".".join(caught.stats.details["trace"])
    verified = caught.stats.details["trace_verified"]
    print(f"  mutant caught: equivalent={caught.equivalent}, "
          f"verified trace {trace} (verified={verified})")

    # 3. crash the coordinator before it gathers votes: every participant
    # blocks forever waiting for a prepare message that never comes.
    crashed = apply_fault(scenario.system, Crash("coordinator", 0))
    stuck = find_stuck(crashed)
    print(f"  coordinator crash: {stuck.kind} at {stuck.state}")
    rendered = ".".join(stuck.trace) if stuck.trace else "ε"
    print(f"    shortest trace: {rendered} "
          f"(explored {stuck.states_explored} states, complete={stuck.complete})")
    assert "commit" not in stuck.trace, "the system wedged before committing"

    # 4. the sweep: 2PC declares f=0, so one crash must already break it.
    result = sweep_crashes(scenario)
    for point in result.points:
        status = "equivalent" if point.equivalent else "BROKEN"
        print(f"  sweep k={point.faults}: {status}")
    print(f"  declared tolerance f={result.tolerance} confirmed: {result.confirmed}")


if __name__ == "__main__":
    main()
