#!/usr/bin/env python3
"""Star expressions: same syntax as regular expressions, different semantics.

Section 2.3 of the paper gives regular-expression syntax a process semantics:
an expression denotes the strong-equivalence class of its representative FSP.
This example parses expressions, builds their representative processes
(Definition 2.3.1 / Fig. 3), decides the CCS equivalence problem, and prints
the identity table showing which classical laws survive the change of
semantics -- reproducing the two failures the paper points out
(right distributivity and ``r.0 = 0``).

Run with:  python examples/star_expressions_demo.py
"""

from __future__ import annotations

from repro.expressions.axioms import identity_table
from repro.expressions.ccs_equivalence import ccs_equivalent, language_ccs_equivalent
from repro.expressions.parser import parse
from repro.expressions.semantics import representative_fsp
from repro.expressions.syntax import length_of
from repro.utils.dot import to_dot


def show_representative(text: str) -> None:
    expression = parse(text)
    process = representative_fsp(expression, prune_unreachable=True)
    print(f"expression {text!r}  (length {length_of(expression)})")
    print(f"  representative FSP: {process.num_states} states, {process.num_transitions} transitions")
    print("  " + process.describe().replace("\n", "\n  "))
    print()


def main() -> None:
    print("Representative FSPs (Definition 2.3.1)")
    print("=" * 50)
    for text in ("a.(b + c)", "a.b + a.c", "(a + b)*"):
        show_representative(text)

    print("The CCS equivalence problem")
    print("=" * 50)
    pairs = [
        ("a.(b + c)", "a.b + a.c"),
        ("a + b", "b + a"),
        ("a.0", "0"),
        ("a*", "a.(a*) + 0*"),
    ]
    for left, right in pairs:
        print(
            f"  {left:<14} vs {right:<16} "
            f"CCS (strong): {str(ccs_equivalent(left, right)):<5}  "
            f"language: {language_ccs_equivalent(left, right)}"
        )
    print()

    print("Identity catalogue (Section 2.3, item 3)")
    print("=" * 50)
    print(identity_table())
    print()

    print("DOT rendering of the representative FSP of a.(b + c):")
    print(to_dot(representative_fsp(parse("a.(b + c)"), prune_unreachable=True)))


if __name__ == "__main__":
    main()
