"""Shared configuration for the benchmark harness.

Every benchmark module regenerates one experiment row of DESIGN.md /
EXPERIMENTS.md.  The measured quantities (sizes, block counts, reduction
factors) are attached to the pytest-benchmark records via ``extra_info`` so
that a single ``pytest benchmarks/ --benchmark-only`` run produces everything
EXPERIMENTS.md reports.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - depends on the environment
    sys.path.insert(0, str(_SRC))

# Make the frozen seed baseline (seed_baseline.py, used by the solver
# trajectory benchmarks and run_all.py) importable from bench modules.
_BENCH = Path(__file__).resolve().parent
if str(_BENCH) not in sys.path:  # pragma: no cover - depends on the environment
    sys.path.insert(0, str(_BENCH))
