"""Protocol frontend benchmark: conformance, fault sweeps, deadlock search.

Three questions about the :mod:`repro.protocols` frontend, answered on the
library scenarios at ``n >= 5`` validators:

* **Conformance stays on the fly** -- two-phase commit and quorum voting at
  ``n = 5`` must be decided equivalent to their one-leaf specs while the
  product game visits no more than a small multiple of the reachable
  composed states (``protocol_visit_fraction``, gated by
  ``benchmarks/check_regression.py`` against the committed ceiling).
* **Faults break checkably** -- applying ``f + 1`` crash faults must flip
  the verdict with a *replay-verified* distinguishing trace, and the full
  crash sweep must confirm each scenario's declared tolerance.
* **Crashes wedge detectably** -- crashing the 2PC coordinator must produce
  a deadlock that breadth-first search over the lazy product reports with a
  shortest trace that never reaches ``commit``.

``run_cells`` reports records in the ``solver|family|n`` schema of
``BENCH_partition.json`` so ``benchmarks/run_all.py`` folds them into the
trajectory (section ``protocol_records``).
"""

from __future__ import annotations

import time

from repro.explore import build_implicit, reachable_stats
from repro.protocols import (
    Crash,
    apply_fault,
    apply_faults,
    build_scenario,
    check_conformance,
    find_stuck,
    sweep_crashes,
)

#: conformance scenarios: name -> instantiation kwargs (all at n >= 5).
CONFORMANCE_SCENARIOS = {
    "two_phase_commit": {"n": 5},
    "quorum_voting": {"n": 5, "f": 2},
}


def _best_of(fn, repeats: int):
    best, value = float("inf"), None
    for _ in range(repeats):
        begin = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - begin)
    return best, value


def run_conformance_cells(repeats: int) -> tuple[list[dict], dict, bool]:
    """On-the-fly spec conformance at n = 5, with visit-fraction measurement."""
    records: list[dict] = []
    fractions: dict[str, float] = {}
    healthy = True
    for family, kwargs in CONFORMANCE_SCENARIOS.items():
        scenario = build_scenario(family, **kwargs)
        stats = reachable_stats(build_implicit(scenario.system))
        seconds, verdict = _best_of(
            lambda scenario=scenario: check_conformance(scenario.spec, scenario.system),
            repeats,
        )
        details = verdict.stats.details
        pairs = details["pairs_visited"]
        if not verdict.equivalent:
            healthy = False
        fractions[family] = pairs / stats.states
        records.append(
            {
                "solver": "protocol_conformance",
                "family": family,
                "n": stats.states,
                "transitions": pairs,
                "blocks": stats.transitions,
                "seconds": round(seconds, 6),
            }
        )
    return records, fractions, healthy


def run_fault_cells(repeats: int) -> tuple[list[dict], bool, bool]:
    """f + 1 crash faults flip the verdict with a verified trace; sweeps confirm."""
    records: list[dict] = []
    traces_verified = True
    sweeps_confirmed = True
    for family, kwargs in CONFORMANCE_SCENARIOS.items():
        scenario = build_scenario(family, **kwargs)
        broken = apply_faults(scenario.system, scenario.crash_slots[: scenario.f + 1])
        seconds, verdict = _best_of(
            lambda scenario=scenario, broken=broken: check_conformance(
                scenario.spec, broken
            ),
            repeats,
        )
        details = verdict.stats.details
        if verdict.equivalent or not details.get("trace_verified", False):
            traces_verified = False
        records.append(
            {
                "solver": "protocol_fault_exit",
                "family": family,
                "n": scenario.f + 1,
                "transitions": details["pairs_visited"],
                "blocks": scenario.n,
                "seconds": round(seconds, 6),
            }
        )
        sweep_seconds, result = _best_of(
            lambda scenario=scenario: sweep_crashes(scenario), repeats
        )
        if not result.confirmed or result.breaks_at != scenario.f + 1:
            sweeps_confirmed = False
        records.append(
            {
                "solver": "protocol_crash_sweep",
                "family": family,
                "n": len(result.points),
                "transitions": sum(point.pairs_visited for point in result.points),
                "blocks": scenario.n,
                "seconds": round(sweep_seconds, 6),
            }
        )
    return records, traces_verified, sweeps_confirmed


def run_deadlock_cells(repeats: int) -> tuple[list[dict], bool]:
    """Coordinator crash wedges 2PC: lazy BFS must report the deadlock."""
    scenario = build_scenario("two_phase_commit", n=5)
    crashed = apply_fault(scenario.system, Crash("coordinator", 0))
    seconds, report = _best_of(lambda: find_stuck(crashed), repeats)
    found = (
        report is not None
        and report.kind == "deadlock"
        and "commit" not in report.trace
    )
    record = {
        "solver": "protocol_deadlock_bfs",
        "family": "two_phase_commit_crash",
        "n": report.states_explored if report is not None else 0,
        "transitions": len(report.trace) if report is not None else 0,
        "blocks": scenario.n,
        "seconds": round(seconds, 6),
    }
    return [record], found


def run_cells(repeats: int = 1) -> tuple[list[dict], dict, bool]:
    """All protocol cells; returns ``(records, extras, agree)``.

    ``agree`` is False when a scenario fails conformance against its spec,
    an ``f + 1``-fault mutant is not caught with a replay-verified trace, a
    crash sweep does not confirm the declared tolerance, or the coordinator
    crash deadlock goes unreported -- all correctness properties, which the
    CI gate treats like solver disagreements.
    """
    conformance_records, fractions, conformance_ok = run_conformance_cells(repeats)
    fault_records, traces_verified, sweeps_confirmed = run_fault_cells(repeats)
    deadlock_records, deadlock_found = run_deadlock_cells(repeats)
    extras = {
        "protocol_visit_fraction": round(max(fractions.values()), 8),
        "protocol_visit_fractions": {k: round(v, 8) for k, v in fractions.items()},
        "protocol_conformance_ok": conformance_ok,
        "protocol_traces_verified": traces_verified,
        "protocol_sweeps_confirmed": sweeps_confirmed,
        "protocol_deadlock_found": deadlock_found,
    }
    agree = conformance_ok and traces_verified and sweeps_confirmed and deadlock_found
    return conformance_records + fault_records + deadlock_records, extras, agree


# ----------------------------------------------------------------------
# pytest-benchmark entry points (run by benchmarks/run_all.py's suite smoke)
# ----------------------------------------------------------------------
def test_quorum_voting_conformance(benchmark):
    scenario = build_scenario("quorum_voting", n=5, f=2)
    verdict = benchmark(lambda: check_conformance(scenario.spec, scenario.system))
    assert verdict.equivalent
    product = reachable_stats(build_implicit(scenario.system)).states
    benchmark.extra_info["pairs_visited"] = verdict.stats.details["pairs_visited"]
    assert verdict.stats.details["pairs_visited"] <= 2.0 * product


def test_two_phase_commit_sweep(benchmark):
    scenario = build_scenario("two_phase_commit", n=5)
    result = benchmark(lambda: sweep_crashes(scenario))
    assert result.confirmed and result.breaks_at == 1


def test_coordinator_crash_deadlock(benchmark):
    scenario = build_scenario("two_phase_commit", n=5)
    crashed = apply_fault(scenario.system, Crash("coordinator", 0))
    report = benchmark(lambda: find_stuck(crashed))
    assert report is not None and report.kind == "deadlock"
    assert "commit" not in report.trace


def test_checks_agree():
    records, extras, agree = run_cells()
    assert agree, extras


if __name__ == "__main__":
    records, extras, agree = run_cells()
    for record in records:
        print(
            f"{record['solver']:24s} {record['family']:24s} n={record['n']:7d} "
            f"{record['seconds'] * 1000:9.2f} ms"
        )
    print(
        f"visit fraction (max over scenarios): {extras['protocol_visit_fraction']:.6f}; "
        f"agree={agree}"
    )
