"""Experiment E4 (Definition 2.3.1 / Lemma 2.3.1 / Fig. 3): representative-FSP construction.

Lemma 2.3.1: the representative FSP of a star expression of length ``n`` has
O(n) states, O(n^2) transitions, and can be built in O(n^2) time.  The
benchmark measures construction time and records the realised state and
transition counts against ``n`` for three expression families (random, nested
alternations, dense starred unions), plus the cost of the CCS equivalence
decision end to end (Lemma 2.3.1 + Theorem 3.1).
"""

from __future__ import annotations

import pytest

from repro.expressions.ccs_equivalence import ccs_equivalent
from repro.expressions.semantics import representative_fsp
from repro.expressions.syntax import length_of
from repro.generators.expressions import (
    alternating_expression,
    random_star_expression,
    starred_unions,
)

SIZES = [8, 16, 32, 64]


def _families(size: int):
    return {
        "random": random_star_expression(size, seed=size),
        "alternating": alternating_expression(size // 2),
        "starred-unions": starred_unions(size),
    }


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("family", ["random", "alternating", "starred-unions"])
def test_representative_construction(benchmark, size, family):
    expression = _families(size)[family]
    process = benchmark(lambda: representative_fsp(expression))
    n = length_of(expression)
    benchmark.extra_info["experiment"] = "E4"
    benchmark.extra_info["family"] = family
    benchmark.extra_info["expression_length"] = n
    benchmark.extra_info["states"] = process.num_states
    benchmark.extra_info["transitions"] = process.num_transitions
    # Lemma 2.3.1 shape: linear states, at most quadratic transitions
    assert process.num_states <= 2 * n + 1
    assert process.num_transitions <= 4 * n * n


@pytest.mark.parametrize("size", [8, 16, 32])
def test_ccs_equivalence_problem(benchmark, size):
    """Deciding the CCS equivalence problem on a pair of size-n expressions."""
    left = random_star_expression(size, seed=size)
    right = random_star_expression(size, seed=size + 1)
    result = benchmark(lambda: ccs_equivalent(left, right))
    benchmark.extra_info["experiment"] = "E4"
    benchmark.extra_info["expression_length"] = length_of(left) + length_of(right)
    benchmark.extra_info["equivalent"] = result


@pytest.mark.parametrize("size", [8, 16, 32])
def test_ccs_equivalence_reflexive(benchmark, size):
    """Equivalent pairs (an expression against a renamed copy of itself) as the positive series."""
    left = random_star_expression(size, seed=size)
    result = benchmark(lambda: ccs_equivalent(left, left))
    benchmark.extra_info["experiment"] = "E4"
    assert result is True
