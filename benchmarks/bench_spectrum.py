"""Experiments E1-E3 (Fig. 1, Fig. 2, Appendix A): model hierarchy and the equivalence spectrum.

These benchmarks regenerate the descriptive content of the paper: Table I
(model classes) via classification of the Fig. 1b examples, and the Fig. 2
separation matrix via the full battery of equivalence checks on the separating
pairs.  Timings are incidental; the recorded ``extra_info`` carries the
regenerated table rows that EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import pytest

from repro.core.classify import classify, hierarchy_table
from repro.core.paper_figures import fig1b_examples, fig2_failure_pair, fig2_language_pair
from repro.equivalence.failure import failure_equivalent_processes
from repro.equivalence.kobs import k_observational_equivalent_processes
from repro.equivalence.language import language_equivalent_processes
from repro.equivalence.observational import observationally_equivalent_processes
from repro.equivalence.strong import strongly_equivalent_processes


def test_hierarchy_table_regeneration(benchmark):
    """E1: Appendix A Table I -- the model-class hierarchy."""
    table = benchmark(hierarchy_table)
    benchmark.extra_info["experiment"] = "E1"
    benchmark.extra_info["rows"] = len(table.splitlines()) - 2


def test_fig1b_classification(benchmark):
    """E2: every Fig. 1b example lands in its advertised class."""
    examples = fig1b_examples()

    def classify_all():
        return {label: classify(process) for label, process in examples.items()}

    classes = benchmark(classify_all)
    benchmark.extra_info["experiment"] = "E2"
    benchmark.extra_info["examples"] = len(classes)


@pytest.mark.parametrize(
    "pair_name,factory",
    [("language-not-failure", fig2_language_pair), ("failure-not-bisimilar", fig2_failure_pair)],
)
def test_fig2_equivalence_matrix(benchmark, pair_name, factory):
    """E3: the full equivalence matrix for the Fig. 2 separating pairs."""
    first, second = factory()

    def matrix():
        return {
            "approx_1": k_observational_equivalent_processes(first, second, 1),
            "approx_2": k_observational_equivalent_processes(first, second, 2),
            "language": language_equivalent_processes(first, second),
            "failure": failure_equivalent_processes(first, second),
            "observational": observationally_equivalent_processes(first, second),
            "strong": strongly_equivalent_processes(first, second),
        }

    row = benchmark(matrix)
    benchmark.extra_info["experiment"] = "E3"
    benchmark.extra_info["pair"] = pair_name
    benchmark.extra_info.update({key: str(value) for key, value in row.items()})
    assert row["language"] is True
    assert row["observational"] is False
