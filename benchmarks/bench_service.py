"""Service throughput benchmark: one shard vs a sharded pool on a 500-check manifest.

What is measured
----------------

The workload is the service's design-target traffic shape: a pool of
*bases*, each with equivalent copies and perturbed near-misses, uploaded
once into a content-addressed :class:`~repro.service.store.ProcessStore`
and then referenced by digest across a 500-check mixed-notion manifest
(strong / observational / language) that keeps revisiting the same pairs --
the ``one process vs many candidates, asked repeatedly`` pattern of
server-side batches.

Both configurations run the *same* manifest through
:meth:`~repro.service.shards.ShardPool.check_many` with the *same fixed
per-worker engine budget* (``PER_SHARD_MAX_PROCESSES`` /
``PER_SHARD_MAX_VERDICTS`` -- per-worker memory is the knob operators
actually set).  The working set (:data:`NUM_BASES` bases x
:data:`VARIANTS_PER_BASE` variants) deliberately exceeds one worker's
budget:

* at **1 shard** every check thrashes the single worker's LRU caches, so
  artifacts and verdicts are recomputed pass after pass;
* at **:data:`NUM_SHARDS` shards** the digest-sticky routing partitions the
  working set, each shard's slice *fits* its budget, and passes after the
  first are served from hot caches.

The recorded speedup therefore measures what sharding actually buys a
deployment: aggregate cache capacity through routing affinity -- on any
host, including single-core CI runners -- multiplied by genuine CPU
parallelism on multi-core hosts (the workers are separate processes; the
recording host's core count is stored in the metadata so readers can tell
the two effects apart).

``run_cells`` reports records in the ``solver|family|n`` schema of
``BENCH_partition.json``; ``benchmarks/run_all.py`` folds them into the
trajectory and ``benchmarks/check_regression.py`` enforces the committed
``service_speedup_floor`` (2.5x) and that both configurations answered the
manifest identically.
"""

from __future__ import annotations

import tempfile
import time

from repro.generators.random_fsp import perturb, random_equivalent_copy, random_fsp
from repro.service.shards import ShardPool
from repro.service.store import ProcessStore

FAMILY = "service_manifest"

#: The acceptance-criterion manifest size.
DEFAULT_NUM_CHECKS = 500
#: Shard counts compared by the trajectory.
BASELINE_SHARDS = 1
NUM_SHARDS = 4

#: Workload shape: NUM_BASES bases, each with VARIANTS_PER_BASE variants
#: (two equivalent copies, two perturbed near-misses), all content-addressed.
NUM_BASES = 24
VARIANTS_PER_BASE = 4
BASE_STATES = 22

#: The fixed per-worker engine budget.  The full working set
#: (NUM_BASES * (1 + VARIANTS_PER_BASE) = 120 processes, 96 distinct
#: (pair, notion) keys) exceeds it, one shard's routed slice does not.
PER_SHARD_MAX_PROCESSES = 56
PER_SHARD_MAX_VERDICTS = 48

_NOTIONS = ("strong", "observational", "language")


def build_workload(store_root: str) -> tuple[list[dict], dict]:
    """Upload the process pool; returns (distinct check specs, workload meta).

    Every spec references its processes by digest -- the upload-once,
    check-by-digest flow the store exists for -- and is therefore routed by
    the *base* digest, so each base's whole check group is shard-sticky.
    """
    store = ProcessStore(store_root)
    specs: list[dict] = []
    num_processes = 0
    for index in range(NUM_BASES):
        base = random_fsp(
            BASE_STATES, tau_probability=0.15, all_accepting=True, seed=1000 + index
        )
        base_digest = store.put(base)
        variants = [
            random_equivalent_copy(base, duplicates=2, seed=2000 + index),
            random_equivalent_copy(base, duplicates=3, seed=3000 + index),
            perturb(base, seed=4000 + index),
            perturb(base, seed=5000 + index),
        ][:VARIANTS_PER_BASE]
        num_processes += 1 + len(variants)
        for offset, variant in enumerate(variants):
            specs.append(
                {
                    "left": {"digest": base_digest},
                    "right": {"digest": store.put(variant)},
                    "notion": _NOTIONS[(index + offset) % len(_NOTIONS)],
                    "align": True,
                    "witness": False,
                    "params": {},
                }
            )
    meta = {
        "bases": NUM_BASES,
        "variants_per_base": VARIANTS_PER_BASE,
        "processes": num_processes,
        "distinct_checks": len(specs),
        "per_shard_max_processes": PER_SHARD_MAX_PROCESSES,
        "per_shard_max_verdicts": PER_SHARD_MAX_VERDICTS,
    }
    return specs, meta


def build_manifest(specs: list[dict], num_checks: int = DEFAULT_NUM_CHECKS) -> list[dict]:
    """``num_checks`` checks cycling the distinct specs (server-batch shape)."""
    return [specs[i % len(specs)] for i in range(num_checks)]


def run_manifest(
    store_root: str, manifest: list[dict], num_shards: int
) -> tuple[float, list[bool]]:
    """Time one cold pool over the whole manifest; returns (seconds, answers)."""
    with ShardPool(
        num_shards,
        store_root,
        max_processes=PER_SHARD_MAX_PROCESSES,
        max_verdicts=PER_SHARD_MAX_VERDICTS,
    ) as pool:
        pool.stats()  # force worker start-up out of the timed region
        begin = time.perf_counter()
        results = pool.check_many(manifest)
        seconds = time.perf_counter() - begin
    return seconds, [result["equivalent"] for result in results]


def run_cells(
    num_checks: int = DEFAULT_NUM_CHECKS, repeats: int = 1
) -> tuple[list[dict], float, bool, dict]:
    """Time both shard counts; returns (records, speedup, agree, workload meta).

    Each repeat uses a fresh pool (cold caches), so the measurement is the
    end-to-end manifest latency a newly deployed service would show; the
    manifest itself contains the repeated-pair passes.  ``agree`` is False
    if the two configurations answered any check differently -- a routing
    or worker-state bug the CI gate treats as a failure.
    """
    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as store_root:
        specs, workload = build_workload(store_root)
        manifest = build_manifest(specs, num_checks)

        def best_of(num_shards: int) -> tuple[float, list[bool]]:
            best, answers = float("inf"), None
            for _ in range(repeats):
                seconds, answers = run_manifest(store_root, manifest, num_shards)
                best = min(best, seconds)
            return best, answers

        single_seconds, single_answers = best_of(BASELINE_SHARDS)
        sharded_seconds, sharded_answers = best_of(NUM_SHARDS)
        agree = single_answers == sharded_answers

        store = ProcessStore(store_root)
        transitions = sum(store.get(digest).num_transitions for digest in store.digests())

    records = [
        {
            "solver": f"service_{BASELINE_SHARDS}_shard",
            "family": FAMILY,
            "n": num_checks,
            "transitions": transitions,
            "blocks": sum(single_answers),
            "seconds": round(single_seconds, 6),
        },
        {
            "solver": f"service_{NUM_SHARDS}_shards",
            "family": FAMILY,
            "n": num_checks,
            "transitions": transitions,
            "blocks": sum(sharded_answers),
            "seconds": round(sharded_seconds, 6),
        },
    ]
    speedup = single_seconds / sharded_seconds if sharded_seconds > 0 else float("inf")
    workload["throughput_1_shard"] = round(num_checks / single_seconds, 1)
    workload[f"throughput_{NUM_SHARDS}_shards"] = round(num_checks / sharded_seconds, 1)
    return records, round(speedup, 2), agree, workload


# ----------------------------------------------------------------------
# pytest entry points (run by benchmarks/run_all.py's suite smoke)
# ----------------------------------------------------------------------
def test_sharded_pool_smoke(benchmark):
    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as store_root:
        specs, _meta = build_workload(store_root)
        manifest = build_manifest(specs, 48)
        with ShardPool(
            2,
            store_root,
            max_processes=PER_SHARD_MAX_PROCESSES,
            max_verdicts=PER_SHARD_MAX_VERDICTS,
        ) as pool:
            pool.stats()
            results = benchmark(lambda: pool.check_many(manifest))
        benchmark.extra_info["checks"] = len(manifest)
        benchmark.extra_info["equivalent"] = sum(r["equivalent"] for r in results)


def test_shard_counts_agree():
    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as store_root:
        specs, _meta = build_workload(store_root)
        manifest = build_manifest(specs, 48)
        single_seconds, single = run_manifest(store_root, manifest, 1)
        sharded_seconds, sharded = run_manifest(store_root, manifest, 3)
        assert single == sharded
        assert single_seconds > 0 and sharded_seconds > 0


if __name__ == "__main__":
    records, speedup, agree, workload = run_cells()
    for record in records:
        print(
            f"{record['solver']:20s} n={record['n']}  {record['seconds'] * 1000:9.2f} ms  "
            f"({record['n'] / record['seconds']:7.1f} checks/sec)"
        )
    print(f"speedup ({NUM_SHARDS} shards vs {BASELINE_SHARDS}): {speedup:.2f}x; agree={agree}")
    print(f"workload: {workload}")
