"""Experiment E12 (Theorem 5.1): failure equivalence -- exponential worst case, easy special cases.

Measured series:

* failure equivalence on the restricted-counter family: macro-state pairs grow
  exponentially with the bit count (the empirical face of PSPACE-hardness);
* failure equivalence on finite trees via the general checker versus the
  polynomial tree fast path (the Smolka 1984 tractable case);
* the Theorem 5.1 transformation cost (polynomial).
"""

from __future__ import annotations

import pytest

from repro.equivalence.failure import (
    failure_equivalent_processes,
    tree_failure_equivalent,
)
from repro.generators.families import binary_tree, restricted_counter
from repro.generators.random_fsp import random_restricted_observable_fsp
from repro.reductions.theorem51 import theorem51_transform

COUNTER_BITS = [3, 5, 7]
TREE_DEPTHS = [3, 5, 7]


@pytest.mark.parametrize("bits", COUNTER_BITS)
def test_failure_equivalence_on_counters(benchmark, bits):
    first = restricted_counter(bits)
    second = restricted_counter(bits).rename_states(prefix="o")
    result = benchmark(lambda: failure_equivalent_processes(first, second))
    benchmark.extra_info["experiment"] = "E12"
    benchmark.extra_info["bits"] = bits
    assert result is True


@pytest.mark.parametrize("depth", TREE_DEPTHS)
def test_failure_equivalence_on_trees_general_checker(benchmark, depth):
    first = binary_tree(depth)
    second = binary_tree(depth).rename_states(prefix="o")
    result = benchmark(lambda: failure_equivalent_processes(first, second))
    benchmark.extra_info["experiment"] = "E12"
    benchmark.extra_info["depth"] = depth
    assert result is True


@pytest.mark.parametrize("depth", TREE_DEPTHS)
def test_failure_equivalence_on_trees_fast_path(benchmark, depth):
    first = binary_tree(depth)
    second = binary_tree(depth).rename_states(prefix="o")
    result = benchmark(lambda: tree_failure_equivalent(first, second))
    benchmark.extra_info["experiment"] = "E12"
    benchmark.extra_info["depth"] = depth
    assert result is True


@pytest.mark.parametrize("size", [20, 60])
def test_theorem51_transformation_cost(benchmark, size):
    process = random_restricted_observable_fsp(size, transition_density=2.0, seed=size)
    transformed = benchmark(lambda: theorem51_transform(process))
    benchmark.extra_info["experiment"] = "E12"
    benchmark.extra_info["input_states"] = process.num_states
    benchmark.extra_info["output_transitions"] = transformed.num_transitions
    assert transformed.num_states == process.num_states + 1
