"""Ablation benchmark: quotient minimisation on compiled CCS systems.

DESIGN.md calls out minimisation as the practical payoff of the partition-
refinement approach.  This benchmark compiles the CCS standard-library systems
(buffers, mutual exclusion, the alternating-bit protocol), minimises them
under strong and observational equivalence, and records the achieved state
reductions; it also measures the cost of compiling the CCS terms themselves.
"""

from __future__ import annotations

import pytest

from repro.ccs.stdlib import (
    alternating_bit_protocol,
    compile_system,
    mutual_exclusion,
    two_place_buffer_impl,
)
from repro.equivalence.minimize import minimize_observational, minimize_strong, reduction_ratio

SYSTEMS = {
    "two-place-buffer": lambda: compile_system(two_place_buffer_impl()),
    "mutex-2": lambda: compile_system(mutual_exclusion(2)),
    "mutex-3": lambda: compile_system(mutual_exclusion(3)),
    "abp-lossy": lambda: compile_system(alternating_bit_protocol(lossy=True), max_states=20_000),
}


@pytest.mark.parametrize("system", list(SYSTEMS))
def test_ccs_compilation_cost(benchmark, system):
    process = benchmark(SYSTEMS[system])
    benchmark.extra_info["experiment"] = "ablation-minimisation"
    benchmark.extra_info["system"] = system
    benchmark.extra_info["states"] = process.num_states
    benchmark.extra_info["transitions"] = process.num_transitions


@pytest.mark.parametrize("system", list(SYSTEMS))
@pytest.mark.parametrize("notion", ["strong", "observational"])
def test_minimisation_reduction(benchmark, system, notion):
    process = SYSTEMS[system]()
    minimiser = minimize_strong if notion == "strong" else minimize_observational
    minimal = benchmark(lambda: minimiser(process))
    benchmark.extra_info["experiment"] = "ablation-minimisation"
    benchmark.extra_info["system"] = system
    benchmark.extra_info["notion"] = notion
    benchmark.extra_info["original_states"] = process.num_states
    benchmark.extra_info["minimal_states"] = minimal.num_states
    benchmark.extra_info["reduction"] = round(reduction_ratio(process, minimal), 3)
    assert minimal.num_states <= process.num_states
