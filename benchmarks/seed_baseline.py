"""Frozen seed implementation of the Lemma 3.1 partition pipeline.

This is a faithful copy of the repository's *seed* (pre-LTS-kernel)
implementation: the Lemma 3.1 reduction built as dict-of-frozensets and the
Kanellakis-Smolka splitter queue running over the string-keyed
:class:`~repro.partition.partition.Partition`.  ``benchmarks/run_all.py``
times it next to the kernel solvers so that ``BENCH_partition.json`` records
the speedup trajectory against a fixed baseline; it must not be "improved".
"""

from __future__ import annotations

from collections import deque

from repro.core.fsp import FSP, TAU
from repro.partition.partition import Partition


class SeedInstance:
    """The seed's eager dict representation of a generalized partitioning instance."""

    def __init__(self, fsp: FSP, include_tau: bool = False) -> None:
        actions = set(fsp.alphabet)
        if include_tau and fsp.has_tau():
            actions.add(TAU)
        self.functions: dict[str, dict[str, frozenset[str]]] = {}
        for action in actions:
            mapping: dict[str, frozenset[str]] = {}
            for state in fsp.states:
                successors = fsp.successors(state, action)
                if successors:
                    mapping[state] = successors
            self.functions[action] = mapping
        groups: dict[frozenset[str], set[str]] = {}
        for state in fsp.states:
            groups.setdefault(fsp.extension(state), set()).add(state)
        self.initial_blocks = tuple(frozenset(block) for block in groups.values())

    def initial_partition(self) -> Partition:
        return Partition(self.initial_blocks)

    def predecessor_map(self) -> dict[str, dict[str, frozenset[str]]]:
        inverted: dict[str, dict[str, set[str]]] = {name: {} for name in self.functions}
        for name, mapping in self.functions.items():
            for element, targets in mapping.items():
                for target in targets:
                    inverted[name].setdefault(target, set()).add(element)
        return {
            name: {element: frozenset(sources) for element, sources in mapping.items()}
            for name, mapping in inverted.items()
        }


def seed_kanellakis_smolka(fsp: FSP, include_tau: bool = False) -> Partition:
    """The seed's end-to-end pipeline: eager reduction + dict splitter queue."""
    instance = SeedInstance(fsp, include_tau=include_tau)
    partition = instance.initial_partition()
    predecessors = instance.predecessor_map()
    function_names = sorted(instance.functions)

    pending: deque[int] = deque(partition.block_ids())
    pending_set: set[int] = set(pending)

    while pending:
        splitter_id = pending.popleft()
        pending_set.discard(splitter_id)
        splitter = partition.block_members(splitter_id)

        for name in function_names:
            preimage: set[str] = set()
            pred = predecessors[name]
            for member in splitter:
                preimage |= pred.get(member, frozenset())
            if not preimage:
                continue

            touched_blocks: dict[int, set[str]] = {}
            for element in preimage:
                touched_blocks.setdefault(partition.block_id_of(element), set()).add(element)

            for block_id, inside in touched_blocks.items():
                members = partition.block_members(block_id)
                if len(inside) == len(members):
                    continue
                result = partition.split_block(block_id, inside)
                if result is None:
                    continue
                kept_id, new_id = result
                if block_id in pending_set:
                    pending.append(new_id)
                    pending_set.add(new_id)
                else:
                    smaller, larger = sorted(
                        (kept_id, new_id), key=lambda bid: len(partition.block_members(bid))
                    )
                    pending.append(smaller)
                    pending_set.add(smaller)
                    pending.append(larger)
                    pending_set.add(larger)
    return partition
