"""Experiment E9 (Lemma 4.2 / Fig. 4): universality and its reduction to restricted approx_1.

Measures the exponential cost of the universality check on the
nondeterministic-counter family, the (polynomial) cost of the Lemma 4.2
transformation itself, and the end-to-end reduction pipeline
(normalise -> transform -> compare against the trivial process).
"""

from __future__ import annotations

import pytest

from repro.equivalence.language import is_universal
from repro.generators.families import nondeterministic_counter
from repro.reductions.lemma42 import (
    decide_universality_via_lemma42,
    lemma42_transform,
    normalize_for_lemma42,
)

COUNTER_BITS = [4, 6, 8]


@pytest.mark.parametrize("bits", COUNTER_BITS)
def test_direct_universality_check(benchmark, bits):
    process = nondeterministic_counter(bits)
    result = benchmark(lambda: is_universal(process))
    benchmark.extra_info["experiment"] = "E9"
    benchmark.extra_info["bits"] = bits
    benchmark.extra_info["universal"] = result


@pytest.mark.parametrize("bits", COUNTER_BITS)
def test_lemma42_transformation_cost(benchmark, bits):
    """The reduction itself is polynomial: linear states, one gadget per transition."""
    normalized = normalize_for_lemma42(nondeterministic_counter(bits))
    transformed = benchmark(lambda: lemma42_transform(normalized))
    benchmark.extra_info["experiment"] = "E9"
    benchmark.extra_info["bits"] = bits
    benchmark.extra_info["output_states"] = transformed.num_states
    assert transformed.num_states <= normalized.num_states + normalized.num_transitions + 1


@pytest.mark.parametrize("bits", [3, 5])
def test_end_to_end_reduction(benchmark, bits):
    process = nondeterministic_counter(bits)
    expected = is_universal(process)
    result = benchmark(lambda: decide_universality_via_lemma42(process))
    benchmark.extra_info["experiment"] = "E9"
    benchmark.extra_info["bits"] = bits
    assert result == expected
