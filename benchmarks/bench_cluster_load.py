"""Open-loop load benchmark for the distributed checking fabric.

What is measured
----------------

``bench_service_load.py`` soaks one hardened node (a shard pool behind
deadlines and backpressure).  This benchmark measures the layer above: a
:class:`~repro.cluster.coordinator.ClusterCoordinator` routing the same
mixed digest-referenced manifest across **three full nodes** (each an
:class:`~repro.service.server.EquivalenceServer` with one worker shard),
with consistent-hash affinity, replication-factor-2 uploads, and failover.

Three cells, one story:

1. **Single-node capacity** (closed loop, warm): one node at the fixed
   per-node cache budget (``PER_SHARD_MAX_PROCESSES`` /
   ``PER_SHARD_MAX_VERDICTS`` from ``bench_service``).  The 120-process /
   96-key working set exceeds the budget, so the lone node thrashes.
2. **Cluster capacity** (closed loop, warm): the same budget per node,
   three nodes.  Ring affinity gives each node a ~32-key slice that *fits*,
   so ``node_speedup = cluster / single`` must clear the committed
   ``node_speedup_floor`` (2x) even on a single-core host -- the same
   cache-residency effect the intra-node shard benchmark gates at 2.5x.
3. **Open loop with a mid-run node kill**: ``num_requests`` arrivals on a
   fixed schedule at :data:`OFFERED_FRACTION` of the calibrated cluster
   capacity; halfway through, the busiest node is hard-killed.  Latency is
   measured from *scheduled arrival* (queueing a slow cluster forces on the
   schedule counts against it), and the run must keep answering: probes
   evict the dead node, its keys fail over to their replicas, and missing
   right operands are read-repaired from the coordinator's durable store.

Results land in ``BENCH_partition.json`` as the ``cluster_records`` section
plus ``meta.cluster_load`` (``benchmarks/run_all.py --cluster``) and are
gated by ``cluster_gates`` in ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import asyncio
import tempfile
import threading
import time
from pathlib import Path

from bench_service import (
    PER_SHARD_MAX_PROCESSES,
    PER_SHARD_MAX_VERDICTS,
    build_manifest,
    build_workload,
)

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.store import ClusterStore
from repro.service import protocol
from repro.service.server import EquivalenceServer
from repro.utils.serialization import to_dict

FAMILY = "cluster_load"

#: The acceptance-criterion request count (and the --quick count).
DEFAULT_NUM_REQUESTS = 10_000
QUICK_NUM_REQUESTS = 2_000

#: Topology under test: the cluster cell vs the single-node baseline, both
#: at the same fixed per-node budget (one worker shard per node).
NUM_NODES = 3
BASELINE_NODES = 1
NODE_SHARDS = 1
MAX_QUEUE = 512
STEAL_THRESHOLD = 8
REPLICATION_FACTOR = 2
PROBE_INTERVAL = 0.25

#: Closed-loop calibration: warm every spec once, then time this many
#: checks at bounded concurrency through the coordinator.
CALIBRATION_CHECKS = 1_000
CLOSED_LOOP_CONCURRENCY = 32

#: Open-loop rate as a fraction of the calibrated *cluster* capacity, with
#: clamps against calibration flukes on very slow or very fast hosts.
OFFERED_FRACTION = 0.5
MIN_OFFERED_RPS = 25.0
MAX_OFFERED_RPS = 4_000.0

#: The node kill lands after this fraction of the open-loop arrivals.
KILL_FRACTION = 0.5

#: Post-kill health bar for "failover verified": at least this share of the
#: post-kill arrivals must still be answered (verdict or structured error).
FAILOVER_ANSWERED_FLOOR = 0.9

#: How long to wait for stragglers after the last scheduled arrival.
DRAIN_TIMEOUT_SECONDS = 120.0


class ClusterNode:
    """One full EquivalenceServer in a daemon thread with its own loop."""

    def __init__(self, name: str, store_root: str) -> None:
        self.name = name
        self.port = 0
        self.alive = True
        self._loop: asyncio.AbstractEventLoop | None = None
        started = threading.Event()

        def run() -> None:
            async def main() -> None:
                server = EquivalenceServer(
                    port=0,
                    store_root=store_root,
                    num_shards=NODE_SHARDS,
                    max_processes=PER_SHARD_MAX_PROCESSES,
                    max_verdicts=PER_SHARD_MAX_VERDICTS,
                    max_queue=MAX_QUEUE,
                    node_name=name,
                )
                await server.start()
                self.port = server.port
                self._loop = asyncio.get_running_loop()
                started.set()
                try:
                    await server.serve_forever()
                except asyncio.CancelledError:
                    pass
                finally:
                    await server.stop()

            asyncio.run(main())

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        if not started.wait(timeout=60):
            raise RuntimeError(f"cluster bench node {name} failed to start")

    def kill(self) -> None:
        """Hard-stop the node; the coordinator sees a connection loss."""
        if not self.alive:
            return
        self.alive = False
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(lambda: [t.cancel() for t in asyncio.all_tasks(loop)])
        self._thread.join(timeout=60)


async def replicate_all(coordinator: ClusterCoordinator) -> int:
    """Push every process in the coordinator's store to its replica set."""
    assert coordinator.store is not None
    count = 0
    for digest in coordinator.store.processes.digests():
        fsp = coordinator.store.processes.get(digest)
        await coordinator.store_process({"process": to_dict(fsp)})
        count += 1
    return count


async def closed_loop_rps(
    coordinator: ClusterCoordinator, manifest: list[dict]
) -> tuple[float, int]:
    """Drive the manifest at bounded concurrency; returns (rps, errors)."""
    cursor = 0
    errors = 0

    async def worker() -> None:
        nonlocal cursor, errors
        while cursor < len(manifest):
            spec = manifest[cursor]
            cursor += 1
            try:
                await coordinator.check(dict(spec))
            except protocol.ServiceError:
                errors += 1

    begin = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(CLOSED_LOOP_CONCURRENCY)))
    return len(manifest) / (time.perf_counter() - begin), errors


async def calibrate_capacity(
    coordinator: ClusterCoordinator, specs: list[dict], calibration_checks: int
) -> float:
    """Warm every distinct spec once, then time a closed-loop pass."""
    await closed_loop_rps(coordinator, build_manifest(specs, len(specs)))
    rps, _errors = await closed_loop_rps(coordinator, build_manifest(specs, calibration_checks))
    return rps


async def run_open_loop(
    coordinator: ClusterCoordinator,
    specs: list[dict],
    num_requests: int,
    offered_rps: float,
    *,
    victim: ClusterNode | None = None,
    kill_at: int | None = None,
) -> dict:
    """Scheduled arrivals through the coordinator; latency from the schedule."""
    loop = asyncio.get_running_loop()
    latencies: list[float] = []
    errors: dict[str, int] = {}
    answered_after_kill = 0
    served_after_kill = 0

    async def one(spec: dict, scheduled: float, index: int) -> None:
        nonlocal answered_after_kill, served_after_kill
        post_kill = kill_at is not None and index >= kill_at
        try:
            await coordinator.check(dict(spec))
        except protocol.ServiceError as error:
            errors[error.code] = errors.get(error.code, 0) + 1
            if post_kill:
                answered_after_kill += 1
        except Exception:
            errors["crash"] = errors.get("crash", 0) + 1
        else:
            latencies.append(loop.time() - scheduled)
            if post_kill:
                answered_after_kill += 1
                served_after_kill += 1

    interval = 1.0 / offered_rps
    tasks: list[asyncio.Task] = []
    kill_task: asyncio.Task | None = None
    start = loop.time()
    for index in range(num_requests):
        scheduled = start + index * interval
        delay = scheduled - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        if victim is not None and index == kill_at:
            # Kill off-loop: joining the node thread must not stall arrivals.
            kill_task = asyncio.ensure_future(asyncio.to_thread(victim.kill))
        tasks.append(asyncio.create_task(one(specs[index % len(specs)], scheduled, index)))

    _done, pending = await asyncio.wait(tasks, timeout=DRAIN_TIMEOUT_SECONDS)
    for task in pending:
        task.cancel()
    if kill_task is not None:
        await kill_task
    wall = loop.time() - start

    served = sorted(latencies)

    def quantile(q: float) -> float:
        if not served:
            return float("inf")
        return served[min(int(q * len(served)), len(served) - 1)]

    requests_after_kill = num_requests - kill_at if kill_at is not None else 0
    return {
        "requests": num_requests,
        "served": len(served),
        "errors": errors,
        "unfinished": len(pending),
        "wall_seconds": round(wall, 3),
        "offered_rps": round(offered_rps, 1),
        "achieved_rps": round((len(served) + sum(errors.values())) / wall, 1),
        "p50_ms": round(quantile(0.50) * 1000, 3),
        "p95_ms": round(quantile(0.95) * 1000, 3),
        "p99_ms": round(quantile(0.99) * 1000, 3),
        "requests_after_kill": requests_after_kill,
        "answered_after_kill": answered_after_kill,
        "served_after_kill": served_after_kill,
    }


async def probe_wedged_nodes(coordinator: ClusterCoordinator, skip: set[str]) -> int:
    """How many surviving nodes cannot answer a ping after the run."""
    wedged = 0
    for name, node in coordinator.nodes.items():
        if name in skip:
            continue
        try:
            await node.link.request("ping", timeout=10.0)
        except Exception:
            wedged += 1
    return wedged


async def _make_coordinator(
    nodes: dict[str, ClusterNode], coordinator_root: Path, replication_factor: int
) -> ClusterCoordinator:
    coordinator = ClusterCoordinator(
        {name: ("127.0.0.1", node.port) for name, node in nodes.items()},
        replication_factor=replication_factor,
        steal_threshold=STEAL_THRESHOLD,
        store=ClusterStore(coordinator_root),
        probe_interval=PROBE_INTERVAL,
    )
    await coordinator.start()
    await replicate_all(coordinator)
    return coordinator


async def _baseline_cell(root: Path, calibration_checks: int) -> float:
    """Single-node closed-loop capacity at the fixed per-node budget."""
    specs, _workload = build_workload(str(root / "coordinator" / "processes"))
    nodes = {"solo": ClusterNode("solo", str(root / "solo"))}
    coordinator = await _make_coordinator(nodes, root / "coordinator", replication_factor=1)
    try:
        return await calibrate_capacity(coordinator, specs, calibration_checks)
    finally:
        await coordinator.stop()
        nodes["solo"].kill()


async def _cluster_cell(root: Path, num_requests: int, calibration_checks: int) -> dict:
    """Three nodes: capacity, then the open loop with a mid-run node kill."""
    specs, workload = build_workload(str(root / "coordinator" / "processes"))
    names = [f"node{i}" for i in range(NUM_NODES)]
    nodes = {name: ClusterNode(name, str(root / name)) for name in names}
    coordinator = await _make_coordinator(
        nodes, root / "coordinator", replication_factor=REPLICATION_FACTOR
    )
    try:
        capacity = await calibrate_capacity(coordinator, specs, calibration_checks)
        offered = min(max(capacity * OFFERED_FRACTION, MIN_OFFERED_RPS), MAX_OFFERED_RPS)
        # Kill the node the calibration traffic leaned on hardest: the
        # failover has to move real load, not an idle bystander.
        victim = max(coordinator.nodes.values(), key=lambda node: node.checks_sent).node_id
        kill_at = max(1, int(num_requests * KILL_FRACTION))
        run = await run_open_loop(
            coordinator,
            specs,
            num_requests,
            offered,
            victim=nodes[victim],
            kill_at=kill_at,
        )
        await coordinator.probe_once()
        health = coordinator.health()
        wedged = await probe_wedged_nodes(coordinator, skip={victim})
        failover_verified = (
            health.get(victim) is False
            and run["served_after_kill"] > 0
            and run["answered_after_kill"]
            >= FAILOVER_ANSWERED_FLOOR * run["requests_after_kill"]
        )
        return {
            "capacity_rps": capacity,
            "run": run,
            "workload": workload,
            "victim": victim,
            "kill_at": kill_at,
            "health_after": health,
            "wedged_nodes": wedged,
            "failover_verified": failover_verified,
            "failovers": coordinator.failovers,
            "steals": coordinator.steals,
            "repairs": coordinator.repairs,
            "replications": coordinator.replications,
            "replication_failures": coordinator.replication_failures,
        }
    finally:
        await coordinator.stop()
        for node in nodes.values():
            node.kill()


def run_cells(
    num_requests: int = DEFAULT_NUM_REQUESTS,
    calibration_checks: int = CALIBRATION_CHECKS,
) -> tuple[list[dict], dict]:
    """The cluster measurement; returns (cluster_records, meta summary)."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-cluster-") as tmp:
        root = Path(tmp)
        single_capacity = asyncio.run(_baseline_cell(root / "single", calibration_checks))
        cell = asyncio.run(_cluster_cell(root / "cluster", num_requests, calibration_checks))

    run = cell["run"]
    node_speedup = cell["capacity_rps"] / single_capacity if single_capacity else 0.0
    answered = run["served"] + sum(run["errors"].values())
    throughput_ratio = answered / num_requests if num_requests else 0.0
    record = {
        "solver": f"cluster_open_loop_{NUM_NODES}_nodes",
        "family": FAMILY,
        "n": num_requests,
        "seconds": run["wall_seconds"],
        "offered_rps": run["offered_rps"],
        "achieved_rps": run["achieved_rps"],
        "throughput_ratio": round(throughput_ratio, 4),
        "p50_ms": run["p50_ms"],
        "p95_ms": run["p95_ms"],
        "p99_ms": run["p99_ms"],
        "served": run["served"],
        "overloaded": run["errors"].get("overloaded", 0),
        "internal": run["errors"].get("internal", 0),
        "unfinished": run["unfinished"],
        "node_speedup": round(node_speedup, 2),
        "wedged_nodes": cell["wedged_nodes"],
        "killed_node": cell["victim"],
        "failover_verified": cell["failover_verified"],
        "failovers": cell["failovers"],
        "repairs": cell["repairs"],
        "steals": cell["steals"],
    }
    meta = {
        "nodes": NUM_NODES,
        "baseline_nodes": BASELINE_NODES,
        "node_shards": NODE_SHARDS,
        "replication_factor": REPLICATION_FACTOR,
        "per_node_max_processes": PER_SHARD_MAX_PROCESSES,
        "per_node_max_verdicts": PER_SHARD_MAX_VERDICTS,
        "workload": cell["workload"],
        "single_node_capacity_rps": round(single_capacity, 1),
        "cluster_capacity_rps": round(cell["capacity_rps"], 1),
        "node_speedup": round(node_speedup, 2),
        "calibration_checks": calibration_checks,
        "offered_fraction": OFFERED_FRACTION,
        "kill_at_request": cell["kill_at"],
        "killed_node": cell["victim"],
        "health_after": cell["health_after"],
        "requests_after_kill": run["requests_after_kill"],
        "answered_after_kill": run["answered_after_kill"],
        "served_after_kill": run["served_after_kill"],
        "replications": cell["replications"],
        "replication_failures": cell["replication_failures"],
        "repairs": cell["repairs"],
        "errors": run["errors"],
    }
    return [record], meta


# ----------------------------------------------------------------------
# pytest entry point (run by benchmarks/run_all.py's suite smoke)
# ----------------------------------------------------------------------
def test_cluster_open_loop_smoke():
    records, meta = run_cells(num_requests=600, calibration_checks=200)
    record = records[0]
    assert record["wedged_nodes"] == 0
    assert record["failover_verified"] is True
    assert record["throughput_ratio"] > 0.8
    # The full-run gate is 2x; the smoke calibration is short and noisy, so
    # it only asserts the cache-residency effect exists at all.
    assert record["node_speedup"] > 1.2


if __name__ == "__main__":
    records, meta = run_cells(QUICK_NUM_REQUESTS)
    record = records[0]
    print(
        f"{record['solver']}: capacity {meta['cluster_capacity_rps']} rps vs "
        f"{meta['single_node_capacity_rps']} rps single-node "
        f"(node_speedup {record['node_speedup']}x)"
    )
    print(
        f"  open loop: offered {record['offered_rps']} rps, achieved "
        f"{record['achieved_rps']} rps over {record['seconds']}s, "
        f"ratio {record['throughput_ratio']}, "
        f"p50/p95/p99 {record['p50_ms']}/{record['p95_ms']}/{record['p99_ms']} ms"
    )
    print(
        f"  killed {record['killed_node']} at request {meta['kill_at_request']}: "
        f"failover_verified={record['failover_verified']} "
        f"(answered {meta['answered_after_kill']}/{meta['requests_after_kill']} after kill), "
        f"failovers={record['failovers']} repairs={record['repairs']} "
        f"wedged={record['wedged_nodes']}"
    )
