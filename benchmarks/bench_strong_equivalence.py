"""Experiment E5 (Theorem 3.1): strong-equivalence checking, three solvers, scaling shape.

The paper's headline algorithmic claim is that strong equivalence is decidable
in ``O(m log n + n)`` with Paige-Tarjan partition refinement, versus the
``O(nm)`` naive method of Lemma 3.2.  There is no measured table in the 1983
paper, so the reproduction target is the *shape*: on growing instances the
splitter-based solvers must scale markedly better than the naive method, and
all three must return identical partitions.

Workloads: duplicated chains (large equivalence classes), combs (many small
classes, slow refinement) and random observable processes.
"""

from __future__ import annotations

import pytest

from repro.generators.families import comb, duplicated_chain
from repro.generators.random_fsp import random_observable_fsp
from repro.partition.generalized import GeneralizedPartitioningInstance, Solver, solve

SIZES = [20, 60, 120]
SOLVERS = [Solver.NAIVE, Solver.KANELLAKIS_SMOLKA, Solver.PAIGE_TARJAN]


def _workloads(size: int):
    return {
        "duplicated-chain": duplicated_chain(size, 3),
        "comb": comb(size),
        "random": random_observable_fsp(size * 2, transition_density=2.5, seed=size),
    }


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("solver", SOLVERS, ids=[s.value for s in SOLVERS])
@pytest.mark.parametrize("workload", ["duplicated-chain", "comb", "random"])
def test_strong_equivalence_solver_scaling(benchmark, size, solver, workload):
    process = _workloads(size)[workload]
    instance = GeneralizedPartitioningInstance.from_fsp(process)

    result = benchmark(lambda: solve(instance, solver))

    n, m = instance.size
    benchmark.extra_info["experiment"] = "E5"
    benchmark.extra_info["workload"] = workload
    benchmark.extra_info["states"] = n
    benchmark.extra_info["transitions"] = m
    benchmark.extra_info["blocks"] = len(result)
    # correctness cross-check against the reference solver on the smallest size
    if size == SIZES[0]:
        assert result == solve(instance, Solver.NAIVE)
