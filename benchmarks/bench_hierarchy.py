"""Experiment E14 (Propositions 2.2.3/2.2.4): the inclusion chain measured on random processes.

For restricted observable processes the chain approx  =>  failure-equivalence
=>  approx_1 must hold pairwise; on deterministic processes all notions
collapse.  The benchmark runs the three checkers over all state pairs of
random processes, records how often each inclusion is strict, and times the
three checkers side by side on identical inputs -- the practical reading of
the complexity gap (polynomial partition refinement versus subset-construction
based checks).
"""

from __future__ import annotations

import pytest

from repro.equivalence.failure import failure_equivalent
from repro.equivalence.language import language_equivalent
from repro.equivalence.observational import observational_partition, observationally_equivalent
from repro.generators.random_fsp import (
    random_deterministic_fsp,
    random_restricted_observable_fsp,
)

SIZES = [6, 10]


@pytest.mark.parametrize("size", SIZES)
def test_inclusion_chain_census(benchmark, size):
    process = random_restricted_observable_fsp(size, transition_density=1.6, seed=size)
    states = sorted(process.states)
    pairs = [(p, q) for i, p in enumerate(states) for q in states[i + 1 :]]

    def census():
        counts = {"observational": 0, "failure": 0, "language": 0, "violations": 0}
        for first, second in pairs:
            obs = observationally_equivalent(process, first, second)
            fail = failure_equivalent(process, first, second)
            lang = language_equivalent(process, first, second)
            counts["observational"] += obs
            counts["failure"] += fail
            counts["language"] += lang
            if (obs and not fail) or (fail and not lang):
                counts["violations"] += 1
        return counts

    counts = benchmark(census)
    benchmark.extra_info["experiment"] = "E14"
    benchmark.extra_info.update(counts)
    assert counts["violations"] == 0
    assert counts["observational"] <= counts["failure"] <= counts["language"]


@pytest.mark.parametrize("size", SIZES)
def test_deterministic_collapse(benchmark, size):
    process = random_deterministic_fsp(size, seed=size)
    states = sorted(process.states)
    pairs = [(p, q) for i, p in enumerate(states) for q in states[i + 1 :]]

    def census():
        mismatches = 0
        for first, second in pairs:
            if language_equivalent(process, first, second) != observationally_equivalent(
                process, first, second
            ):
                mismatches += 1
        return mismatches

    mismatches = benchmark(census)
    benchmark.extra_info["experiment"] = "E14"
    benchmark.extra_info["mismatches"] = mismatches
    assert mismatches == 0


@pytest.mark.parametrize("size", [20, 50])
def test_partition_once_answers_all_pairs(benchmark, size):
    """The ablation behind Theorem 4.1(a): one partition answers every pairwise query."""
    process = random_restricted_observable_fsp(size, transition_density=2.0, seed=size)
    partition = benchmark(lambda: observational_partition(process))
    benchmark.extra_info["experiment"] = "E14"
    benchmark.extra_info["states"] = process.num_states
    benchmark.extra_info["blocks"] = len(partition)
