"""Experiment E6 (Lemma 3.1 / 3.2): the reduction to generalized partitioning and the naive method.

Measures (a) the cost of building the Lemma 3.1 instance from a process,
(b) the number of global passes the naive method needs (its O(n) worst case),
and (c) solver behaviour on a genuinely relational instance (unbounded fanout)
where the Paige-Tarjan three-way split is exercised.
"""

from __future__ import annotations

import pytest

from repro.generators.families import duplicated_chain
from repro.generators.random_fsp import random_observable_fsp
from repro.partition.generalized import GeneralizedPartitioningInstance, Solver, solve
from repro.partition.naive import naive_refinement_passes

SIZES = [30, 90]


@pytest.mark.parametrize("size", SIZES)
def test_lemma31_instance_construction(benchmark, size):
    process = random_observable_fsp(size, transition_density=3.0, seed=size)
    benchmark(lambda: GeneralizedPartitioningInstance.from_fsp(process))
    benchmark.extra_info["experiment"] = "E6"
    benchmark.extra_info["states"] = process.num_states
    benchmark.extra_info["transitions"] = process.num_transitions


@pytest.mark.parametrize("size", SIZES)
def test_naive_method_pass_count(benchmark, size):
    """The naive method needs a number of passes that grows with the chain length."""
    process = duplicated_chain(size, 2)
    instance = GeneralizedPartitioningInstance.from_fsp(process)
    passes = benchmark(lambda: naive_refinement_passes(instance))
    benchmark.extra_info["experiment"] = "E6"
    benchmark.extra_info["passes"] = passes
    benchmark.extra_info["states"] = process.num_states
    assert passes >= size // 2  # refinement information travels one chain link per pass


@pytest.mark.parametrize(
    "fanout,size", [(2, 40), (6, 40), (12, 40)], ids=["fanout2", "fanout6", "fanout12"]
)
def test_unbounded_fanout_instances(benchmark, fanout, size):
    """Fanout is the parameter separating the Kanellakis-Smolka bound from Paige-Tarjan."""
    process = random_observable_fsp(size, transition_density=float(fanout), seed=fanout * size)
    instance = GeneralizedPartitioningInstance.from_fsp(process)
    result = benchmark(lambda: solve(instance, Solver.PAIGE_TARJAN))
    benchmark.extra_info["experiment"] = "E6"
    benchmark.extra_info["fanout"] = instance.fanout
    benchmark.extra_info["blocks"] = len(result)
    assert result == solve(instance, Solver.NAIVE)


# ----------------------------------------------------------------------
# LTS-kernel solver trajectory (the cells behind BENCH_partition.json; see
# benchmarks/run_all.py for the full solver x family x size sweep).
# ----------------------------------------------------------------------
KERNEL_SIZES = [200, 600]


@pytest.mark.parametrize("size", KERNEL_SIZES)
@pytest.mark.parametrize(
    "solver", [Solver.KANELLAKIS_SMOLKA, Solver.PAIGE_TARJAN], ids=["ks", "pt"]
)
def test_kernel_solvers_on_duplicated_chain(benchmark, solver, size):
    """End-to-end Lemma 3.1 pipeline (reduction + solve) on the integer kernel."""
    process = duplicated_chain(size // 2, 2)
    result = benchmark(lambda: solve(GeneralizedPartitioningInstance.from_fsp(process), solver))
    benchmark.extra_info["experiment"] = "E6"
    benchmark.extra_info["states"] = process.num_states
    benchmark.extra_info["blocks"] = len(result)


@pytest.mark.parametrize("size", KERNEL_SIZES)
def test_seed_baseline_on_duplicated_chain(benchmark, size):
    """The frozen pre-kernel pipeline, kept as the fixed reference point."""
    from seed_baseline import seed_kanellakis_smolka

    process = duplicated_chain(size // 2, 2)
    result = benchmark(lambda: seed_kanellakis_smolka(process))
    benchmark.extra_info["experiment"] = "E6"
    benchmark.extra_info["states"] = process.num_states
    benchmark.extra_info["blocks"] = len(result)
