"""On-the-fly exploration benchmark: lazy products, early exits, compositional minimisation.

Three questions about the :mod:`repro.explore` layer, answered on the
composed scenario families of :mod:`repro.generators.families`:

* **Early exit** -- on an inequivalent composed family whose reachable
  product exceeds :math:`10^5` states, the on-the-fly checker must return a
  *verified* distinguishing trace while visiting a small fraction of the
  product (``explore_visit_fraction``, gated by
  ``benchmarks/check_regression.py`` against the committed ceiling).
* **Compositional minimisation** -- ``minimize_compositionally`` (quotient
  every component under observational equivalence before composing) must
  agree -- be observationally equivalent -- with the eager
  minimise-after-compose route on every scenario family, and is timed next
  to it.
* **Verdict agreement** -- on small composed pairs where the eager route is
  feasible, the on-the-fly verdict must match ``Engine.check`` on the
  materialised systems, for both the strong and the observational notion.

``run_cells`` reports records in the ``solver|family|n`` schema of
``BENCH_partition.json`` so ``benchmarks/run_all.py`` folds them into the
trajectory (section ``explore_records``).
"""

from __future__ import annotations

import time

from repro.engine import Engine
from repro.equivalence.minimize import minimize_observational
from repro.explore import build_implicit, check_implicit, compose_eager, minimize_compositionally
from repro.generators.families import (
    dining_philosophers_system,
    interleaved_cycles_pair,
    interleaved_cycles_product_size,
    milner_scheduler_system,
    redundant_interleaving_system,
    token_ring_pair,
    token_ring_system,
)

#: scenario specs for the minimisation comparison (eager route feasible).
MINIMIZE_FAMILIES = {
    "dining_philosophers": lambda: dining_philosophers_system(4),
    "token_ring": lambda: token_ring_system(6),
    "milner_scheduler": lambda: milner_scheduler_system(4),
    "redundant_interleaving": lambda: redundant_interleaving_system(3, 4, 3),
}

#: the large inequivalent family of the early-exit gate: six interleaved
#: 8-cycles (8^6 = 262144 reachable product states) with a local fault.
LARGE_LENGTHS = [8] * 6
LARGE_FAMILY = "interleaved_cycles_fault"

#: small composed pairs for the verdict cross-check against the eager engine
#: route: (name, builder of (left_spec, right_spec), expected_equivalent).
SMALL_PAIRS = (
    ("cycles_small_fault", lambda: interleaved_cycles_pair([4, 3, 3]), False),
    ("token_ring_fault", lambda: token_ring_pair(4), False),
    (
        "cycles_small_ok",
        lambda: (interleaved_cycles_pair([4, 3, 3])[0], interleaved_cycles_pair([4, 3, 3])[0]),
        True,
    ),
)


def _best_of(fn, repeats: int):
    best, value = float("inf"), None
    for _ in range(repeats):
        begin = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - begin)
    return best, value


def run_minimize_cells(repeats: int, engine: Engine) -> tuple[list[dict], bool]:
    """Eager minimise-after-compose vs compositional minimisation, per family."""
    records: list[dict] = []
    agree = True
    for family, build in MINIMIZE_FAMILIES.items():
        spec = build()
        eager = compose_eager(spec)
        n, m = eager.num_states, eager.num_transitions
        eager_seconds, eager_min = _best_of(
            lambda: minimize_observational(compose_eager(spec)), repeats
        )
        comp_seconds, comp_min = _best_of(lambda: minimize_compositionally(spec), repeats)
        verdict = engine.check(eager_min, comp_min, "observational", align=True, witness=False)
        if not verdict.equivalent:
            agree = False
        records.append(
            {
                "solver": "eager_minimize",
                "family": family,
                "n": n,
                "transitions": m,
                "blocks": eager_min.num_states,
                "seconds": round(eager_seconds, 6),
            }
        )
        records.append(
            {
                "solver": "compositional_minimize",
                "family": family,
                "n": n,
                "transitions": m,
                "blocks": comp_min.num_states,
                "seconds": round(comp_seconds, 6),
            }
        )
    return records, agree


def run_verdict_cells(engine: Engine) -> bool:
    """On-the-fly verdicts vs the eager engine route on small composed pairs."""
    agree = True
    for _name, build, expected in SMALL_PAIRS:
        left_spec, right_spec = build()
        left, right = compose_eager(left_spec), compose_eager(right_spec)
        for notion in ("strong", "observational"):
            eager = engine.check(left, right, notion, align=True, witness=False).equivalent
            lazy = check_implicit(
                build_implicit(left_spec), build_implicit(right_spec), notion
            ).equivalent
            if eager != lazy or eager != expected:
                agree = False
    return agree


def run_large_cells(repeats: int) -> tuple[list[dict], dict, bool]:
    """The early-exit measurement on the >= 10^5-state inequivalent family."""
    product_states = interleaved_cycles_product_size(LARGE_LENGTHS)
    records: list[dict] = []
    fractions: dict[str, float] = {}
    healthy = True
    for notion in ("strong", "observational"):
        left_spec, right_spec = interleaved_cycles_pair(LARGE_LENGTHS)
        seconds, result = _best_of(
            lambda: check_implicit(
                build_implicit(left_spec), build_implicit(right_spec), notion
            ),
            repeats,
        )
        if result.equivalent or not result.trace_verified:
            healthy = False
        fractions[notion] = result.pairs_visited / product_states
        records.append(
            {
                "solver": f"on_the_fly_{notion}",
                "family": LARGE_FAMILY,
                "n": product_states,
                "transitions": result.pairs_visited,
                "blocks": result.left_states + result.right_states,
                "seconds": round(seconds, 6),
            }
        )
    extras = {
        "explore_product_states": product_states,
        "explore_visit_fraction": round(max(fractions.values()), 8),
        "explore_visit_fractions": {k: round(v, 8) for k, v in fractions.items()},
        "explore_trace_verified": healthy,
    }
    return records, extras, healthy


def run_cells(repeats: int = 1) -> tuple[list[dict], dict, bool]:
    """All explore cells; returns ``(records, extras, agree)``.

    ``agree`` is False when compositional minimisation disagrees with the
    eager route, an on-the-fly verdict disagrees with the engine, the large
    inequivalent family is not decided with a verified trace, or the visit
    fraction is not small -- all correctness properties, which the CI gate
    treats like solver disagreements.
    """
    engine = Engine()
    minimize_records, minimize_agree = run_minimize_cells(repeats, engine)
    verdict_agree = run_verdict_cells(engine)
    large_records, extras, large_healthy = run_large_cells(repeats)
    extras = {
        **extras,
        "explore_minimize_agree": minimize_agree,
        "explore_verdicts_agree": verdict_agree,
    }
    agree = minimize_agree and verdict_agree and large_healthy
    return minimize_records + large_records, extras, agree


# ----------------------------------------------------------------------
# pytest-benchmark entry points (run by benchmarks/run_all.py's suite smoke)
# ----------------------------------------------------------------------
def test_on_the_fly_early_exit(benchmark):
    left_spec, right_spec = interleaved_cycles_pair(LARGE_LENGTHS)
    result = benchmark(
        lambda: check_implicit(build_implicit(left_spec), build_implicit(right_spec), "strong")
    )
    assert not result.equivalent and result.trace_verified
    product = interleaved_cycles_product_size(LARGE_LENGTHS)
    benchmark.extra_info["pairs_visited"] = result.pairs_visited
    assert result.pairs_visited <= 0.10 * product


def test_compositional_minimize(benchmark):
    spec = dining_philosophers_system(3)
    minimal = benchmark(lambda: minimize_compositionally(spec))
    assert minimal.num_states <= compose_eager(spec).num_states


def test_routes_agree():
    records, extras, agree = run_cells()
    assert agree, extras


if __name__ == "__main__":
    records, extras, agree = run_cells()
    for record in records:
        print(
            f"{record['solver']:28s} {record['family']:24s} n={record['n']:7d} "
            f"{record['seconds'] * 1000:9.2f} ms"
        )
    print(f"visit fraction on {LARGE_FAMILY}: {extras['explore_visit_fraction']:.6f}; "
          f"agree={agree}")
