"""Vector-kernel benchmarks: numpy array refinement vs the python solvers.

The vectorized kernel (:mod:`repro.partition.vectorized`) recomputes whole
splitter-signature rounds with numpy sorts instead of walking arcs in the
interpreter; its home turf is wide-and-shallow families such as the
``shift_register`` de Bruijn process (``O(log n)`` refinement depth), where
the per-round constant is paid ``log n`` times instead of ``n`` times.  These
benchmarks time the kernel -- in-memory CSR, memory-mapped CSR, and the
packed-bitset weak-saturation backend -- next to the python solvers at
CI-friendly sizes.  The scale tiers (``10^5``/``10^6`` states) live in the
``vector_records`` section of ``BENCH_partition.json``
(``benchmarks/run_all.py --scale``), gated by ``check_regression.py``.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")

from repro.core.lts import LTS  # noqa: E402
from repro.core.weak import saturate_lts  # noqa: E402
from repro.generators.families import (  # noqa: E402
    shift_register,
    shift_register_csr,
    tau_ladder,
    tau_mesh,
)
from repro.partition.generalized import (  # noqa: E402
    GeneralizedPartitioningInstance,
    Solver,
    solve,
)
from repro.partition.vectorized import vector_refine, vector_refine_csr  # noqa: E402
from repro.utils.matrices import MmapCSR  # noqa: E402

BITS = [8, 11]


@pytest.mark.parametrize("bits", BITS)
def test_vector_refine_csr(benchmark, bits):
    """The inner kernel on CSR arrays built without an FSP in between."""
    csr, block_of = shift_register_csr(bits)
    refined = benchmark(lambda: vector_refine_csr(csr, block_of))
    benchmark.extra_info["states"] = csr.n
    benchmark.extra_info["blocks"] = int(refined.max()) + 1


@pytest.mark.parametrize("bits", BITS)
def test_vector_refine_mmap(benchmark, bits, tmp_path):
    """The same kernel with the edge arrays memory-mapped from disk."""
    _, block_of = shift_register_csr(bits, mmap_dir=tmp_path)
    store = MmapCSR.open(tmp_path)
    refined = benchmark(lambda: vector_refine_csr(store, block_of))
    benchmark.extra_info["states"] = store.n
    benchmark.extra_info["blocks"] = int(refined.max()) + 1


@pytest.mark.parametrize("bits", BITS)
@pytest.mark.parametrize(
    "solver",
    [Solver.KANELLAKIS_SMOLKA, Solver.PAIGE_TARJAN],
    ids=lambda solver: solver.value,
)
def test_python_solver_baseline(benchmark, solver, bits):
    """The python solvers on the identical instance, via the FSP pipeline."""
    process = shift_register(bits)
    instance = GeneralizedPartitioningInstance.from_fsp(process, include_tau=False)
    partition = benchmark(lambda: solve(instance, solver))
    benchmark.extra_info["states"] = process.num_states
    benchmark.extra_info["blocks"] = len(partition)


@pytest.mark.parametrize("bits", BITS)
def test_vector_backend_pipeline(benchmark, bits):
    """End-to-end ``solve(..., backend="vector")`` including the name round-trip."""
    process = shift_register(bits)
    instance = GeneralizedPartitioningInstance.from_fsp(process, include_tau=False)
    vectorized = benchmark(lambda: vector_refine(instance))
    assert vectorized.as_frozen() == solve(instance, Solver.PAIGE_TARJAN).as_frozen()
    benchmark.extra_info["states"] = process.num_states
    benchmark.extra_info["blocks"] = len(vectorized)


@pytest.mark.parametrize("size", [60, 150])
@pytest.mark.parametrize("family", ["tau_ladder", "tau_mesh"])
def test_vector_saturation(benchmark, family, size):
    """The packed-uint64 closure backend of ``saturate_lts`` vs the python path."""
    builder = {"tau_ladder": lambda n: tau_ladder(max(1, n // 2)), "tau_mesh": tau_mesh}[family]
    lts = LTS.from_fsp(builder(size), include_tau=True)
    saturated = benchmark(lambda: saturate_lts(lts, backend="vector"))
    assert saturated.num_transitions == saturate_lts(lts).num_transitions
    benchmark.extra_info["family"] = family
    benchmark.extra_info["states"] = lts.n
    benchmark.extra_info["saturated_transitions"] = saturated.num_transitions
