"""Experiment E8 (Theorem 4.1(b) + Fig. 5a): fixed-level approx_k versus the polynomial limit.

The paradox the paper highlights: each fixed approximation level approx_k is
PSPACE-complete, yet the limit approx is polynomial.  The benchmark makes that
empirical: deciding approx_1/approx_2 on the nondeterministic-counter family
(whose determinisation doubles with every extra bit) blows up exponentially,
while the observational-equivalence decision on the same inputs stays cheap.
The Theorem 4.1(b) reduction itself is also timed (it is polynomial -- the
hardness comes from the base problem, not the gadget).
"""

from __future__ import annotations

import pytest

from repro.core.paper_figures import fig2_language_pair
from repro.equivalence.kobs import k_observational_equivalent_processes
from repro.equivalence.observational import observationally_equivalent_processes
from repro.generators.families import restricted_counter
from repro.reductions.theorem41b import separating_pair, theorem41b_iterate

COUNTER_BITS = [4, 6, 8]


@pytest.mark.parametrize("bits", COUNTER_BITS)
def test_approx1_on_counter_family(benchmark, bits):
    """approx_1 = language equivalence: the subset construction doubles per bit."""
    first = restricted_counter(bits)
    second = restricted_counter(bits).rename_states(prefix="o")
    result = benchmark(lambda: k_observational_equivalent_processes(first, second, 1))
    benchmark.extra_info["experiment"] = "E8"
    benchmark.extra_info["bits"] = bits
    benchmark.extra_info["answer"] = result
    assert result is True


@pytest.mark.parametrize("bits", COUNTER_BITS)
def test_observational_on_counter_family(benchmark, bits):
    """The polynomial limit on the same inputs (the contrast the paper emphasises)."""
    first = restricted_counter(bits)
    second = restricted_counter(bits).rename_states(prefix="o")
    result = benchmark(lambda: observationally_equivalent_processes(first, second))
    benchmark.extra_info["experiment"] = "E8"
    benchmark.extra_info["bits"] = bits
    benchmark.extra_info["answer"] = result
    assert result is True


@pytest.mark.parametrize("level", [1, 2, 3])
def test_theorem41b_reduction_cost(benchmark, level):
    """Building the level-k separating pair is polynomial in k (the gadget is cheap)."""
    first, second = fig2_language_pair()
    pair = benchmark(lambda: theorem41b_iterate(first, second, level))
    benchmark.extra_info["experiment"] = "E8"
    benchmark.extra_info["level"] = level
    benchmark.extra_info["states"] = pair[0].num_states + pair[1].num_states


@pytest.mark.parametrize("level", [1, 2])
def test_deciding_approx_k_on_separating_pairs(benchmark, level):
    first, second = separating_pair(level)
    result = benchmark(lambda: k_observational_equivalent_processes(first, second, level + 1))
    benchmark.extra_info["experiment"] = "E8"
    benchmark.extra_info["level"] = level
    assert result is False
