"""Open-loop sustained-throughput benchmark for the hardened service pool.

What is measured
----------------

``bench_service.py`` measures *closed-loop* batch throughput (submit
everything, wait).  Closed-loop latency numbers flatter an overloaded
system: when the server slows down, a closed-loop client slows its own
offering down with it (coordinated omission).  This benchmark instead
drives the :class:`~repro.service.shards.ShardPool` **open loop**: requests
arrive on a fixed schedule regardless of how the pool is doing, and each
request's latency is measured from its *scheduled arrival*, not from
submission -- queueing delay the schedule forced on a slow pool counts
against it.

The traffic is deliberately hostile in the way production traffic is:

* the mixed digest-referenced manifest of ``bench_service.build_workload``
  (strong / observational / language, repeated pairs, shard-sticky routing),
* plus a **slow-poison tail**: ~1% of requests are checks over much larger
  processes carrying a short per-request deadline.  Without the deadline
  layer, each poison request wedges a single-worker shard for however long
  the check takes, and the sticky routing then backs that shard's queue up
  while other shards idle; with deadlines + bounded queues + work-stealing,
  poisons abort with ``deadline_exceeded``, their home shard's cold
  followers migrate, and the sustained throughput holds.

Rate selection is hardware-independent: a closed-loop warm pass first
calibrates the host's capacity, and the open-loop schedule then offers
:data:`OFFERED_FRACTION` of it.  The gates in
``benchmarks/check_regression.py`` (``service_load_gates``) are therefore
ratios and absolute latency ceilings, not absolute throughputs:

* ``throughput_ratio_floor``: achieved/offered completion ratio,
* ``p99_ms_ceiling``: 99th-percentile open-loop latency of served requests,
* ``max_wedged_shards``: shards unresponsive after the run (with
  ``revivals`` required to stay zero -- poison must be *shed*, not crash
  workers).

Results land in ``BENCH_partition.json`` as the ``service_load_records``
section (``benchmarks/run_all.py --soak``) and gate the ``service-soak``
CI lane.
"""

from __future__ import annotations

import tempfile
import threading
import time

from bench_service import (
    PER_SHARD_MAX_PROCESSES,
    PER_SHARD_MAX_VERDICTS,
    build_manifest,
    build_workload,
)

from repro.generators.random_fsp import perturb, random_fsp
from repro.service import protocol
from repro.service.shards import ShardPool, _worker_stats
from repro.service.store import ProcessStore

FAMILY = "service_load"

#: The acceptance-criterion request count (and the --quick count).
DEFAULT_NUM_REQUESTS = 10_000
QUICK_NUM_REQUESTS = 2_000

#: Shards and flow-control posture under test.
NUM_SHARDS = 4
MAX_QUEUE = 512
STEAL_THRESHOLD = 8

#: Every POISON_EVERY-th request is a slow-poison check.
POISON_EVERY = 200
#: States of each poison process: big enough that one observational check
#: costs several hundred milliseconds on any host, so an unbounded one would
#: visibly wedge its shard.  Enough distinct pairs that poison requests keep
#: missing the verdict cache for most of the run.
POISON_STATES = 320
NUM_POISON_PAIRS = 32
#: The poison deadline: far below a poison check, far above the p99 of the
#: regular traffic.  Aborted poison still burns deadline-bounded worker
#: time, which is exactly the sustained pressure being measured.
POISON_DEADLINE_SECONDS = 0.12

#: Open-loop rate as a fraction of the calibrated closed-loop capacity.
OFFERED_FRACTION = 0.5
#: Calibration pass size (closed loop, warm caches).
CALIBRATION_CHECKS = 1_000
#: Bounds on the offered rate, protecting against calibration flukes on
#: very slow or very fast hosts.
MIN_OFFERED_RPS = 25.0
MAX_OFFERED_RPS = 4_000.0

#: How long to wait for stragglers after the last scheduled arrival before
#: declaring the remainder wedged.
DRAIN_TIMEOUT_SECONDS = 120.0


def build_poison_specs(store_root: str) -> list[dict]:
    """Digest-referenced checks big enough to be slow everywhere."""
    store = ProcessStore(store_root)
    specs = []
    for index in range(NUM_POISON_PAIRS):
        base = random_fsp(
            POISON_STATES, tau_probability=0.2, all_accepting=True, seed=9000 + index
        )
        partner = perturb(base, seed=9500 + index)
        specs.append(
            {
                "left": {"digest": store.put(base)},
                "right": {"digest": store.put(partner)},
                "notion": "observational",
                "align": True,
                "witness": False,
                "params": {},
            }
        )
    return specs


def calibrate_capacity(pool: ShardPool, specs: list[dict]) -> float:
    """Closed-loop warm throughput (checks/second) of the regular traffic."""
    pool.check_many(build_manifest(specs, len(specs)))  # warm every cache
    manifest = build_manifest(specs, CALIBRATION_CHECKS)
    begin = time.perf_counter()
    pool.check_many(manifest)
    return len(manifest) / (time.perf_counter() - begin)


def run_open_loop(
    pool: ShardPool,
    specs: list[dict],
    poison_specs: list[dict],
    num_requests: int,
    offered_rps: float,
) -> dict:
    """Drive the schedule; returns raw counters and latency quantiles."""
    lock = threading.Lock()
    latencies: list[float] = []  # seconds, served requests only
    errors: dict[str, int] = {}
    pending = threading.Semaphore(0)

    def on_done(future, scheduled: float) -> None:
        completed = time.monotonic()
        error = future.exception()
        with lock:
            if error is None:
                latencies.append(completed - scheduled)
            else:
                code = error.code if isinstance(error, protocol.ServiceError) else "crash"
                errors[code] = errors.get(code, 0) + 1
        pending.release()

    interval = 1.0 / offered_rps
    submitted = 0
    rejected_overloaded = 0
    start = time.monotonic()
    for index in range(num_requests):
        scheduled = start + index * interval
        now = time.monotonic()
        if scheduled > now:
            time.sleep(scheduled - now)
        poison = index % POISON_EVERY == POISON_EVERY - 1
        spec = (
            poison_specs[(index // POISON_EVERY) % len(poison_specs)]
            if poison
            else specs[index % len(specs)]
        )
        deadline = time.monotonic() + POISON_DEADLINE_SECONDS if poison else None
        try:
            _home, _shard, _job, future = pool.submit_check(spec, deadline=deadline)
        except protocol.ServiceError as error:
            # Backpressure at the door (queue full): an explicit rejection,
            # not a latency sample.
            assert error.code == protocol.OVERLOADED
            rejected_overloaded += 1
            continue
        submitted += 1
        future.add_done_callback(lambda f, scheduled=scheduled: on_done(f, scheduled))

    drained = 0
    drain_deadline = time.monotonic() + DRAIN_TIMEOUT_SECONDS
    for _ in range(submitted):
        if not pending.acquire(timeout=max(drain_deadline - time.monotonic(), 0.001)):
            break
        drained += 1
    wall = time.monotonic() - start

    with lock:
        served = sorted(latencies)
        error_counts = dict(errors)

    def quantile(q: float) -> float:
        if not served:
            return float("inf")
        return served[min(int(q * len(served)), len(served) - 1)]

    return {
        "requests": num_requests,
        "submitted": submitted,
        "served": len(served),
        "unfinished": submitted - drained,
        "rejected_overloaded": rejected_overloaded,
        "errors": error_counts,
        "wall_seconds": round(wall, 3),
        "offered_rps": round(offered_rps, 1),
        "achieved_rps": round((len(served) + sum(error_counts.values())) / wall, 1),
        "p50_ms": round(quantile(0.50) * 1000, 3),
        "p95_ms": round(quantile(0.95) * 1000, 3),
        "p99_ms": round(quantile(0.99) * 1000, 3),
    }


def probe_wedged_shards(pool: ShardPool, timeout: float = 10.0) -> int:
    """How many shards cannot answer a trivial job after the run."""
    wedged = 0
    for shard in range(pool.num_shards):
        try:
            pool.submit(shard, _worker_stats).result(timeout=timeout)
        except Exception:
            wedged += 1
    return wedged


def run_cells(num_requests: int = DEFAULT_NUM_REQUESTS) -> tuple[list[dict], dict]:
    """The soak measurement; returns (service_load_records, meta summary)."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-service-load-") as store_root:
        specs, workload = build_workload(store_root)
        poison_specs = build_poison_specs(store_root)
        with ShardPool(
            NUM_SHARDS,
            store_root,
            max_processes=PER_SHARD_MAX_PROCESSES,
            max_verdicts=PER_SHARD_MAX_VERDICTS,
            max_queue=MAX_QUEUE,
            steal_threshold=STEAL_THRESHOLD,
        ) as pool:
            pool.warm_up()
            capacity = calibrate_capacity(pool, specs)
            offered = min(max(capacity * OFFERED_FRACTION, MIN_OFFERED_RPS), MAX_OFFERED_RPS)
            run = run_open_loop(pool, specs, poison_specs, num_requests, offered)
            wedged = probe_wedged_shards(pool)
            flow = {
                "steals": pool.steals,
                "revivals": pool.revivals,
                "overloads": pool.overloads,
                "queue_depths": pool.queue_depths(),
            }

    # Completion ratio: everything that got an answer (verdict or structured
    # error) over everything offered.  Silent drops and wedged stragglers
    # are what push it down.
    answered = run["served"] + sum(run["errors"].values())
    throughput_ratio = answered / num_requests if num_requests else 0.0
    record = {
        "solver": f"service_open_loop_{NUM_SHARDS}_shards",
        "family": FAMILY,
        "n": num_requests,
        "seconds": run["wall_seconds"],
        "offered_rps": run["offered_rps"],
        "achieved_rps": run["achieved_rps"],
        "throughput_ratio": round(throughput_ratio, 4),
        "p50_ms": run["p50_ms"],
        "p95_ms": run["p95_ms"],
        "p99_ms": run["p99_ms"],
        "served": run["served"],
        "deadline_exceeded": run["errors"].get("deadline_exceeded", 0),
        "overloaded": run["rejected_overloaded"] + run["errors"].get("overloaded", 0),
        "check_failed": run["errors"].get("check_failed", 0),
        "unfinished": run["unfinished"],
        "wedged_shards": wedged,
        "steals": flow["steals"],
        "revivals": flow["revivals"],
    }
    meta = {
        "workload": workload,
        "calibrated_capacity_rps": round(capacity, 1),
        "offered_fraction": OFFERED_FRACTION,
        "poison_every": POISON_EVERY,
        "poison_states": POISON_STATES,
        "poison_deadline_ms": int(POISON_DEADLINE_SECONDS * 1000),
        "max_queue": MAX_QUEUE,
        "steal_threshold": STEAL_THRESHOLD,
        "queue_depths_after": flow["queue_depths"],
        "pool_overload_refusals": flow["overloads"],
    }
    return [record], meta


# ----------------------------------------------------------------------
# pytest entry points (run by benchmarks/run_all.py's suite smoke)
# ----------------------------------------------------------------------
def test_open_loop_smoke():
    # 3 x POISON_EVERY requests => three cold poison checks, so the
    # deadline-shed assertion does not hang off a single sample (one poison
    # can sneak under its deadline on a heavily contended host).
    records, meta = run_cells(num_requests=3 * POISON_EVERY)
    record = records[0]
    assert record["wedged_shards"] == 0
    assert record["revivals"] == 0
    assert record["throughput_ratio"] > 0.9
    # The poison tail was shed by deadlines, not served or wedged.
    assert record["deadline_exceeded"] >= 1
    assert record["served"] >= 2 * POISON_EVERY


if __name__ == "__main__":
    records, meta = run_cells(QUICK_NUM_REQUESTS)
    record = records[0]
    print(
        f"{record['solver']}: offered {record['offered_rps']} rps "
        f"(capacity {meta['calibrated_capacity_rps']} rps), "
        f"achieved {record['achieved_rps']} rps over {record['seconds']}s"
    )
    print(
        f"  latency p50/p95/p99: {record['p50_ms']}/{record['p95_ms']}/{record['p99_ms']} ms; "
        f"throughput ratio {record['throughput_ratio']}"
    )
    print(
        f"  deadline_exceeded={record['deadline_exceeded']} overloaded={record['overloaded']} "
        f"steals={record['steals']} revivals={record['revivals']} "
        f"wedged={record['wedged_shards']}"
    )
