#!/usr/bin/env python3
"""Benchmark runner: partition-solver trajectory plus the pytest-benchmark suite.

Two jobs in one entry point:

1. **Trajectory** -- times the end-to-end Lemma 3.1 pipeline (reduction +
   solver) for every solver x family x size cell and writes the rows to a
   machine-readable JSON file (``BENCH_partition.json`` by default).  The
   frozen seed implementation (``benchmarks/seed_baseline.py``) is timed next
   to the kernel solvers, so successive runs of this script record the
   perf trajectory of the repository against a fixed baseline.  A second,
   *weak-equivalence* section does the same for the Theorem 4.1(a) pipeline
   on tau-heavy families: the kernel weak-transition engine
   (``repro.core.weak``) is timed next to the retained dict-saturation route,
   and the ``speedup_weak_kernel_vs_dict_saturation`` cells record the gap.
   A third, *vector-kernel* section times the numpy array kernel
   (``repro.partition.vectorized``, in-memory and memory-mapped) against the
   python solvers on the ``shift_register`` scaling family; ``--scale`` adds
   the 10^5- and 10^6-state tiers, and ``speedup_vector_vs_python`` records
   the kernel's gap to the default python backend.

2. **Suite smoke** -- executes every ``bench_*.py`` module via pytest
   (``--benchmark-disable`` in ``--quick`` mode so each workload runs once;
   ``--benchmark-only`` otherwise) and folds the per-file status into the
   JSON metadata.

Usage::

    python benchmarks/run_all.py --quick            # CI smoke: seconds, not minutes
    python benchmarks/run_all.py                    # full trajectory + benchmarks
    python benchmarks/run_all.py --skip-pytest      # trajectory only
    python benchmarks/run_all.py --soak             # + the open-loop service soak
    python benchmarks/run_all.py --cluster          # + the 3-node cluster load run

The script exits non-zero if any solver disagrees with the reference result
or any pytest bench module fails, so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = Path(__file__).resolve().parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

import bench_cluster_load  # noqa: E402
import bench_engine_cache  # noqa: E402
import bench_on_the_fly  # noqa: E402
import bench_protocols  # noqa: E402
import bench_reduction  # noqa: E402
import bench_service  # noqa: E402
import bench_service_load  # noqa: E402
from seed_baseline import seed_kanellakis_smolka  # noqa: E402

from repro.core.derivatives import saturate_reference  # noqa: E402
from repro.core.fsp import FSP  # noqa: E402
from repro.equivalence.observational import observational_partition  # noqa: E402
from repro.generators.families import (  # noqa: E402
    comb,
    duplicated_chain,
    shift_register,
    shift_register_csr,
    tau_diamond_tower,
    tau_ladder,
    tau_mesh,
)
from repro.partition.generalized import (  # noqa: E402
    GeneralizedPartitioningInstance,
    Solver,
    solve,
)
from repro.partition.vectorized import vector_refine_csr  # noqa: E402
from repro.utils.matrices import HAVE_NUMPY, MmapCSR, require_numpy  # noqa: E402

#: family name -> (process builder for ~n states, include_tau flag).  These are
#: the structured scaling families of the partition benchmarks: refinement
#: performs many rounds on them, which is exactly the regime the splitter
#: queue (and the paper) is about.
FAMILIES: dict[str, tuple] = {
    "duplicated_chain": (lambda n: duplicated_chain(max(1, n // 2), 2), False),
    "comb": (lambda n: comb(max(1, n // 2)), False),
    "tau_ladder": (lambda n: tau_ladder(max(1, n // 2)), True),
}

#: the naive O(nm) method is only run below this state count so that the
#: quick mode stays quick; dropped cells are recorded in the metadata.
NAIVE_MAX_STATES = 900

#: tau-heavy families for the weak-equivalence (Theorem 4.1a) trajectory:
#: ``family -> (builder for ~n states, dict-route state cap)``.  The inputs
#: are sparse but their saturated relations are Theta(n^2) dense, so the
#: dict-saturation baseline route takes minutes above the cap (which is the
#: point of the kernel engine); dropped cells are recorded in the metadata.
#: tau_ladder and tau_mesh keep dict cells at n ~ 2000 because the committed
#: weak-speedup floors are measured there; tau_diamond_tower has no floor, so
#: its dict route stops at the small calibration size rather than spending
#: ~90 s of every CI run re-measuring a known-slow path.
WEAK_FAMILIES: dict[str, tuple] = {
    "tau_ladder": (lambda n: tau_ladder(max(1, n // 2)), 2500),
    "tau_mesh": (tau_mesh, 2500),
    "tau_diamond_tower": (lambda n: tau_diamond_tower(max(1, n // 3)), 500),
}

QUICK_SIZES = [400, 2000]
FULL_SIZES = [400, 1000, 2000, 4000]

#: ``shift_register`` tiers for the vector-kernel section, as ``bits`` (the
#: family has ``2^bits`` states).  The quick/full tiers keep the vector cells
#: in every CI bench run; ``--scale`` adds the 10^5 tier (where the python
#: solvers are still timed next to the kernel and the committed speedup floor
#: is measured) and the 10^6 tier (vector-only: the default python backend
#: would take ~15 minutes there, which is the point of the kernel).
VECTOR_QUICK_BITS = [12]
VECTOR_FULL_BITS = [12, 14]
VECTOR_SCALE_BITS = [17, 20]

#: the python solvers are only timed on shift_register up to this state count
#: (paige_tarjan already costs ~80 s at 2^17); above it the vector cells run
#: alone and dropped python cells are recorded in the metadata.
VECTOR_PY_MAX_N = 1 << 17


def _pipeline(process: FSP, include_tau: bool, method: Solver):
    instance = GeneralizedPartitioningInstance.from_fsp(process, include_tau=include_tau)
    return solve(instance, method)


def _best_of(fn, repeats: int):
    best = float("inf")
    result = None
    for _ in range(repeats):
        begin = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - begin)
    return best, result


def _time_cell(
    cell: list[tuple],
    family: str,
    n: int,
    m: int,
    repeats: int,
    records: list[dict],
) -> bool:
    """Time every solver of one family x size cell, append its records.

    All solvers of a cell must produce the same partition (the coarsest
    stable refinement is unique); returns False when one disagrees.  This is
    the single place the record schema (``solver|family|n`` -- the key format
    ``check_regression.cell_key`` parses) and the agreement check live, shared
    by the strong and weak trajectories.
    """
    agree = True
    reference = None
    for solver, fn in cell:
        seconds, partition = _best_of(fn, repeats)
        frozen = partition.as_frozen()
        if reference is None:
            reference = frozen
        elif frozen != reference:
            agree = False
            print(f"ERROR: {solver} disagrees on {family} n={n}", file=sys.stderr)
        records.append(
            {
                "solver": solver,
                "family": family,
                "n": n,
                "transitions": m,
                "blocks": len(partition),
                "seconds": round(seconds, 6),
            }
        )
        print(
            f"  {family:18s} n={n:5d} m={m:6d} {solver:28s} "
            f"{seconds * 1000:9.2f} ms  blocks={len(partition)}"
        )
    return agree


def run_trajectory(sizes: list[int], repeats: int) -> tuple[list[dict], list[str], bool]:
    records: list[dict] = []
    skipped: list[str] = []
    agree = True
    for family, (builder, include_tau) in FAMILIES.items():
        for size in sizes:
            process = builder(size)
            n, m = process.num_states, process.num_transitions
            cell = [
                ("seed_kanellakis_smolka", lambda: seed_kanellakis_smolka(process, include_tau)),
                (
                    "kanellakis_smolka",
                    lambda: _pipeline(process, include_tau, Solver.KANELLAKIS_SMOLKA),
                ),
                ("paige_tarjan", lambda: _pipeline(process, include_tau, Solver.PAIGE_TARJAN)),
            ]
            if n <= NAIVE_MAX_STATES:
                cell.append(("naive", lambda: _pipeline(process, include_tau, Solver.NAIVE)))
            else:
                skipped.append(f"naive on {family} n={n} (> {NAIVE_MAX_STATES} states)")
            agree = _time_cell(cell, family, n, m, repeats, records) and agree
    return records, skipped, agree


def run_weak_trajectory(sizes: list[int], repeats: int) -> tuple[list[dict], list[str], bool]:
    """The weak-equivalence section: observational partition, kernel vs dict saturation."""
    records: list[dict] = []
    skipped: list[str] = []
    agree = True

    def dict_route(process: FSP):
        saturated = saturate_reference(process)
        instance = GeneralizedPartitioningInstance.from_fsp(saturated, include_tau=False)
        return solve(instance, Solver.PAIGE_TARJAN)

    for family, (builder, dict_cap) in WEAK_FAMILIES.items():
        for size in sizes:
            process = builder(size)
            n, m = process.num_states, process.num_transitions
            cell = []
            if n <= dict_cap:
                cell.append(("dict_saturation", lambda: dict_route(process)))
            else:
                skipped.append(f"dict_saturation on {family} n={n} (> {dict_cap} states)")
            cell.extend(
                [
                    (
                        "weak_kernel_paige_tarjan",
                        lambda: observational_partition(process, method=Solver.PAIGE_TARJAN),
                    ),
                    (
                        "weak_kernel_kanellakis_smolka",
                        lambda: observational_partition(process, method=Solver.KANELLAKIS_SMOLKA),
                    ),
                ]
            )
            agree = _time_cell(cell, family, n, m, repeats, records) and agree
    return records, skipped, agree


def _assignment_of(np, partition, n: int):
    """Flatten a name-keyed ``Partition`` over ``s0..s{n-1}`` to an int64 array."""
    assignment = np.empty(n, dtype=np.int64)
    for index, block in enumerate(partition):
        for name in block:
            assignment[int(name[1:])] = index
    return assignment


def _canonical_assignment(np, assignment):
    """Relabel block ids by first occurrence so partitions compare up to renumbering."""
    _, first_index, inverse = np.unique(assignment, return_index=True, return_inverse=True)
    order = np.argsort(first_index)
    rank = np.empty(len(order), dtype=np.int64)
    rank[order] = np.arange(len(order), dtype=np.int64)
    return rank[inverse]


def run_vector_trajectory(
    bits_list: list[int], repeats: int
) -> tuple[list[dict], list[str], bool, dict, dict]:
    """The vector-kernel section: shift_register, python solvers vs numpy kernel.

    Every tier times the in-memory numpy kernel (``vector``) and the
    memory-mapped out-of-core route (``vector_mmap``); tiers up to
    ``VECTOR_PY_MAX_N`` also time the python solvers on the same instance via
    the FSP pipeline.  All routes must agree up to block renumbering.  The
    ``speedup_vector_vs_python`` cells divide the *default* python backend's
    seconds (paige_tarjan -- what ``solve(backend="python")`` runs with the
    default method) by the vector kernel's; the ratio against the faster
    kanellakis_smolka worklist is recorded separately for transparency.
    """
    records: list[dict] = []
    skipped: list[str] = []
    agree = True
    if not HAVE_NUMPY:
        skipped.append("vector trajectory (numpy unavailable)")
        return records, skipped, agree, {}, {}
    np = require_numpy()

    family = "shift_register"
    py_speedups: dict[str, dict[str, float]] = {}
    ks_speedups: dict[str, dict[str, float]] = {}
    for bits in bits_list:
        n = 1 << bits
        m = 2 * n
        timings: dict[str, float] = {}
        reference = None

        def note(solver: str, seconds: float, assignment) -> None:
            nonlocal agree, reference
            canonical = _canonical_assignment(np, assignment)
            if reference is None:
                reference = canonical
            elif not np.array_equal(canonical, reference):
                agree = False
                print(f"ERROR: {solver} disagrees on {family} n={n}", file=sys.stderr)
            blocks = int(canonical.max()) + 1 if n else 0
            timings[solver] = seconds
            records.append(
                {
                    "solver": solver,
                    "family": family,
                    "n": n,
                    "transitions": m,
                    "blocks": blocks,
                    "seconds": round(seconds, 6),
                }
            )
            print(
                f"  {family:18s} n={n:7d} m={m:8d} {solver:28s} "
                f"{seconds * 1000:9.2f} ms  blocks={blocks}"
            )

        if n <= VECTOR_PY_MAX_N:
            process = shift_register(bits)
            for solver, method in (
                ("paige_tarjan", Solver.PAIGE_TARJAN),
                ("kanellakis_smolka", Solver.KANELLAKIS_SMOLKA),
            ):
                seconds, partition = _best_of(
                    lambda method=method: _pipeline(process, False, method), repeats
                )
                note(solver, seconds, _assignment_of(np, partition, n))
        else:
            skipped.append(f"python solvers on {family} n={n} (> {VECTOR_PY_MAX_N} states)")

        def memory_cell():
            csr, block_of = shift_register_csr(bits)
            return vector_refine_csr(csr, block_of)

        seconds, assignment = _best_of(memory_cell, repeats)
        note("vector", seconds, assignment)

        with tempfile.TemporaryDirectory(prefix="repro-bench-mmap-") as tmp:
            _, block_of = shift_register_csr(bits, mmap_dir=Path(tmp))
            store = MmapCSR.open(Path(tmp))
            seconds, assignment = _best_of(lambda: vector_refine_csr(store, block_of), repeats)
            note("vector_mmap", seconds, assignment)

        vector_seconds = timings.get("vector")
        if timings.get("paige_tarjan") and vector_seconds:
            py_speedups.setdefault(family, {})[str(n)] = round(
                timings["paige_tarjan"] / vector_seconds, 2
            )
        if timings.get("kanellakis_smolka") and vector_seconds:
            ks_speedups.setdefault(family, {})[str(n)] = round(
                timings["kanellakis_smolka"] / vector_seconds, 2
            )
    return records, skipped, agree, py_speedups, ks_speedups


def run_engine_trajectory(repeats: int) -> tuple[list[dict], float, bool]:
    """The engine-cache section: ``check_many`` on one engine vs the cold loop.

    Delegates to :mod:`bench_engine_cache`; the records use the shared
    ``solver|family|n`` schema so the regression gate covers them, and the
    returned speedup feeds ``meta.speedup_engine_cached_vs_cold`` (gated
    against the committed floor).
    """
    records, speedup, agree = bench_engine_cache.run_cells(repeats=repeats)
    for record in records:
        print(
            f"  {record['family']:18s} n={record['n']:5d} {record['solver']:28s} "
            f"{record['seconds'] * 1000:9.2f} ms"
        )
    if not agree:
        print(
            "ERROR: engine check_many disagrees with the cold free-function loop",
            file=sys.stderr,
        )
    return records, speedup, agree


def run_explore_trajectory(repeats: int) -> tuple[list[dict], dict, bool]:
    """The on-the-fly section: early exits, compositional minimisation, agreement.

    Delegates to :mod:`bench_on_the_fly`; the records use the shared
    ``solver|family|n`` schema so the regression gate covers them, and the
    extras feed the ``explore_*`` metadata keys (the visit-fraction ceiling
    and route agreements are gated by ``check_regression.py``).
    """
    records, extras, agree = bench_on_the_fly.run_cells(repeats=repeats)
    for record in records:
        print(
            f"  {record['family']:24s} n={record['n']:7d} {record['solver']:28s} "
            f"{record['seconds'] * 1000:9.2f} ms"
        )
    if not agree:
        print(
            "ERROR: explore routes disagree (compositional minimisation, on-the-fly "
            "verdicts, or the early-exit family was not decided with a verified trace)",
            file=sys.stderr,
        )
    return records, extras, agree


def run_protocol_trajectory(repeats: int) -> tuple[list[dict], dict, bool]:
    """The protocol-frontend section: conformance, fault sweeps, deadlock search.

    Delegates to :mod:`bench_protocols`; the records use the shared
    ``solver|family|n`` schema so the regression gate covers them, and the
    extras feed the ``protocol_*`` metadata keys (the visit-fraction ceiling,
    verified fault traces and the coordinator-crash deadlock are gated by
    ``check_regression.py``).
    """
    records, extras, agree = bench_protocols.run_cells(repeats=repeats)
    for record in records:
        print(
            f"  {record['family']:24s} n={record['n']:7d} {record['solver']:24s} "
            f"{record['seconds'] * 1000:9.2f} ms"
        )
    if not agree:
        print(
            "ERROR: protocol checks disagree (a scenario failed conformance, an "
            "f+1-fault mutant was not caught with a verified trace, a crash sweep "
            "did not confirm its declared tolerance, or the coordinator-crash "
            "deadlock went unreported)",
            file=sys.stderr,
        )
    return records, extras, agree


def run_reduction_trajectory(repeats: int) -> tuple[list[dict], dict, bool]:
    """The state-space-reduction section: quorum n=25 under reduction, parity at n=5.

    Delegates to :mod:`bench_reduction`; the records use the shared
    ``solver|family|n`` schema so the regression gate covers them, and the
    extras feed the ``reduction_*`` metadata keys (the visit-fraction
    ceiling and the mode-parity flag are gated by ``check_regression.py``).
    """
    records, extras, agree = bench_reduction.run_cells(repeats=repeats)
    for record in records:
        print(
            f"  {record['family']:24s} n={record['n']:7d} {record['solver']:28s} "
            f"{record['seconds'] * 1000:9.2f} ms"
        )
    if not agree:
        print(
            "ERROR: reduction routes disagree (the quorum n=25 headline cell failed "
            "or a reduction mode flipped a verdict against the unreduced oracle)",
            file=sys.stderr,
        )
    return records, extras, agree


def run_service_trajectory(repeats: int) -> tuple[list[dict], float, bool, dict]:
    """The service section: the 500-check manifest at 1 vs 4 shards.

    Delegates to :mod:`bench_service`; the records use the shared
    ``solver|family|n`` schema so the regression gate covers them, and the
    returned speedup feeds ``meta.speedup_service_4shards_vs_1shard`` (gated
    against the committed ``service_speedup_floor``).
    """
    records, speedup, agree, workload = bench_service.run_cells(repeats=repeats)
    for record in records:
        print(
            f"  {record['family']:18s} n={record['n']:5d} {record['solver']:28s} "
            f"{record['seconds'] * 1000:9.2f} ms"
        )
    if not agree:
        print(
            "ERROR: sharded service answers differ from the single-shard answers",
            file=sys.stderr,
        )
    return records, speedup, agree, workload


def run_service_load_trajectory() -> tuple[list[dict], dict, bool]:
    """The soak section: the open-loop sustained-throughput run (``--soak``).

    Delegates to :mod:`bench_service_load`; the records land in the
    ``service_load_records`` section (hardware-independent ratios and latency
    quantiles, not per-cell seconds) and the meta summary feeds
    ``meta.service_load``.  The full 10k-request manifest runs even under
    ``--quick``: the offered rate is calibrated to the host, so the open
    loop itself is seconds of wall clock.  The ``service_load_gates`` in
    ``check_regression.py`` only apply when ``meta.service_soak`` is true,
    so ordinary bench runs without ``--soak`` are exempt.
    """
    records, extras = bench_service_load.run_cells(bench_service_load.DEFAULT_NUM_REQUESTS)
    healthy = True
    for record in records:
        print(
            f"  {record['family']:18s} n={record['n']:5d} {record['solver']:28s} "
            f"offered {record['offered_rps']:.0f} rps, ratio {record['throughput_ratio']:.3f}, "
            f"p99 {record['p99_ms']:.1f} ms, deadline_exceeded={record['deadline_exceeded']}, "
            f"steals={record['steals']}, wedged={record['wedged_shards']}"
        )
        if record["wedged_shards"] or record["revivals"]:
            healthy = False
            print(
                f"ERROR: soak run left {record['wedged_shards']} wedged shard(s) and "
                f"{record['revivals']} revival(s) -- poison must be shed, not crash workers",
                file=sys.stderr,
            )
    return records, extras, healthy


def run_cluster_trajectory() -> tuple[list[dict], dict, bool]:
    """The cluster section: 3 nodes vs 1 behind the coordinator (``--cluster``).

    Delegates to :mod:`bench_cluster_load`; the records land in the
    ``cluster_records`` section (capacity ratios, open-loop quantiles, and
    the failover verdict) and the meta summary feeds ``meta.cluster_load``.
    The ``cluster_gates`` in ``check_regression.py`` only apply when
    ``meta.cluster_bench`` is true, so ordinary bench runs without
    ``--cluster`` are exempt.
    """
    records, extras = bench_cluster_load.run_cells(bench_cluster_load.DEFAULT_NUM_REQUESTS)
    healthy = True
    for record in records:
        print(
            f"  {record['family']:18s} n={record['n']:5d} {record['solver']:28s} "
            f"node_speedup {record['node_speedup']:.2f}x, offered {record['offered_rps']:.0f} "
            f"rps, ratio {record['throughput_ratio']:.3f}, p99 {record['p99_ms']:.1f} ms, "
            f"failovers={record['failovers']}, repairs={record['repairs']}, "
            f"wedged={record['wedged_nodes']}"
        )
        if record["wedged_nodes"] or not record["failover_verified"]:
            healthy = False
            print(
                f"ERROR: cluster run left {record['wedged_nodes']} wedged node(s) and "
                f"failover_verified={record['failover_verified']} -- killing one node "
                "must not take the cluster's answers with it",
                file=sys.stderr,
            )
    return records, extras, healthy


def speedup_summary(records: list[dict]) -> dict:
    """Per (family, n): seed seconds / kernel kanellakis_smolka seconds."""
    cells: dict[tuple[str, int], dict[str, float]] = {}
    for record in records:
        cells.setdefault((record["family"], record["n"]), {})[record["solver"]] = record["seconds"]
    summary: dict[str, dict[str, float]] = {}
    for (family, n), timings in sorted(cells.items()):
        seed = timings.get("seed_kanellakis_smolka")
        new = timings.get("kanellakis_smolka")
        if seed and new:
            summary.setdefault(family, {})[str(n)] = round(seed / new, 2)
    return summary


def weak_speedup_summary(records: list[dict]) -> dict:
    """Per (family, n): dict-saturation seconds / kernel weak-engine seconds."""
    cells: dict[tuple[str, int], dict[str, float]] = {}
    for record in records:
        cells.setdefault((record["family"], record["n"]), {})[record["solver"]] = record["seconds"]
    summary: dict[str, dict[str, float]] = {}
    for (family, n), timings in sorted(cells.items()):
        baseline = timings.get("dict_saturation")
        kernel = timings.get("weak_kernel_paige_tarjan")
        if baseline and kernel:
            summary.setdefault(family, {})[str(n)] = round(baseline / kernel, 2)
    return summary


def run_pytest_benches(quick: bool) -> dict[str, str]:
    statuses: dict[str, str] = {}
    mode = ["--benchmark-disable"] if quick else ["--benchmark-only"]
    for bench in sorted(BENCH_DIR.glob("bench_*.py")):
        command = [
            sys.executable, "-m", "pytest", str(bench), "-q", "-p", "no:cacheprovider", *mode
        ]
        print(f"  pytest {bench.name} ...", flush=True)
        proc = subprocess.run(command, cwd=ROOT, capture_output=True, text=True)
        statuses[bench.name] = "passed" if proc.returncode == 0 else "failed"
        if proc.returncode != 0:
            print(proc.stdout[-2000:], file=sys.stderr)
    return statuses


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: fewer sizes, one repeat"
    )
    parser.add_argument("--skip-pytest", action="store_true", help="only run the trajectory")
    parser.add_argument(
        "--scale",
        action="store_true",
        help="add the 10^5/10^6-state shift_register tiers to the vector section",
    )
    parser.add_argument(
        "--soak",
        action="store_true",
        help="run the open-loop service soak (bench_service_load) and record its section",
    )
    parser.add_argument(
        "--cluster",
        action="store_true",
        help="run the 3-node cluster load benchmark (bench_cluster_load) and record its section",
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_partition.json"), help="JSON output path"
    )
    args = parser.parse_args(argv)

    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    repeats = 1 if args.quick else 3
    vector_bits = list(VECTOR_QUICK_BITS if args.quick else VECTOR_FULL_BITS)
    if args.scale:
        vector_bits += VECTOR_SCALE_BITS

    print(f"partition trajectory: families={list(FAMILIES)} sizes={sizes}")
    records, skipped, agree = run_trajectory(sizes, repeats)
    speedups = speedup_summary(records)

    print(f"weak-equivalence trajectory: families={list(WEAK_FAMILIES)} sizes={sizes}")
    weak_records, weak_skipped, weak_agree = run_weak_trajectory(sizes, repeats)
    weak_speedups = weak_speedup_summary(weak_records)

    print(f"vector-kernel trajectory: shift_register bits={vector_bits} (scale={args.scale})")
    (
        vector_records,
        vector_skipped,
        vector_agree,
        vector_speedups,
        vector_ks_speedups,
    ) = run_vector_trajectory(vector_bits, repeats)

    print("engine-cache trajectory: check_many (cached) vs cold free-function loop")
    engine_records, engine_speedup, engine_agree = run_engine_trajectory(repeats)

    print("explore trajectory: on-the-fly early exits + compositional minimisation")
    explore_records, explore_extras, explore_agree = run_explore_trajectory(repeats)

    print("protocol trajectory: conformance at n=5, fault sweeps, deadlock search")
    protocol_records, protocol_extras, protocol_agree = run_protocol_trajectory(repeats)

    print("reduction trajectory: quorum n=25 under reduction=full, mode parity at n=5")
    reduction_records, reduction_extras, reduction_agree = run_reduction_trajectory(repeats)

    print("service trajectory: 500-check manifest, sharded pool vs single shard")
    service_records, service_speedup, service_agree, service_workload = run_service_trajectory(
        repeats
    )

    service_load_records: list[dict] = []
    service_load_meta: dict = {}
    soak_healthy = True
    if args.soak:
        print("service-soak trajectory: open-loop mixed manifest with slow-poison tail")
        service_load_records, service_load_meta, soak_healthy = run_service_load_trajectory()

    cluster_records: list[dict] = []
    cluster_meta: dict = {}
    cluster_healthy = True
    if args.cluster:
        print("cluster trajectory: 3-node open loop with mid-run node kill, vs 1 node")
        cluster_records, cluster_meta, cluster_healthy = run_cluster_trajectory()

    statuses: dict[str, str] = {}
    if not args.skip_pytest:
        print("pytest benchmark modules:")
        statuses = run_pytest_benches(args.quick)

    payload = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "families": list(FAMILIES),
            "sizes": sizes,
            "repeats": repeats,
            "solvers_agree": agree,
            "skipped_cells": skipped,
            "speedup_kanellakis_smolka_vs_seed": speedups,
            "weak_families": list(WEAK_FAMILIES),
            "weak_solvers_agree": weak_agree,
            "weak_skipped_cells": weak_skipped,
            "speedup_weak_kernel_vs_dict_saturation": weak_speedups,
            "vector_scale": args.scale,
            "vector_bits": vector_bits,
            "vector_solvers_agree": vector_agree,
            "vector_skipped_cells": vector_skipped,
            "speedup_vector_vs_python": vector_speedups,
            "speedup_vector_vs_kanellakis_smolka": vector_ks_speedups,
            "engine_routes_agree": engine_agree,
            "speedup_engine_cached_vs_cold": engine_speedup,
            "explore_routes_agree": explore_agree,
            **explore_extras,
            "protocol_checks_agree": protocol_agree,
            **protocol_extras,
            "reduction_checks_agree": reduction_agree,
            **reduction_extras,
            "service_routes_agree": service_agree,
            "speedup_service_4shards_vs_1shard": service_speedup,
            "service_workload": service_workload,
            "service_cpu_count": os.cpu_count(),
            "service_soak": args.soak,
            "service_load": service_load_meta,
            "cluster_bench": args.cluster,
            "cluster_load": cluster_meta,
            "bench_modules": statuses,
        },
        "records": records,
        "weak_records": weak_records,
        "vector_records": vector_records,
        "engine_records": engine_records,
        "explore_records": explore_records,
        "protocol_records": protocol_records,
        "reduction_records": reduction_records,
        "service_records": service_records,
        "service_load_records": service_load_records,
        "cluster_records": cluster_records,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    print("speedup (kernel kanellakis_smolka vs seed implementation):")
    for family, by_n in speedups.items():
        row = "  ".join(f"n={n}: {ratio:.1f}x" for n, ratio in by_n.items())
        print(f"  {family:18s} {row}")
    print("weak speedup (kernel saturation route vs dict saturation route):")
    for family, by_n in weak_speedups.items():
        row = "  ".join(f"n={n}: {ratio:.1f}x" for n, ratio in by_n.items())
        print(f"  {family:18s} {row}")
    print("vector speedup (numpy kernel vs default python backend, paige_tarjan):")
    for family, by_n in vector_speedups.items():
        row = "  ".join(f"n={n}: {ratio:.1f}x" for n, ratio in by_n.items())
        print(f"  {family:18s} {row}")
    print(f"engine speedup (cached check_many vs cold free-function loop): {engine_speedup:.1f}x")
    print(
        f"explore early exit: visit fraction "
        f"{explore_extras['explore_visit_fraction']:.6f} of "
        f"{explore_extras['explore_product_states']} product states "
        f"(trace verified: {explore_extras['explore_trace_verified']})"
    )
    print(
        f"protocol conformance: visit fraction "
        f"{protocol_extras['protocol_visit_fraction']:.6f} at n=5 "
        f"(traces verified: {protocol_extras['protocol_traces_verified']}, "
        f"sweeps confirmed: {protocol_extras['protocol_sweeps_confirmed']}, "
        f"deadlock found: {protocol_extras['protocol_deadlock_found']})"
    )
    print(
        f"reduction: quorum n=25 visit fraction "
        f"{reduction_extras['reduction_visit_fraction']:.3e} of "
        f"{reduction_extras['reduction_structural_states']:.3e} structural states "
        f"(modes agree with the unreduced oracle: "
        f"{reduction_extras['reduction_routes_agree']})"
    )
    print(
        f"service speedup (4 shards vs 1 shard, 500-check manifest): {service_speedup:.2f}x "
        f"on {os.cpu_count()} CPU(s)"
    )
    for record in service_load_records:
        print(
            f"service soak ({record['n']} requests open loop): throughput ratio "
            f"{record['throughput_ratio']:.3f} at {record['offered_rps']:.0f} rps offered, "
            f"p99 {record['p99_ms']:.1f} ms, {record['deadline_exceeded']} deadline-shed, "
            f"{record['wedged_shards']} wedged shard(s)"
        )
    for record in cluster_records:
        print(
            f"cluster load ({record['n']} requests open loop, 3 nodes): node_speedup "
            f"{record['node_speedup']:.2f}x over 1 node, throughput ratio "
            f"{record['throughput_ratio']:.3f} at {record['offered_rps']:.0f} rps offered, "
            f"killed {record['killed_node']} mid-run "
            f"(failover verified: {record['failover_verified']}), "
            f"{record['wedged_nodes']} wedged node(s)"
        )
    skipped_all = skipped + weak_skipped + vector_skipped
    if skipped_all:
        print(f"skipped {len(skipped_all)} trajectory cells: " + "; ".join(skipped_all))

    failed_modules = [name for name, status in statuses.items() if status == "failed"]
    if failed_modules:
        print(f"FAILED bench modules: {failed_modules}", file=sys.stderr)
    healthy = (
        agree
        and weak_agree
        and vector_agree
        and engine_agree
        and explore_agree
        and protocol_agree
        and reduction_agree
        and service_agree
        and soak_healthy
        and cluster_healthy
        and not failed_modules
    )
    return 0 if healthy else 1


if __name__ == "__main__":
    raise SystemExit(main())
