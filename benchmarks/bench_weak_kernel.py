"""Weak-transition engine benchmarks: kernel saturation vs the dict reference.

The weak-equivalence pipeline of Theorem 4.1(a) has two phases -- saturation
and strong partition refinement of the saturated process.  These benchmarks
time the kernel implementations of both (tau-SCC + bitset saturation from
:mod:`repro.core.weak`, then the LTS solvers) next to the retained dict
reference route (:func:`repro.core.derivatives.saturate_reference` +
``GeneralizedPartitioningInstance.from_fsp``) on the tau-heavy generator
families, whose saturated relations grow quadratically.  The machine-readable
trajectory lives in the ``weak`` section of ``BENCH_partition.json``
(``benchmarks/run_all.py``); this module is the pytest-benchmark face of the
same comparison at CI-friendly sizes.
"""

from __future__ import annotations

import pytest

from repro.core.derivatives import saturate_reference
from repro.core.lts import LTS
from repro.core.weak import saturate_lts, tau_closure_bits
from repro.equivalence.observational import observational_partition
from repro.generators.families import tau_diamond_tower, tau_ladder, tau_mesh
from repro.partition.generalized import GeneralizedPartitioningInstance, Solver, solve

FAMILIES = {
    "tau_ladder": lambda n: tau_ladder(max(1, n // 2)),
    "tau_mesh": tau_mesh,
    "tau_diamond_tower": lambda n: tau_diamond_tower(max(1, n // 3)),
}

SIZES = [60, 150]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_kernel_saturation(benchmark, family, size):
    process = FAMILIES[family](size)
    lts = LTS.from_fsp(process, include_tau=True)
    saturated = benchmark(lambda: saturate_lts(lts))
    benchmark.extra_info["family"] = family
    benchmark.extra_info["states"] = process.num_states
    benchmark.extra_info["saturated_transitions"] = saturated.num_transitions


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_reference_saturation(benchmark, family, size):
    process = FAMILIES[family](size)
    saturated = benchmark(lambda: saturate_reference(process))
    benchmark.extra_info["family"] = family
    benchmark.extra_info["states"] = process.num_states
    benchmark.extra_info["saturated_transitions"] = saturated.num_transitions


@pytest.mark.parametrize("size", SIZES)
def test_tau_closure_bitsets(benchmark, size):
    lts = LTS.from_fsp(FAMILIES["tau_mesh"](size), include_tau=True)
    closures = benchmark(lambda: tau_closure_bits(lts))
    benchmark.extra_info["states"] = lts.n
    benchmark.extra_info["total_closure_bits"] = sum(c.bit_count() for c in closures)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_weak_partition_kernel_route(benchmark, family, size):
    process = FAMILIES[family](size)
    partition = benchmark(lambda: observational_partition(process, method=Solver.PAIGE_TARJAN))
    benchmark.extra_info["family"] = family
    benchmark.extra_info["states"] = process.num_states
    benchmark.extra_info["blocks"] = len(partition)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_weak_partition_dict_route(benchmark, family, size):
    """The pre-kernel pipeline, kept as the timed baseline of the weak trajectory."""
    process = FAMILIES[family](size)

    def dict_route():
        saturated = saturate_reference(process)
        instance = GeneralizedPartitioningInstance.from_fsp(saturated, include_tau=False)
        return solve(instance, Solver.PAIGE_TARJAN)

    partition = benchmark(dict_route)
    kernel = observational_partition(process, method=Solver.PAIGE_TARJAN)
    assert partition.as_frozen() == kernel.as_frozen()
    benchmark.extra_info["family"] = family
    benchmark.extra_info["states"] = process.num_states
    benchmark.extra_info["blocks"] = len(partition)
