#!/usr/bin/env python3
"""CI bench-gate: fail the build when the benchmark trajectory regresses.

Reads the ``BENCH_partition.json`` produced by ``benchmarks/run_all.py`` and
compares every solver x family x n cell (strong *and* weak sections) against
the committed ``benchmarks/baseline_expectations.json``:

* any cell slower than ``factor`` (default 2) times its expected seconds --
  after normalising out the overall hardware speed difference between the CI
  runner and the machine that recorded the baseline -- fails the gate;
* ``solvers_agree`` / ``weak_solvers_agree`` being false fails the gate
  (a solver producing a different partition is a correctness bug, not a
  perf problem);
* the weak-engine speedup floors (kernel saturation route at least ``floor``
  times faster than the dict route on the named families at ``n >= min_n``)
  fail the gate when not met;
* the vector-kernel gates: ``vector_solvers_agree`` being false fails (the
  numpy kernel must compute the python solvers' partition up to
  renumbering); on ``--scale`` runs the recorded
  ``speedup_vector_vs_python`` must reach the committed floor at
  ``n >= min_n`` (default: 10x at 10^5 states) and a ``vector_mmap`` cell at
  ``n >= vector_scale_n`` (default 10^6) must be present -- the out-of-core
  tier actually ran;
* the engine-cache speedup floor (``check_many`` on a shared engine at least
  ``engine_speedup_floor`` times faster than the cold free-function loop on
  the repeated-pair manifest) fails the gate when not met, as does a
  disagreement between the two routes;
* the service throughput floor (the sharded pool at least
  ``service_speedup_floor`` times faster than one shard on the 500-check
  mixed-notion manifest -- shard-affinity cache residency plus, on
  multi-core hosts, parallelism) fails the gate when not met, as does any
  disagreement between the sharded and single-shard answers;
* the service-soak gates (only on ``run_all.py --soak`` runs, i.e. the
  ``service-soak`` CI lane): the open-loop ``service_load_records`` cell
  must reach ``throughput_ratio_floor`` (answered / offered requests), stay
  under ``p99_ms_ceiling`` (99th-percentile open-loop latency), leave at
  most ``max_wedged_shards`` shards unresponsive, and record **zero** worker
  revivals -- the slow-poison tail must be shed by deadlines, not by
  crashing and replacing workers;
* the cluster gates (only on ``run_all.py --cluster`` runs, i.e. the
  cluster CI lanes): the 3-node open-loop ``cluster_records`` cell must
  record a node speedup of at least ``node_speedup_floor`` over the
  single-node calibration at the same fixed per-node cache budget, reach
  ``throughput_ratio_floor``, leave at most ``max_wedged_nodes`` surviving
  nodes unresponsive, and verify failover after the mid-run node kill;
* the on-the-fly exploration gate: the inequivalent composed family
  (>= 10^5 reachable product states) must be decided with a replay-verified
  distinguishing trace while visiting at most
  ``explore_visit_fraction_ceiling`` of the product, and the compositional /
  on-the-fly routes must agree with the eager ones
  (``explore_routes_agree``);
* the protocol-frontend gate: two-phase commit and quorum voting at
  ``n = 5`` must conform to their one-leaf specs while the product game
  visits at most ``protocol_visit_fraction_ceiling`` times the reachable
  composed states, ``f + 1``-fault mutants must be caught with
  replay-verified traces, crash sweeps must confirm each scenario's
  declared tolerance, and the 2PC coordinator-crash deadlock must be
  reported (``protocol_checks_agree`` and the ``protocol_*`` meta flags);
* the state-space-reduction gate: quorum voting at ``n = 25`` (~4.6 * 10^16
  structural product states) must be decided conformant and its post-decide
  deadlock found under ``reduction="full"`` while the game visits at most
  ``reduction_visit_fraction_ceiling`` of the structural estimate, and
  every reduction mode must agree with the unreduced oracle on the small
  parity cells (``reduction_checks_agree`` / ``reduction_routes_agree``).

The hardware normaliser is the median of ``current / expected`` over all
shared cells: a uniformly slower CI machine shifts every ratio equally and is
divided out, while a genuine regression moves one cell against the rest.
Pass ``--absolute`` to compare raw seconds instead, and ``--update`` to
rewrite the baseline from the current run (review the diff before
committing).

Besides the pass/fail verdict the script prints a per-cell before/after
table, and -- when ``$GITHUB_STEP_SUMMARY`` is set (any GitHub Actions job)
-- appends the same report as a markdown table to the job summary.

Usage::

    python benchmarks/run_all.py --quick --skip-pytest
    python benchmarks/check_regression.py              # the CI gate
    python benchmarks/check_regression.py --update     # refresh the baseline
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
DEFAULT_BENCH = BENCH_DIR.parent / "BENCH_partition.json"
DEFAULT_BASELINE = BENCH_DIR / "baseline_expectations.json"

#: cells faster than this are treated as this slow: millisecond-scale cells
#: routinely swing 2-3x from scheduler/interpreter noise alone (the committed
#: baseline itself shows such swings), so the per-cell gate only has teeth
#: once a cell costs tens of milliseconds.
MIN_EXPECTED_SECONDS = 0.05


def cell_key(record: dict) -> str:
    return f"{record['solver']}|{record['family']}|{record['n']}"


def collect_cells(payload: dict) -> dict[str, float]:
    """Flatten all trajectory sections to ``solver|family|n -> seconds``."""
    cells: dict[str, float] = {}
    for section in (
        "records",
        "weak_records",
        "vector_records",
        "engine_records",
        "explore_records",
        "protocol_records",
        "reduction_records",
        "service_records",
    ):
        for record in payload.get(section, []):
            key = cell_key(record)
            seconds = float(record["seconds"])
            cells[key] = min(seconds, cells.get(key, seconds))
    return cells


def weak_speedups(payload: dict) -> dict[str, dict[str, float]]:
    return payload.get("meta", {}).get("speedup_weak_kernel_vs_dict_saturation", {})


def hardware_normaliser(ratios: dict[str, float], absolute: bool) -> float:
    """Median current/expected ratio over shared cells (1.0 when --absolute)."""
    if absolute or len(ratios) < 3:
        return 1.0
    return max(statistics.median(ratios.values()), 0.1)


def check(payload: dict, baseline: dict, factor: float, absolute: bool) -> list[str]:
    """All gate violations for this run (empty means the gate passes)."""
    failures: list[str] = []
    meta = payload.get("meta", {})
    for flag in ("solvers_agree", "weak_solvers_agree", "vector_solvers_agree"):
        if not meta.get(flag, False):
            failures.append(f"{flag} is not true -- solver disagreement or missing section")

    current = collect_cells(payload)
    expected: dict[str, float] = baseline.get("cells", {})
    shared = sorted(set(current) & set(expected))
    missing = sorted(set(expected) - set(current))
    for key in missing:
        failures.append(f"cell {key} present in the baseline but absent from this run")

    ratios = {
        key: current[key] / max(expected[key], MIN_EXPECTED_SECONDS) for key in shared
    }
    normaliser = hardware_normaliser(ratios, absolute)
    for key in shared:
        if ratios[key] > factor * normaliser:
            failures.append(
                f"cell {key} regressed: {current[key]:.4f}s vs expected "
                f"{expected[key]:.4f}s ({ratios[key]:.2f}x, allowed "
                f"{factor:.1f}x at hardware factor {normaliser:.2f})"
            )

    engine_floor = baseline.get("engine_speedup_floor")
    if engine_floor is not None:
        if not meta.get("engine_routes_agree", False):
            failures.append(
                "engine_routes_agree is not true -- check_many disagrees with the cold loop"
            )
        engine_speedup = meta.get("speedup_engine_cached_vs_cold")
        if engine_speedup is None:
            failures.append("no engine-cache speedup recorded in this run")
        elif float(engine_speedup) < float(engine_floor):
            failures.append(
                f"engine cached-check speedup is {float(engine_speedup):.1f}x, "
                f"below the committed floor of {float(engine_floor):.1f}x"
            )

    service_floor = baseline.get("service_speedup_floor")
    if service_floor is not None:
        if not meta.get("service_routes_agree", False):
            failures.append(
                "service_routes_agree is not true -- sharded answers differ from single-shard"
            )
        service_speedup = meta.get("speedup_service_4shards_vs_1shard")
        if service_speedup is None:
            failures.append("no service-throughput speedup recorded in this run")
        elif float(service_speedup) < float(service_floor):
            failures.append(
                f"service sharded-throughput speedup is {float(service_speedup):.2f}x, "
                f"below the committed floor of {float(service_floor):.1f}x"
            )

    # Service-soak gates.  The open-loop section only exists on
    # ``run_all.py --soak`` runs (the service-soak CI lane); ordinary bench
    # runs are exempt, mirroring the --scale-only vector gates above.
    load_gates = baseline.get("service_load_gates")
    if load_gates is not None and bool(meta.get("service_soak", False)):
        load_records = payload.get("service_load_records", [])
        if not load_records:
            failures.append("no service_load_records in this --soak run")
        for record in load_records:
            cell = f"{record['solver']}|{record['family']}|{record['n']}"
            ratio_floor = float(load_gates.get("throughput_ratio_floor", 0.0))
            if float(record.get("throughput_ratio", 0.0)) < ratio_floor:
                failures.append(
                    f"soak cell {cell}: throughput ratio "
                    f"{float(record.get('throughput_ratio', 0.0)):.3f} is below the "
                    f"committed floor of {ratio_floor:.2f}"
                )
            p99_ceiling = load_gates.get("p99_ms_ceiling")
            if p99_ceiling is not None and float(record.get("p99_ms", 0.0)) > float(p99_ceiling):
                failures.append(
                    f"soak cell {cell}: p99 open-loop latency "
                    f"{float(record.get('p99_ms', 0.0)):.1f} ms is above the committed "
                    f"ceiling of {float(p99_ceiling):.0f} ms"
                )
            max_wedged = int(load_gates.get("max_wedged_shards", 0))
            if int(record.get("wedged_shards", 0)) > max_wedged:
                failures.append(
                    f"soak cell {cell}: {int(record.get('wedged_shards', 0))} wedged "
                    f"shard(s) after the run (allowed {max_wedged})"
                )
            if int(record.get("revivals", 0)) != 0:
                failures.append(
                    f"soak cell {cell}: {int(record.get('revivals', 0))} worker "
                    "revival(s) -- the poison tail crashed workers instead of being "
                    "shed by deadlines"
                )

    # Cluster gates.  The cluster section only exists on ``run_all.py
    # --cluster`` runs (the cluster-smoke/nightly CI lanes); ordinary bench
    # runs are exempt, mirroring the --soak-only gates above.
    cluster_gates = baseline.get("cluster_gates")
    if cluster_gates is not None and bool(meta.get("cluster_bench", False)):
        cluster_records = payload.get("cluster_records", [])
        if not cluster_records:
            failures.append("no cluster_records in this --cluster run")
        for record in cluster_records:
            cell = f"{record['solver']}|{record['family']}|{record['n']}"
            speedup_floor = float(cluster_gates.get("node_speedup_floor", 0.0))
            if float(record.get("node_speedup", 0.0)) < speedup_floor:
                failures.append(
                    f"cluster cell {cell}: node speedup "
                    f"{float(record.get('node_speedup', 0.0)):.2f}x over one node is "
                    f"below the committed floor of {speedup_floor:.1f}x"
                )
            ratio_floor = float(cluster_gates.get("throughput_ratio_floor", 0.0))
            if float(record.get("throughput_ratio", 0.0)) < ratio_floor:
                failures.append(
                    f"cluster cell {cell}: throughput ratio "
                    f"{float(record.get('throughput_ratio', 0.0)):.3f} is below the "
                    f"committed floor of {ratio_floor:.2f}"
                )
            max_wedged = int(cluster_gates.get("max_wedged_nodes", 0))
            if int(record.get("wedged_nodes", 0)) > max_wedged:
                failures.append(
                    f"cluster cell {cell}: {int(record.get('wedged_nodes', 0))} wedged "
                    f"node(s) after the run (allowed {max_wedged})"
                )
            if not record.get("failover_verified", False):
                failures.append(
                    f"cluster cell {cell}: failover not verified -- killing one node "
                    "mid-run must leave the replicas answering its share"
                )

    fraction_ceiling = baseline.get("explore_visit_fraction_ceiling")
    if fraction_ceiling is not None:
        if not meta.get("explore_routes_agree", False):
            failures.append(
                "explore_routes_agree is not true -- compositional minimisation or "
                "on-the-fly verdicts disagree with the eager routes"
            )
        if not meta.get("explore_trace_verified", False):
            failures.append(
                "explore_trace_verified is not true -- the early-exit family was not "
                "decided with a replay-verified distinguishing trace"
            )
        fraction = meta.get("explore_visit_fraction")
        if fraction is None:
            failures.append("no explore visit fraction recorded in this run")
        elif float(fraction) > float(fraction_ceiling):
            failures.append(
                f"on-the-fly visit fraction is {float(fraction):.6f}, above the "
                f"committed ceiling of {float(fraction_ceiling):.2f} (the checker is "
                "no longer deciding the inequivalent product family locally)"
            )

    protocol_ceiling = baseline.get("protocol_visit_fraction_ceiling")
    if protocol_ceiling is not None:
        if not meta.get("protocol_checks_agree", False):
            failures.append(
                "protocol_checks_agree is not true -- a scenario failed conformance, "
                "a fault was not caught, a sweep did not confirm, or the deadlock "
                "went unreported"
            )
        if not meta.get("protocol_traces_verified", False):
            failures.append(
                "protocol_traces_verified is not true -- an f+1-fault mutant was not "
                "caught with a replay-verified distinguishing trace"
            )
        if not meta.get("protocol_sweeps_confirmed", False):
            failures.append(
                "protocol_sweeps_confirmed is not true -- a crash sweep did not "
                "confirm its scenario's declared fault tolerance"
            )
        if not meta.get("protocol_deadlock_found", False):
            failures.append(
                "protocol_deadlock_found is not true -- the 2PC coordinator-crash "
                "deadlock was not reported by the lazy breadth-first search"
            )
        protocol_fraction = meta.get("protocol_visit_fraction")
        if protocol_fraction is None:
            failures.append("no protocol visit fraction recorded in this run")
        elif float(protocol_fraction) > float(protocol_ceiling):
            failures.append(
                f"protocol conformance visit fraction is {float(protocol_fraction):.6f}, "
                f"above the committed ceiling of {float(protocol_ceiling):.2f} (the "
                "product game is re-exploring pairs instead of staying on the fly)"
            )

    reduction_ceiling = baseline.get("reduction_visit_fraction_ceiling")
    if reduction_ceiling is not None:
        if not meta.get("reduction_checks_agree", False):
            failures.append(
                "reduction_checks_agree is not true -- the quorum n=25 headline "
                "cell failed or a reduction mode flipped a verdict against the "
                "unreduced oracle"
            )
        if not meta.get("reduction_routes_agree", False):
            failures.append(
                "reduction_routes_agree is not true -- a reduction mode disagrees "
                "with the unreduced oracle on the parity cells"
            )
        reduction_fraction = meta.get("reduction_visit_fraction")
        if reduction_fraction is None:
            failures.append("no reduction visit fraction recorded in this run")
        elif float(reduction_fraction) > float(reduction_ceiling):
            failures.append(
                f"reduction visit fraction is {float(reduction_fraction):.3e}, above "
                f"the committed ceiling of {float(reduction_ceiling):.2f} (the reduced "
                "game is exploring a non-vanishing share of the structural product)"
            )

    speedups = weak_speedups(payload)
    for family, rule in baseline.get("weak_speedup_floors", {}).items():
        floor, min_n = float(rule["floor"]), int(rule["min_n"])
        eligible = {
            int(n): ratio
            for n, ratio in speedups.get(family, {}).items()
            if int(n) >= min_n
        }
        if not eligible:
            failures.append(f"no weak-speedup cell for {family} at n >= {min_n} in this run")
        else:
            best_n, best = max(eligible.items(), key=lambda item: item[1])
            if best < floor:
                failures.append(
                    f"weak-engine speedup on {family} is {best:.1f}x at n={best_n}, "
                    f"below the committed floor of {floor:.1f}x"
                )

    # Vector-kernel speedup floor and out-of-core scale cell.  The 10^5/10^6
    # tiers only run under ``run_all.py --scale`` (the bench-scale CI lane);
    # ordinary quick runs are exempt from the two scale gates but still carry
    # the agreement flag and the small vector cells above.
    vector_rule = baseline.get("vector_speedup_floor")
    scale_run = bool(meta.get("vector_scale", False))
    if vector_rule is not None:
        floor, min_n = float(vector_rule["floor"]), int(vector_rule["min_n"])
        eligible = {
            (family, int(n)): float(ratio)
            for family, by_n in meta.get("speedup_vector_vs_python", {}).items()
            for n, ratio in by_n.items()
            if int(n) >= min_n
        }
        if eligible:
            (best_family, best_n), best = max(eligible.items(), key=lambda item: item[1])
            if best < floor:
                failures.append(
                    f"vector-kernel speedup on {best_family} is {best:.1f}x at "
                    f"n={best_n}, below the committed floor of {floor:.1f}x over "
                    "the default python backend"
                )
        elif scale_run:
            failures.append(
                f"no vector-vs-python speedup cell at n >= {min_n} in this --scale run"
            )
    scale_n = baseline.get("vector_scale_n")
    if scale_n is not None and scale_run:
        mmap_cells = [
            record
            for record in payload.get("vector_records", [])
            if record["solver"] == "vector_mmap" and int(record["n"]) >= int(scale_n)
        ]
        if not mmap_cells:
            failures.append(
                f"no vector_mmap cell at n >= {int(scale_n)} in this --scale run -- "
                "the out-of-core tier did not complete"
            )
    return failures


def cell_report(
    payload: dict, baseline: dict, factor: float, absolute: bool
) -> tuple[list[tuple], float]:
    """Per-cell before/after rows: (key, expected, current, ratio, status)."""
    current = collect_cells(payload)
    expected: dict[str, float] = baseline.get("cells", {})
    shared = set(current) & set(expected)
    ratios = {
        key: current[key] / max(expected[key], MIN_EXPECTED_SECONDS) for key in shared
    }
    normaliser = hardware_normaliser(ratios, absolute)
    rows: list[tuple] = []
    for key in sorted(set(current) | set(expected)):
        before = expected.get(key)
        after = current.get(key)
        if before is None:
            rows.append((key, None, after, None, "new"))
        elif after is None:
            rows.append((key, before, None, None, "MISSING"))
        else:
            ratio = ratios[key]
            status = "REGRESSED" if ratio > factor * normaliser else "ok"
            rows.append((key, before, after, ratio, status))
    return rows, normaliser


def _format_row(value, template: str) -> str:
    return template.format(value) if value is not None else "-"


def print_cell_table(rows: list[tuple], normaliser: float, factor: float) -> None:
    print(
        f"per-cell trajectory ({len(rows)} cells, hardware factor {normaliser:.2f}, "
        f"allowed {factor:.1f}x):"
    )
    print(f"  {'cell':<46} {'expected':>10} {'current':>10} {'ratio':>8}  status")
    for key, before, after, ratio, status in rows:
        print(
            f"  {key:<46} {_format_row(before, '{:.4f}s'):>10} "
            f"{_format_row(after, '{:.4f}s'):>10} {_format_row(ratio, '{:.2f}x'):>8}  {status}"
        )


def write_step_summary(
    payload: dict,
    rows: list[tuple],
    normaliser: float,
    factor: float,
    failures: list[str],
) -> None:
    """Append the markdown report to ``$GITHUB_STEP_SUMMARY`` when set."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    meta = payload.get("meta", {})
    verdict = "FAILED" if failures else "passed"
    lines = [
        "## Bench gate: " + verdict,
        "",
        f"{len(rows)} cells compared, hardware factor {normaliser:.2f}, "
        f"allowed slowdown {factor:.1f}x per cell.",
        "",
    ]
    if failures:
        lines += ["### Violations", ""]
        lines += [f"- {failure}" for failure in failures]
        lines.append("")
    lines += [
        "| cell | expected | current | ratio | status |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    for key, before, after, ratio, status in rows:
        lines.append(
            f"| `{key}` | {_format_row(before, '{:.4f}s')} "
            f"| {_format_row(after, '{:.4f}s')} | {_format_row(ratio, '{:.2f}x')} | {status} |"
        )
    lines.append("")
    speedup_tables = (
        ("vector kernel vs default python backend", "speedup_vector_vs_python"),
        ("weak kernel vs dict saturation", "speedup_weak_kernel_vs_dict_saturation"),
    )
    for title, meta_key in speedup_tables:
        speedups = meta.get(meta_key) or {}
        if not speedups:
            continue
        lines += [f"### Speedup: {title}", "", "| family | n | speedup |", "| --- | ---: | ---: |"]
        for family, by_n in sorted(speedups.items()):
            for n, ratio in sorted(by_n.items(), key=lambda item: int(item[0])):
                lines.append(f"| {family} | {n} | {float(ratio):.1f}x |")
        lines.append("")
    load_records = payload.get("service_load_records") or []
    if load_records:
        capacity = (meta.get("service_load") or {}).get("calibrated_capacity_rps")
        lines += [
            "### Service soak: open-loop sustained throughput",
            "",
            f"Calibrated capacity {capacity} rps." if capacity is not None else "",
            "",
            "| cell | offered rps | ratio | p50 | p95 | p99 | deadline-shed | "
            "overloaded | steals | revivals | wedged |",
            "| --- | ---: | ---: | ---: | ---: | ---: | ---: | ---: | ---: | ---: | ---: |",
        ]
        for record in load_records:
            lines.append(
                f"| `{record['solver']}|{record['family']}|{record['n']}` "
                f"| {record['offered_rps']:.0f} | {record['throughput_ratio']:.3f} "
                f"| {record['p50_ms']:.1f} ms | {record['p95_ms']:.1f} ms "
                f"| {record['p99_ms']:.1f} ms | {record['deadline_exceeded']} "
                f"| {record['overloaded']} | {record['steals']} "
                f"| {record['revivals']} | {record['wedged_shards']} |"
            )
        lines.append("")
    cluster_records = payload.get("cluster_records") or []
    if cluster_records:
        cluster_meta = meta.get("cluster_load") or {}
        lines += [
            "### Cluster load: 3 nodes vs 1 behind the coordinator",
            "",
            f"Capacity {cluster_meta.get('cluster_capacity_rps')} rps vs "
            f"{cluster_meta.get('single_node_capacity_rps')} rps single-node.",
            "",
            "| cell | node speedup | offered rps | ratio | p99 | failovers | "
            "repairs | failover verified | wedged |",
            "| --- | ---: | ---: | ---: | ---: | ---: | ---: | ---: | ---: |",
        ]
        for record in cluster_records:
            lines.append(
                f"| `{record['solver']}|{record['family']}|{record['n']}` "
                f"| {record['node_speedup']:.2f}x | {record['offered_rps']:.0f} "
                f"| {record['throughput_ratio']:.3f} | {record['p99_ms']:.1f} ms "
                f"| {record['failovers']} | {record['repairs']} "
                f"| {record['failover_verified']} | {record['wedged_nodes']} |"
            )
        lines.append("")
    with open(summary_path, "a", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


def update_baseline(payload: dict, baseline_path: Path, factor: float) -> None:
    previous: dict = {}
    if baseline_path.exists():
        previous = json.loads(baseline_path.read_text(encoding="utf-8"))
    baseline = {
        "note": (
            "Expected per-cell seconds for the quick benchmark trajectory, and "
            "speedup floors for the weak-transition engine.  Regenerate with "
            "`python benchmarks/run_all.py --quick --skip-pytest && python "
            "benchmarks/check_regression.py --update` and review the diff."
        ),
        "factor": factor,
        "recorded_on": {
            "python": payload.get("meta", {}).get("python"),
            "platform": payload.get("meta", {}).get("platform"),
        },
        "cells": {
            key: round(seconds, 6) for key, seconds in sorted(collect_cells(payload).items())
        },
        "weak_speedup_floors": previous.get(
            "weak_speedup_floors",
            {
                "tau_ladder": {"min_n": 2000, "floor": 5.0},
                "tau_mesh": {"min_n": 2000, "floor": 5.0},
            },
        ),
        "engine_speedup_floor": previous.get("engine_speedup_floor", 5.0),
        "service_speedup_floor": previous.get("service_speedup_floor", 2.5),
        # The vector-kernel floor is measured on the --scale tier (10^5
        # states, where paige_tarjan costs ~80 s and the kernel ~0.6 s); the
        # scale-cell requirement keeps the 10^6-state mmap tier alive.
        "vector_speedup_floor": previous.get(
            "vector_speedup_floor", {"min_n": 100_000, "floor": 10.0}
        ),
        "vector_scale_n": previous.get("vector_scale_n", 1_000_000),
        # The acceptance bar is "a small fraction"; 0.10 leaves three orders
        # of magnitude of headroom over the measured ~3e-5.
        "explore_visit_fraction_ceiling": previous.get("explore_visit_fraction_ceiling", 0.10),
        # On an equivalent conformance check the game must visit every
        # reachable product pair exactly once (fraction 1.0 against one-leaf
        # specs); 1.5 allows bookkeeping slack while still failing if the
        # checker starts re-exploring pairs.
        "protocol_visit_fraction_ceiling": previous.get("protocol_visit_fraction_ceiling", 1.5),
        # The acceptance bar for the state-space reductions: the quorum
        # n=25 headline cell must stay decided while visiting at most this
        # fraction of the ~4.6e16 structural product states (measured
        # ~1.6e-15, so the ceiling is astronomically generous on purpose --
        # it fails only if reduction stops working, not if it gets worse).
        "reduction_visit_fraction_ceiling": previous.get(
            "reduction_visit_fraction_ceiling", 0.05
        ),
        # Soak gates are ratios/ceilings against the run's own calibrated
        # capacity, so they transfer across hosts; they only apply to
        # ``run_all.py --soak`` runs (the service-soak lane).
        "service_load_gates": previous.get(
            "service_load_gates",
            {
                "throughput_ratio_floor": 0.7,
                "p99_ms_ceiling": 1000.0,
                "max_wedged_shards": 0,
            },
        ),
        # Cluster gates are ratios against the run's own single-node
        # calibration, so they transfer across hosts; they only apply to
        # ``run_all.py --cluster`` runs (the cluster CI lanes).  The 2x
        # speedup floor is the acceptance criterion: three nodes at the
        # same fixed per-node cache budget must beat one node at least 2x.
        "cluster_gates": previous.get(
            "cluster_gates",
            {
                "node_speedup_floor": 2.0,
                "throughput_ratio_floor": 0.7,
                "max_wedged_nodes": 0,
            },
        ),
    }
    baseline_path.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {baseline_path} ({len(baseline['cells'])} cells)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench", type=Path, default=DEFAULT_BENCH, help="BENCH_partition.json path"
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE, help="committed expectations path"
    )
    parser.add_argument(
        "--factor", type=float, default=None, help="allowed slowdown per cell (default: baseline's)"
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="compare raw seconds (skip the hardware-speed normalisation)",
    )
    parser.add_argument(
        "--update", action="store_true", help="rewrite the baseline from the current run"
    )
    args = parser.parse_args(argv)

    if not args.bench.exists():
        print(f"ERROR: {args.bench} not found -- run benchmarks/run_all.py first", file=sys.stderr)
        return 2
    payload = json.loads(args.bench.read_text(encoding="utf-8"))

    if args.update:
        update_baseline(payload, args.baseline, args.factor if args.factor is not None else 2.0)
        return 0

    if not args.baseline.exists():
        print(f"ERROR: baseline {args.baseline} not found", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    factor = args.factor if args.factor is not None else float(baseline.get("factor", 2.0))

    failures = check(payload, baseline, factor, args.absolute)
    rows, normaliser = cell_report(payload, baseline, factor, args.absolute)
    print_cell_table(rows, normaliser, factor)
    write_step_summary(payload, rows, normaliser, factor, failures)
    shared = len(set(collect_cells(payload)) & set(baseline.get("cells", {})))
    if failures:
        print(f"bench-gate FAILED ({len(failures)} violation(s), {shared} cells compared):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"bench-gate passed: {shared} cells within {factor:.1f}x of expectations, solvers agree")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
