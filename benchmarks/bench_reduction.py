"""State-space-reduction benchmark: the quorum cell that needs it, plus parity.

Two questions about :mod:`repro.explore.reduce`, answered on the library
scenarios:

* **Reduction buys infeasible cells** -- quorum voting at ``n = 25``
  composes to ~4.6 * 10^16 structural product states (the unreduced game is
  hopeless), yet under ``reduction="full"`` the conformance check and the
  deadlock search must both finish, with the game visiting a vanishing
  fraction of the structural estimate (``reduction_visit_fraction``, gated
  by ``benchmarks/check_regression.py`` against the committed 0.05
  ceiling).
* **Reduction changes nothing else** -- at ``n = 5``, where the unreduced
  route is cheap, every ``reduction=`` mode must reproduce the unreduced
  conformance verdict, and every mode must report the same stuck kind for
  a crashed token ring (``reduction_routes_agree``, treated by the gate
  like a solver disagreement).

``run_cells`` reports records in the ``solver|family|n`` schema of
``BENCH_partition.json`` so ``benchmarks/run_all.py`` folds them into the
trajectory (section ``reduction_records``).
"""

from __future__ import annotations

import time

from repro.explore.reduce import REDUCTIONS, structural_state_estimate
from repro.protocols import Crash, apply_fault, build_scenario
from repro.protocols.check import check_conformance, find_stuck

#: the headline cell: far beyond the unreduced horizon, easy when reduced.
HEADLINE = {"family": "quorum_voting", "n": 25, "f": 12}

#: the parity cells: small enough that reduction="none" is the oracle.
PARITY_CONFORMANCE = {"family": "quorum_voting", "n": 5, "f": 2}
PARITY_STUCK = {"family": "token_passing", "n": 5}


def _best_of(fn, repeats: int):
    best, value = float("inf"), None
    for _ in range(repeats):
        begin = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - begin)
    return best, value


def run_headline_cells(repeats: int) -> tuple[list[dict], dict, bool]:
    """quorum n=25 under reduction="full": conformance + deadlock search."""
    scenario = build_scenario(
        HEADLINE["family"], n=HEADLINE["n"], f=HEADLINE["f"]
    )
    estimate = structural_state_estimate(scenario.system)
    records: list[dict] = []
    healthy = True

    seconds, verdict = _best_of(
        lambda: check_conformance(scenario.spec, scenario.system, reduction="full"),
        repeats,
    )
    pairs = verdict.stats.details["pairs_visited"]
    fraction = pairs / estimate
    if not verdict.equivalent:
        healthy = False
    records.append(
        {
            "solver": "reduction_full_conformance",
            "family": HEADLINE["family"],
            "n": HEADLINE["n"],
            "transitions": pairs,
            "blocks": HEADLINE["f"],
            "seconds": round(seconds, 6),
        }
    )

    seconds, report = _best_of(
        lambda: find_stuck(scenario.system, reduction="full"), repeats
    )
    # orderly termination: every run of the protocol ends in a successor-free
    # state after deciding, so the search must find a post-decide deadlock
    if report is None or report.kind != "deadlock" or "decide" not in report.trace:
        healthy = False
    records.append(
        {
            "solver": "reduction_full_stuck",
            "family": HEADLINE["family"],
            "n": HEADLINE["n"],
            "transitions": report.states_explored if report is not None else 0,
            "blocks": HEADLINE["f"],
            "seconds": round(seconds, 6),
        }
    )
    extras = {
        "reduction_structural_states": estimate,
        "reduction_pairs_visited": pairs,
        "reduction_visit_fraction": fraction,
    }
    return records, extras, healthy


def run_parity_cells(repeats: int) -> tuple[list[dict], bool]:
    """Every mode against the unreduced oracle, where the oracle is cheap."""
    records: list[dict] = []
    agree = True

    scenario = build_scenario(
        PARITY_CONFORMANCE["family"],
        n=PARITY_CONFORMANCE["n"],
        f=PARITY_CONFORMANCE["f"],
    )
    verdicts: dict[str, bool] = {}
    for mode in REDUCTIONS:
        seconds, verdict = _best_of(
            lambda mode=mode: check_conformance(
                scenario.spec, scenario.system, reduction=mode
            ),
            repeats,
        )
        verdicts[mode] = verdict.equivalent
        records.append(
            {
                "solver": f"reduction_{mode}_conformance",
                "family": PARITY_CONFORMANCE["family"],
                "n": PARITY_CONFORMANCE["n"],
                "transitions": verdict.stats.details["pairs_visited"],
                "blocks": PARITY_CONFORMANCE["f"],
                "seconds": round(seconds, 6),
            }
        )
    if set(verdicts.values()) != {verdicts["none"]}:
        agree = False

    stuck_scenario = build_scenario(PARITY_STUCK["family"], n=PARITY_STUCK["n"])
    crashed = apply_fault(stuck_scenario.system, Crash("station", 2, at="wait"))
    kinds: dict[str, str | None] = {}
    for mode in REDUCTIONS:
        seconds, report = _best_of(
            lambda mode=mode: find_stuck(crashed, reduction=mode), repeats
        )
        kinds[mode] = None if report is None else report.kind
        records.append(
            {
                "solver": f"reduction_{mode}_stuck",
                "family": PARITY_STUCK["family"] + "_crash",
                "n": PARITY_STUCK["n"],
                "transitions": report.states_explored if report is not None else 0,
                "blocks": 1,
                "seconds": round(seconds, 6),
            }
        )
    if set(kinds.values()) != {kinds["none"]}:
        agree = False
    return records, agree


def run_cells(repeats: int = 1) -> tuple[list[dict], dict, bool]:
    """All reduction cells; returns ``(records, extras, agree)``.

    ``agree`` is False when the headline cell fails (non-conformance, or the
    post-decide deadlock goes unreported) or any mode disagrees with the
    unreduced oracle on the parity cells -- correctness properties, which
    the CI gate treats like solver disagreements.
    """
    headline_records, extras, headline_ok = run_headline_cells(repeats)
    parity_records, parity_ok = run_parity_cells(repeats)
    extras = {**extras, "reduction_routes_agree": parity_ok}
    return headline_records + parity_records, extras, headline_ok and parity_ok


# ----------------------------------------------------------------------
# pytest-benchmark entry points (run by benchmarks/run_all.py's suite smoke)
# ----------------------------------------------------------------------
def test_quorum_n25_full_reduction(benchmark):
    scenario = build_scenario("quorum_voting", n=25, f=12)
    estimate = structural_state_estimate(scenario.system)
    verdict = benchmark(
        lambda: check_conformance(scenario.spec, scenario.system, reduction="full")
    )
    assert verdict.equivalent
    pairs = verdict.stats.details["pairs_visited"]
    benchmark.extra_info["visit_fraction"] = pairs / estimate
    assert pairs / estimate <= 0.05


def test_quorum_n25_full_deadlock_search(benchmark):
    scenario = build_scenario("quorum_voting", n=25, f=12)
    report = benchmark(lambda: find_stuck(scenario.system, reduction="full"))
    assert report is not None and report.kind == "deadlock"
    assert "decide" in report.trace


def test_reduction_routes_agree():
    records, extras, agree = run_cells()
    assert agree, extras


if __name__ == "__main__":
    records, extras, agree = run_cells()
    for record in records:
        print(
            f"{record['solver']:28s} {record['family']:20s} n={record['n']:3d} "
            f"visited={record['transitions']:7d} {record['seconds'] * 1000:9.2f} ms"
        )
    print(
        f"structural estimate {extras['reduction_structural_states']:.3e} states; "
        f"visit fraction {extras['reduction_visit_fraction']:.3e}; agree={agree}"
    )
