"""Experiment E1/E10/E11 helpers: classification cost and the trivial-NFA contrast.

Two cheap-but-informative series:

* classification of random processes into the Fig. 1a hierarchy scales
  linearly (it is a structural scan);
* the closing-remark contrast of Section 4: deciding ``approx_1 q*``
  (universality, exponential via determinisation) versus the linear-time
  structural characterisation of ``approx_2 q*`` on the same inputs.
"""

from __future__ import annotations

import pytest

from repro.core.classify import classify
from repro.generators.families import nondeterministic_counter, restricted_counter
from repro.generators.random_fsp import random_fsp
from repro.reductions.theorem41c import make_restricted
from repro.reductions.universality import (
    approx1_equals_trivial,
    approx2_equals_trivial_characterisation,
)

SIZES = [50, 200]


@pytest.mark.parametrize("size", SIZES)
def test_classification_cost(benchmark, size):
    process = random_fsp(size, tau_probability=0.2, transition_density=2.0, seed=size)
    classes = benchmark(lambda: classify(process))
    benchmark.extra_info["experiment"] = "E1"
    benchmark.extra_info["states"] = size
    benchmark.extra_info["classes"] = len(classes)


@pytest.mark.parametrize("bits", [4, 6, 8])
def test_approx1_vs_trivial_nfa(benchmark, bits):
    """E11, expensive side: approx_1 against q* is universality (exponential)."""
    process = make_restricted(nondeterministic_counter(bits))
    result = benchmark(lambda: approx1_equals_trivial(process))
    benchmark.extra_info["experiment"] = "E11"
    benchmark.extra_info["bits"] = bits
    benchmark.extra_info["universal"] = result


@pytest.mark.parametrize("bits", [4, 6, 8])
def test_approx2_vs_trivial_nfa(benchmark, bits):
    """E11, cheap side: the approx_2 characterisation is a linear structural scan."""
    process = restricted_counter(bits)
    result = benchmark(lambda: approx2_equals_trivial_characterisation(process))
    benchmark.extra_info["experiment"] = "E11"
    benchmark.extra_info["bits"] = bits
    benchmark.extra_info["matches_trivial"] = result
