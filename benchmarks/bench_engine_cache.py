"""Engine cache benchmark: ``check_many`` on a cached engine vs cold free calls.

The engine facade exists for the repeated-query workload: many equivalence
checks that keep revisiting the same processes and pairs.  This module builds
that workload -- a pool of related processes (random bases, duplicated
equivalent copies, perturbed near-misses) and a manifest of 100+ checks drawn
from it with repetition across strong / observational / language notions --
and times two routes over the *same* manifest:

* **cold** -- the pre-engine free-function shape: every check recompiles the
  full ``FSP -> kernel -> partition`` (or subset-construction) pipeline from
  scratch, exactly as the old ``*_equivalent_processes`` bodies did;
* **warm** -- one shared :class:`repro.engine.Engine` driving
  :meth:`~repro.engine.Engine.check_many`, so per-process artifacts
  (quotients, DFAs, saturations) and per-pair verdicts are computed once.

Both routes must agree check-for-check; ``run_cells`` reports the records in
the ``solver|family|n`` schema of ``BENCH_partition.json`` so
``benchmarks/run_all.py`` folds them into the trajectory and
``benchmarks/check_regression.py`` gates the committed speedup floor.

The pytest-benchmark half exposes the same two routes to the bench suite.
"""

from __future__ import annotations

import time

from repro.engine import Engine
from repro.equivalence.language import language_nfa
from repro.equivalence.observational import observationally_equivalent
from repro.equivalence.strong import strongly_equivalent
from repro.generators.random_fsp import perturb, random_equivalent_copy, random_fsp

#: manifest size used by the trajectory: 24 distinct (pair, notion) checks
#: revisited 10x each, the repeat profile of a server-side batch.  The
#: committed speedup floor is measured on this manifest (>= 100
#: repeated-process pairs).
DEFAULT_NUM_CHECKS = 240
FAMILY = "engine_pool"
COLD_SOLVER = "cold_free_functions"
WARM_SOLVER = "engine_check_many"

_NOTIONS = ("strong", "observational", "language")


def build_pool(num_bases: int = 4, base_states: int = 24) -> list:
    """Related processes sharing one signature: bases, equivalent copies, near-misses."""
    pool = []
    for seed in range(num_bases):
        base = random_fsp(base_states, tau_probability=0.2, all_accepting=True, seed=seed)
        pool.append(base)
        pool.append(random_equivalent_copy(base, duplicates=3, seed=seed + 100))
        pool.append(perturb(base, seed=seed + 200))
    return pool


def build_manifest(num_checks: int = DEFAULT_NUM_CHECKS, num_bases: int = 4) -> list[tuple]:
    """``num_checks`` checks cycling over pool pairs and notions, with repetition.

    The distinct (pair, notion) combinations are deliberately far fewer than
    ``num_checks``: the manifest revisits pairs exactly the way a server-side
    batch does, which is the shape the verdict cache exists for.
    """
    pool = build_pool(num_bases=num_bases)
    distinct: list[tuple] = []
    for base_index in range(num_bases):
        base = pool[3 * base_index]
        copy = pool[3 * base_index + 1]
        near = pool[3 * base_index + 2]
        for notion in _NOTIONS:
            distinct.append((base, copy, notion))
            distinct.append((base, near, notion))
    return [distinct[i % len(distinct)] for i in range(num_checks)]


def _cold_check(first, second, notion: str) -> bool:
    """One check the pre-engine way: recompile everything for this pair."""
    if notion == "language":
        from repro.automata.equivalence import nfa_equivalent

        return nfa_equivalent(language_nfa(first), language_nfa(second))
    combined = first.disjoint_union(second)
    decide = strongly_equivalent if notion == "strong" else observationally_equivalent
    return decide(combined, "L:" + first.start, "R:" + second.start)


def cold_loop(manifest: list[tuple]) -> list[bool]:
    """Run the whole manifest with zero sharing between checks."""
    return [_cold_check(first, second, notion) for first, second, notion in manifest]


def warm_run(manifest: list[tuple], engine: Engine | None = None) -> list[bool]:
    """Run the manifest through one shared engine (the cached route)."""
    engine = engine if engine is not None else Engine()
    result = engine.check_many(manifest, witness=False, align=False)
    return [verdict.equivalent for verdict in result]


def run_cells(
    num_checks: int = DEFAULT_NUM_CHECKS, repeats: int = 1
) -> tuple[list[dict], float, bool]:
    """Time both routes; returns ``(records, speedup, agree)``.

    Records follow the ``BENCH_partition.json`` schema (``solver`` /
    ``family`` / ``n`` / ``seconds``); ``n`` is the manifest size.  ``agree``
    is False when the two routes disagree on any check -- a correctness bug,
    which the CI gate treats like a solver disagreement.
    """
    manifest = build_manifest(num_checks)

    def best_of(fn):
        best, answers = float("inf"), None
        for _ in range(repeats):
            begin = time.perf_counter()
            answers = fn()
            best = min(best, time.perf_counter() - begin)
        return best, answers

    cold_seconds, cold_answers = best_of(lambda: cold_loop(manifest))
    warm_seconds, warm_answers = best_of(lambda: warm_run(manifest))
    agree = cold_answers == warm_answers
    records = [
        {
            "solver": COLD_SOLVER,
            "family": FAMILY,
            "n": num_checks,
            "transitions": sum(p.num_transitions for p, _q, _n in manifest),
            "blocks": sum(cold_answers),
            "seconds": round(cold_seconds, 6),
        },
        {
            "solver": WARM_SOLVER,
            "family": FAMILY,
            "n": num_checks,
            "transitions": sum(p.num_transitions for p, _q, _n in manifest),
            "blocks": sum(warm_answers),
            "seconds": round(warm_seconds, 6),
        },
    ]
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    return records, round(speedup, 2), agree


# ----------------------------------------------------------------------
# pytest-benchmark entry points (run by benchmarks/run_all.py's suite smoke)
# ----------------------------------------------------------------------
def test_cold_free_function_loop(benchmark):
    manifest = build_manifest(40)
    answers = benchmark(lambda: cold_loop(manifest))
    benchmark.extra_info["checks"] = len(manifest)
    benchmark.extra_info["equivalent"] = sum(answers)


def test_warm_engine_check_many(benchmark):
    manifest = build_manifest(40)
    answers = benchmark(lambda: warm_run(manifest))
    benchmark.extra_info["checks"] = len(manifest)
    benchmark.extra_info["equivalent"] = sum(answers)


def test_routes_agree():
    manifest = build_manifest(40)
    assert cold_loop(manifest) == warm_run(manifest)


if __name__ == "__main__":
    records, speedup, agree = run_cells()
    for record in records:
        print(f"{record['solver']:22s} n={record['n']}  {record['seconds'] * 1000:9.2f} ms")
    print(f"speedup (cached engine vs cold loop): {speedup:.1f}x; agree={agree}")
