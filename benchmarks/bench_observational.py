"""Experiment E7 (Theorem 4.1(a)): observational equivalence in polynomial time.

The benchmark measures the two phases of the algorithm -- tau-saturation and
partition refinement of the saturated process -- on tau-rich ladder processes
whose saturation density grows quadratically, plus the end-to-end equivalence
decision on pairs of equivalent (duplicated) and inequivalent (perturbed)
processes.  The expected shape is smooth polynomial growth, in contrast with
the exponential blow-ups of E8/E12.
"""

from __future__ import annotations

import pytest

from repro.core.derivatives import saturate
from repro.equivalence.observational import (
    observational_partition,
    observationally_equivalent_processes,
)
from repro.generators.families import tau_ladder
from repro.generators.random_fsp import random_equivalent_copy, random_fsp
from repro.utils.matrices import weak_transition_matrices

SIZES = [10, 30, 60]


@pytest.mark.parametrize("rungs", SIZES)
def test_saturation_cost(benchmark, rungs):
    process = tau_ladder(rungs)
    saturated = benchmark(lambda: saturate(process))
    benchmark.extra_info["experiment"] = "E7"
    benchmark.extra_info["states"] = process.num_states
    benchmark.extra_info["transitions"] = process.num_transitions
    benchmark.extra_info["saturated_transitions"] = saturated.num_transitions


@pytest.mark.parametrize("rungs", SIZES)
def test_matrix_saturation_cost(benchmark, rungs):
    """The paper's matrix-product formulation of the same closure (cross-check implementation)."""
    process = tau_ladder(rungs)
    benchmark(lambda: weak_transition_matrices(process))
    benchmark.extra_info["experiment"] = "E7"
    benchmark.extra_info["states"] = process.num_states


@pytest.mark.parametrize("rungs", SIZES)
def test_observational_partition_cost(benchmark, rungs):
    process = tau_ladder(rungs)
    partition = benchmark(lambda: observational_partition(process))
    benchmark.extra_info["experiment"] = "E7"
    benchmark.extra_info["states"] = process.num_states
    benchmark.extra_info["blocks"] = len(partition)


@pytest.mark.parametrize("size", [15, 40])
@pytest.mark.parametrize("relation", ["equivalent", "inequivalent"])
def test_end_to_end_equivalence_decision(benchmark, size, relation):
    base = random_fsp(
        size, tau_probability=0.25, transition_density=2.0, seed=size, all_accepting=True
    )
    if relation == "equivalent":
        other = random_equivalent_copy(base, duplicates=size // 3, seed=size)
        expected = True
    else:
        other = random_fsp(
            size, tau_probability=0.25, transition_density=2.0, seed=size + 999, all_accepting=True
        )
        expected = observationally_equivalent_processes(base, other)
    result = benchmark(lambda: observationally_equivalent_processes(base, other))
    benchmark.extra_info["experiment"] = "E7"
    benchmark.extra_info["relation"] = relation
    benchmark.extra_info["answer"] = result
    assert result == expected
