"""Tests for the simulation preorder and mutual similarity."""

from __future__ import annotations

from repro.core.fsp import TAU, from_transitions
from repro.equivalence.observational import observationally_equivalent_processes
from repro.equivalence.simulation import (
    is_simulation,
    similar,
    similar_processes,
    simulates,
    simulation_preorder,
)
from repro.equivalence.strong import strongly_equivalent_processes


def _with_stub_branch():
    """a.b + a -- the extra `a` branch deadlocks immediately."""
    return from_transitions(
        [("p", "a", "p1"), ("p1", "b", "p2"), ("p", "a", "p3")],
        start="p",
        all_accepting=True,
    )


def _without_stub_branch():
    """a.b"""
    return from_transitions(
        [("q", "a", "q1"), ("q1", "b", "q2")],
        start="q",
        all_accepting=True,
    )


class TestStrongSimulation:
    def test_preorder_is_reflexive(self, branching_process):
        relation = simulation_preorder(branching_process)
        for state in branching_process.states:
            assert (state, state) in relation

    def test_computed_preorder_is_a_simulation(self, branching_process):
        relation = simulation_preorder(branching_process)
        assert is_simulation(branching_process, relation)

    def test_longer_chain_simulates_shorter(self):
        process = from_transitions(
            [("long0", "a", "long1"), ("long1", "a", "long2"), ("short0", "a", "short1")],
            start="long0",
            all_accepting=True,
        )
        assert simulates(process, "long0", "short0")
        assert not simulates(process, "short0", "long0")
        assert not similar(process, "long0", "short0")

    def test_extension_mismatch_blocks_simulation(self, branching_process):
        assert not simulates(branching_process, "s", "t")

    def test_stub_branch_is_similar_but_not_bisimilar(self):
        """The classic gap between mutual similarity and bisimilarity: a.b + a  vs  a.b."""
        first, second = _with_stub_branch(), _without_stub_branch()
        assert similar_processes(first, second)
        assert not strongly_equivalent_processes(first, second)
        assert not observationally_equivalent_processes(first, second)

    def test_similarity_is_coarser_than_bisimilarity(self):
        first = from_transitions([("p", "a", "p1")], start="p", all_accepting=True)
        second = from_transitions(
            [("q", "a", "q1"), ("q", "a", "q2")], start="q", all_accepting=True
        )
        assert strongly_equivalent_processes(first, second)
        assert similar_processes(first, second)


class TestWeakSimulation:
    def test_tau_prefix_is_absorbed(self):
        process = from_transitions(
            [("p", "a", "p1"), ("q", TAU, "qm"), ("qm", "a", "q1")],
            start="p",
            all_accepting=True,
        )
        assert similar(process, "p", "q", weak=True)
        assert not similar(process, "p", "q", weak=False)

    def test_weak_preorder_is_a_weak_simulation(self, tau_process):
        relation = simulation_preorder(tau_process, weak=True)
        assert is_simulation(tau_process, relation, weak=True)

    def test_weak_similarity_strictly_coarser_than_observational_equivalence(self):
        first, second = _with_stub_branch(), _without_stub_branch()
        # observational equivalence would imply weak mutual similarity; here we
        # only have the latter, which shows the inclusion is strict.
        assert similar_processes(first, second, weak=True)
        assert not observationally_equivalent_processes(first, second)

    def test_is_simulation_rejects_bad_relation(self):
        process = from_transitions(
            [("p", "a", "p1"), ("q", "b", "q1")], start="p", all_accepting=True
        )
        assert not is_simulation(process, {("p", "q")})
