"""Tests for Hennessy-Milner logic and distinguishing formulas."""

from __future__ import annotations

from repro.core.fsp import TAU, from_transitions
from repro.core.paper_figures import fig2_language_pair
from repro.equivalence.hml import (
    And,
    Diamond,
    ExtensionIs,
    Not,
    Tt,
    WeakDiamond,
    distinguishing_formula,
    modal_depth,
    satisfies,
)
from repro.equivalence.observational import observationally_equivalent_processes
from repro.equivalence.strong import strongly_equivalent


class TestSatisfaction:
    def test_tt_everywhere(self, branching_process):
        for state in branching_process.states:
            assert satisfies(branching_process, state, Tt())

    def test_extension_atom(self, branching_process):
        accepting = ExtensionIs(frozenset({"x"}))
        assert satisfies(branching_process, "t", accepting)
        assert not satisfies(branching_process, "s", accepting)

    def test_diamond(self, branching_process):
        can_do_b = Diamond("b", Tt())
        assert satisfies(branching_process, "l", can_do_b)
        assert not satisfies(branching_process, "r", can_do_b)

    def test_nested_diamond(self, branching_process):
        formula = Diamond("a", Diamond("b", ExtensionIs(frozenset({"x"}))))
        assert satisfies(branching_process, "s", formula)

    def test_negation_and_conjunction(self, branching_process):
        formula = And((Diamond("a", Tt()), Not(Diamond("b", Tt()))))
        assert satisfies(branching_process, "s", formula)
        assert not satisfies(branching_process, "l", formula)

    def test_weak_diamond_sees_through_tau(self, tau_process):
        weak_a = WeakDiamond("a", Tt())
        strong_a = Diamond("a", Tt())
        # s can do `a` directly; after the tau it still weakly can.
        assert satisfies(tau_process, "s", weak_a)
        assert satisfies(tau_process, "m", weak_a)
        assert not satisfies(tau_process, "t", weak_a)
        assert satisfies(tau_process, "s", strong_a)

    def test_weak_epsilon_diamond(self, tau_process):
        reaches_accepting = WeakDiamond("", ExtensionIs(frozenset({"x"})))
        assert satisfies(tau_process, "t", reaches_accepting)
        assert not satisfies(tau_process, "s", reaches_accepting)

    def test_modal_depth(self):
        formula = Diamond("a", And((Diamond("b", Tt()), ExtensionIs(frozenset()))))
        assert modal_depth(formula) == 2
        assert modal_depth(Tt()) == 0
        assert modal_depth(Not(Diamond("a", Tt()))) == 1

    def test_str_renderings(self):
        formula = Not(Diamond("a", And((Tt(), WeakDiamond("b", Tt())))))
        text = str(formula)
        assert "<a>" in text and "<<b>>" in text and "¬" in text


class TestDistinguishingFormulas:
    def test_none_for_equivalent_states(self):
        process = from_transitions(
            [("p", "a", "x"), ("q", "a", "y")], start="p", all_accepting=True
        )
        assert distinguishing_formula(process, "p", "q") is None

    def test_formula_separates_strongly_inequivalent_states(self, branching_process):
        formula = distinguishing_formula(branching_process, "l", "r")
        assert formula is not None
        assert satisfies(branching_process, "l", formula)
        assert not satisfies(branching_process, "r", formula)

    def test_extension_level_difference(self, branching_process):
        formula = distinguishing_formula(branching_process, "s", "t")
        assert isinstance(formula, ExtensionIs)
        assert satisfies(branching_process, "s", formula)
        assert not satisfies(branching_process, "t", formula)

    def test_weak_formula_for_fig2_pair(self):
        first, second = fig2_language_pair()
        combined = first.disjoint_union(second)
        assert not observationally_equivalent_processes(first, second)
        formula = distinguishing_formula(combined, "L:p0", "R:q0", weak=True)
        # weak equivalence fails, so a weak distinguishing formula must exist ...
        if formula is None:
            formula = distinguishing_formula(combined, "R:q0", "L:p0", weak=True)
        assert formula is not None
        sat_left = satisfies(combined, "L:p0", formula)
        sat_right = satisfies(combined, "R:q0", formula)
        assert sat_left != sat_right

    def test_strong_formula_respects_tau_as_label(self, tau_process):
        # s and t differ already in extensions
        formula = distinguishing_formula(tau_process, "s", "t")
        assert formula is not None
        assert satisfies(tau_process, "s", formula) != satisfies(tau_process, "t", formula)

    def test_formula_depth_matches_separation_level(self):
        first, second = fig2_language_pair()
        combined = first.disjoint_union(second)
        formula = distinguishing_formula(combined, "R:q0", "L:p0", weak=True)
        assert formula is not None
        assert modal_depth(formula) <= 2

    def test_strong_distinguishing_on_equivalent_weak_pair(self):
        """tau.a.0 vs a.0: strongly different, weakly equivalent."""
        process = from_transitions(
            [("p", TAU, "pm"), ("pm", "a", "p1"), ("q", "a", "q1")],
            start="p",
            all_accepting=True,
        )
        assert not strongly_equivalent(process, "p", "q")
        strong_formula = distinguishing_formula(process, "p", "q", weak=False)
        assert strong_formula is not None
        assert satisfies(process, "p", strong_formula) != satisfies(process, "q", strong_formula)
        assert distinguishing_formula(process, "p", "q", weak=True) is None
