"""Tests for the language view of FSP states (approx_1 / Proposition 2.2.3(b))."""

from __future__ import annotations

from repro.core.fsp import TAU, from_transitions
from repro.equivalence.language import (
    accepted_strings_upto,
    is_universal,
    language_distinguishing_word,
    language_equivalent,
    language_equivalent_processes,
    language_included,
    language_nfa,
    traces_upto,
    universality_counterexample,
)


class TestLanguageExtraction:
    def test_accepted_strings(self, branching_process):
        strings = accepted_strings_upto(branching_process, 3)
        assert strings == frozenset({("a", "b"), ("a", "c")})

    def test_tau_is_invisible_in_language(self, tau_process):
        strings = accepted_strings_upto(tau_process, 2)
        assert ("a",) in strings
        assert all(TAU not in string for string in strings)

    def test_traces_include_non_accepting_prefixes(self, branching_process):
        traces = traces_upto(branching_process, 2)
        assert () in traces
        assert ("a",) in traces

    def test_language_nfa_custom_root_and_accepting(self, branching_process):
        nfa = language_nfa(branching_process, start="l", accepting={"t"})
        assert nfa.accepts(["b"])
        assert not nfa.accepts(["a"])


class TestEquivalenceAndInclusion:
    def test_language_equivalent_states(self):
        process = from_transitions(
            [("p", "a", "x"), ("q", "a", "y")], start="p", all_accepting=True
        )
        assert language_equivalent(process, "p", "q")
        assert language_equivalent(process, "x", "y")
        assert not language_equivalent(process, "p", "x")

    def test_distinguishing_word(self):
        process = from_transitions(
            [("p", "a", "x"), ("x", "a", "z"), ("q", "a", "y")],
            start="p",
            all_accepting=True,
        )
        word = language_distinguishing_word(process, "p", "q")
        assert word == ("a", "a")
        assert language_distinguishing_word(process, "x", "y") == ("a",)
        assert language_distinguishing_word(process, "z", "y") is None

    def test_inclusion(self):
        process = from_transitions(
            [("p", "a", "x"), ("p", "b", "y"), ("q", "a", "z")],
            start="p",
            all_accepting=True,
        )
        assert language_included(process, "q", "p")
        assert not language_included(process, "p", "q")

    def test_processes_comparison(self):
        first = from_transitions([("p", "a", "x")], start="p", all_accepting=True)
        second = from_transitions([("q", "a", "y"), ("q", "a", "z")], start="q", all_accepting=True)
        assert language_equivalent_processes(first, second)


class TestUniversality:
    def test_universal_process(self):
        process = from_transitions(
            [("u", "a", "u"), ("u", "b", "u")], start="u", all_accepting=True
        )
        assert is_universal(process)
        assert universality_counterexample(process) is None

    def test_non_universal_process(self):
        process = from_transitions(
            [("u", "a", "u")], start="u", all_accepting=True, alphabet={"a", "b"}
        )
        assert not is_universal(process)
        counterexample = universality_counterexample(process)
        assert counterexample is not None and counterexample == ("b",)

    def test_universality_with_tau_shortcuts(self):
        process = from_transitions(
            [("u", TAU, "v"), ("v", "a", "v"), ("v", "b", "v")],
            start="u",
            all_accepting=True,
        )
        assert is_universal(process)

    def test_standard_process_universality_depends_on_accepting(self):
        process = from_transitions(
            [("u", "a", "v"), ("v", "a", "u"), ("u", "b", "u"), ("v", "b", "v")],
            start="u",
            accepting=["u"],
        )
        # the odd-length a-words are rejected
        assert not is_universal(process)
