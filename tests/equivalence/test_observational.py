"""Tests for observational equivalence (Theorem 4.1(a))."""

from __future__ import annotations

import pytest

from repro.core.fsp import TAU, from_transitions
from repro.equivalence.observational import (
    limited_observational_partition_reference,
    observational_partition,
    observationally_equivalent,
    observationally_equivalent_processes,
)
from repro.generators.random_fsp import random_fsp
from repro.partition.generalized import Solver


class TestTauLaws:
    def test_tau_prefix_is_absorbed(self):
        """a.0  approx  tau.a.0 (Milner's first tau-law at the process level)."""
        direct = from_transitions([("p", "a", "p1")], start="p", all_accepting=True)
        delayed = from_transitions(
            [("q", TAU, "qm"), ("qm", "a", "q1")], start="q", all_accepting=True
        )
        assert observationally_equivalent_processes(direct, delayed)

    def test_tau_loop_is_invisible(self):
        quiet = from_transitions([("p", "a", "p1")], start="p", all_accepting=True)
        chattering = from_transitions(
            [("q", TAU, "q"), ("q", "a", "q1")], start="q", all_accepting=True
        )
        assert observationally_equivalent_processes(quiet, chattering)

    def test_tau_choice_is_observable_when_it_discards_options(self):
        """a.0 + b.0  is NOT approx  a.0 + tau.b.0 (the tau pre-empts the a)."""
        stable = from_transitions(
            [("p", "a", "p1"), ("p", "b", "p2")], start="p", all_accepting=True
        )
        preempting = from_transitions(
            [("q", "a", "q1"), ("q", TAU, "qm"), ("qm", "b", "q2")],
            start="q",
            all_accepting=True,
        )
        assert not observationally_equivalent_processes(stable, preempting)

    def test_extension_visibility_through_tau(self):
        """A tau-move into a state with different extensions is observable at level 0/1."""
        plain = from_transitions([("p", "a", "p1")], start="p", accepting=["p"])
        tau_to_accepting = from_transitions(
            [("q", "a", "q1"), ("q", TAU, "qa")], start="q", accepting=["q", "qa"]
        )
        # q's tau-derivative qa is accepting and dead; p has no matching epsilon-derivative
        assert not observationally_equivalent_processes(plain, tau_to_accepting)


class TestAgainstReferenceImplementation:
    @pytest.mark.parametrize("seed", range(8))
    def test_saturation_route_matches_fixed_point_reference(self, seed):
        process = random_fsp(num_states=8, tau_probability=0.3, transition_density=1.8, seed=seed)
        fast = observational_partition(process)
        reference = limited_observational_partition_reference(process)
        assert fast == reference

    def test_methods_agree(self, tau_process):
        reference = observational_partition(tau_process, method=Solver.NAIVE)
        for method in (Solver.KANELLAKIS_SMOLKA, Solver.PAIGE_TARJAN):
            assert observational_partition(tau_process, method=method) == reference


class TestPairwise:
    def test_states_of_same_process(self, tau_process):
        # s can do a (directly or via tau); m can do a as well and both are non-accepting
        assert observationally_equivalent(tau_process, "s", "m")

    def test_observational_implies_not_necessarily_strong(self):
        process = from_transitions(
            [("p", "a", "p1"), ("q", TAU, "qm"), ("qm", "a", "q1")],
            start="p",
            all_accepting=True,
        )
        assert observationally_equivalent(process, "p", "q")

    def test_weak_language_difference_detected(self):
        first = from_transitions([("p", "a", "p1")], start="p", all_accepting=True)
        second = from_transitions(
            [("q", "a", "q1"), ("q1", "b", "q2")], start="q", all_accepting=True
        )
        assert not observationally_equivalent_processes(first.with_alphabet({"a", "b"}), second)


class TestClassicExamples:
    def test_coffee_machine_counterexample(self):
        """coin.(tea + coffee)  vs  coin.tea + coin.coffee -- the classic non-equivalence."""
        good = from_transitions(
            [("g", "coin", "g1"), ("g1", "tea", "g2"), ("g1", "coffee", "g3")],
            start="g",
            all_accepting=True,
        )
        committing = from_transitions(
            [("b", "coin", "b1"), ("b1", "tea", "b2"), ("b", "coin", "b3"), ("b3", "coffee", "b4")],
            start="b",
            all_accepting=True,
        )
        assert not observationally_equivalent_processes(good, committing)

    def test_internal_choice_collapses_when_options_equal(self):
        direct = from_transitions(
            [("p", "coin", "p1"), ("p1", "tea", "p2")], start="p", all_accepting=True
        )
        internal = from_transitions(
            [
                ("q", "coin", "q1"),
                ("q1", TAU, "q2"),
                ("q1", TAU, "q3"),
                ("q2", "tea", "q4"),
                ("q3", "tea", "q5"),
            ],
            start="q",
            all_accepting=True,
        )
        assert observationally_equivalent_processes(direct, internal)
