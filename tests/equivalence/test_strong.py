"""Tests for strong equivalence via generalized partitioning (Theorem 3.1)."""

from __future__ import annotations

import pytest

from repro.core.errors import ModelClassError
from repro.core.fsp import TAU, from_transitions
from repro.equivalence.strong import (
    strong_bisimulation_partition,
    strong_equivalence_classes,
    strongly_equivalent,
    strongly_equivalent_processes,
)
from repro.partition.generalized import Solver


@pytest.fixture
def mirrored_process():
    """Two structurally identical branches hanging off distinguishable roots."""
    return from_transitions(
        [
            ("p", "a", "p1"),
            ("p1", "b", "p2"),
            ("q", "a", "q1"),
            ("q1", "b", "q2"),
            ("r", "a", "r1"),
            ("r1", "c", "r2"),
        ],
        start="p",
        all_accepting=True,
    )


class TestPartition:
    def test_isomorphic_branches_merge(self, mirrored_process):
        partition = strong_bisimulation_partition(mirrored_process)
        assert partition.same_block("p", "q")
        assert partition.same_block("p1", "q1")
        assert partition.same_block("p2", "q2")

    def test_different_branches_stay_apart(self, mirrored_process):
        partition = strong_bisimulation_partition(mirrored_process)
        assert not partition.same_block("p", "r")
        assert not partition.same_block("p1", "r1")
        # but the leaves are all strongly equivalent (dead, accepting)
        assert partition.same_block("p2", "r2")

    def test_extensions_split_level_zero(self):
        process = from_transitions([("p", "a", "x"), ("q", "a", "y")], start="p", accepting=["x"])
        partition = strong_bisimulation_partition(process)
        assert not partition.same_block("x", "y")
        assert not partition.same_block("p", "q")

    def test_all_methods_agree(self, mirrored_process):
        reference = strong_bisimulation_partition(mirrored_process, method=Solver.NAIVE)
        for method in (Solver.KANELLAKIS_SMOLKA, Solver.PAIGE_TARJAN):
            assert strong_bisimulation_partition(mirrored_process, method=method) == reference

    def test_classes_view(self, mirrored_process):
        classes = strong_equivalence_classes(mirrored_process)
        assert frozenset({"p2", "q2", "r2"}) in classes


class TestPairwiseDecision:
    def test_strongly_equivalent_states(self, mirrored_process):
        assert strongly_equivalent(mirrored_process, "p", "q")
        assert not strongly_equivalent(mirrored_process, "p", "r")

    def test_reflexive(self, mirrored_process):
        for state in mirrored_process.states:
            assert strongly_equivalent(mirrored_process, state, state)

    def test_strongly_equivalent_processes(self):
        first = from_transitions([("p", "a", "p1")], start="p", all_accepting=True)
        second = from_transitions([("q", "a", "q1")], start="q", all_accepting=True)
        assert strongly_equivalent_processes(first, second)

    def test_inequivalent_processes(self):
        first = from_transitions([("p", "a", "p1")], start="p", all_accepting=True)
        second = from_transitions(
            [("q", "a", "q1"), ("q1", "a", "q2")], start="q", all_accepting=True
        )
        assert not strongly_equivalent_processes(first, second)

    def test_signature_mismatch_rejected(self):
        first = from_transitions([("p", "a", "p1")], start="p", all_accepting=True)
        second = from_transitions([("q", "b", "q1")], start="q", all_accepting=True)
        with pytest.raises(ModelClassError):
            strongly_equivalent_processes(first, second)


class TestTauHandling:
    def test_tau_treated_as_action_by_default(self):
        """With tau as a label, a.0 and tau.a.0 are NOT strongly equivalent."""
        direct = from_transitions([("p", "a", "p1")], start="p", all_accepting=True)
        delayed = from_transitions(
            [("q", TAU, "qm"), ("qm", "a", "q1")], start="q", all_accepting=True
        )
        assert not strongly_equivalent_processes(direct, delayed)

    def test_require_observable_flag(self):
        delayed = from_transitions([("q", TAU, "q1")], start="q", all_accepting=True)
        with pytest.raises(ModelClassError):
            strong_bisimulation_partition(delayed, require_observable=True)

    def test_tau_branching_difference_detected(self):
        first = from_transitions(
            [("p", TAU, "p1"), ("p1", "a", "p2")], start="p", all_accepting=True
        )
        second = from_transitions(
            [("q", TAU, "q1"), ("q", TAU, "q2"), ("q1", "a", "q3")],
            start="q",
            all_accepting=True,
        )
        # q has a tau-move into a dead state; strongly this is a difference
        assert not strongly_equivalent_processes(first, second)


class TestKnownIdentities:
    def test_nondeterministic_choice_commutes(self):
        left = from_transitions([("p", "a", "p1"), ("p", "b", "p2")], start="p", all_accepting=True)
        right = from_transitions(
            [("q", "b", "q1"), ("q", "a", "q2")], start="q", all_accepting=True
        )
        assert strongly_equivalent_processes(left, right)

    def test_unfolding_a_loop_is_strongly_equivalent(self):
        loop = from_transitions([("p", "a", "p")], start="p", all_accepting=True)
        unrolled = from_transitions(
            [("q0", "a", "q1"), ("q1", "a", "q0")], start="q0", all_accepting=True
        )
        assert strongly_equivalent_processes(loop, unrolled)

    def test_duplicate_branch_is_absorbed(self):
        single = from_transitions([("p", "a", "p1")], start="p", all_accepting=True)
        doubled = from_transitions(
            [("q", "a", "q1"), ("q", "a", "q2")], start="q", all_accepting=True
        )
        assert strongly_equivalent_processes(single, doubled)
