"""Tests for quotient construction and minimisation."""

from __future__ import annotations

from repro.core.fsp import TAU, from_transitions
from repro.equivalence.minimize import (
    minimize_observational,
    minimize_strong,
    quotient,
    reduction_ratio,
)
from repro.equivalence.observational import observationally_equivalent_processes
from repro.equivalence.strong import strong_bisimulation_partition, strongly_equivalent_processes
from repro.generators.families import duplicated_chain
from repro.partition.partition import Partition


class TestQuotient:
    def test_quotient_collapses_blocks(self, simple_chain):
        partition = Partition([["c0", "c1"], ["c2"]])
        collapsed = quotient(simple_chain, partition)
        assert collapsed.num_states == 2

    def test_quotient_keeps_start(self, simple_chain):
        partition = Partition([["c0"], ["c1", "c2"]])
        collapsed = quotient(simple_chain, partition)
        assert collapsed.start == "[c0]"

    def test_quotient_can_keep_unreachable(self):
        process = from_transitions(
            [("p", "a", "q"), ("island", "a", "island")], start="p", all_accepting=True
        )
        partition = Partition.discrete(process.states)
        kept = quotient(process, partition, drop_unreachable=False)
        dropped = quotient(process, partition, drop_unreachable=True)
        assert kept.num_states == 3
        assert dropped.num_states == 2


class TestMinimizeStrong:
    def test_duplicates_collapse_to_chain(self):
        bloated = duplicated_chain(4, 3)
        minimal = minimize_strong(bloated)
        assert minimal.num_states == 5  # a chain of length 4 has 5 states
        assert strongly_equivalent_processes(bloated, minimal)

    def test_minimal_process_is_a_fixed_point(self):
        bloated = duplicated_chain(3, 2)
        minimal = minimize_strong(bloated)
        assert minimize_strong(minimal).num_states == minimal.num_states

    def test_partition_blocks_match_state_count(self):
        bloated = duplicated_chain(3, 2)
        partition = strong_bisimulation_partition(bloated)
        minimal = minimize_strong(bloated)
        # reachable blocks = states of the quotient
        assert minimal.num_states <= len(partition)

    def test_reduction_ratio(self):
        bloated = duplicated_chain(4, 3)
        minimal = minimize_strong(bloated)
        ratio = reduction_ratio(bloated, minimal)
        assert 0.0 < ratio < 1.0
        assert reduction_ratio(minimal, minimal) == 0.0


class TestMinimizeObservational:
    def test_tau_chains_collapse(self):
        process = from_transitions(
            [
                ("p", TAU, "p1"),
                ("p1", TAU, "p2"),
                ("p2", "a", "p3"),
            ],
            start="p",
            all_accepting=True,
        )
        minimal = minimize_observational(process)
        assert minimal.num_states <= 2
        assert observationally_equivalent_processes(process, minimal)

    def test_observational_quotient_preserves_weak_behaviour(self):
        process = from_transitions(
            [
                ("p", "coin", "p1"),
                ("p1", TAU, "p2"),
                ("p2", "tea", "p3"),
                ("p1", TAU, "p4"),
                ("p4", "tea", "p5"),
            ],
            start="p",
            all_accepting=True,
        )
        minimal = minimize_observational(process)
        assert minimal.num_states < process.num_states
        assert observationally_equivalent_processes(process, minimal)

    def test_already_minimal_untouched(self):
        process = from_transitions(
            [("p", "a", "q"), ("q", "b", "p")], start="p", all_accepting=True
        )
        assert minimize_observational(process).num_states == 2
