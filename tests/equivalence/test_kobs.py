"""Tests for the approximation chains approx_k and simeq_k (Definitions 2.2.1/2.2.2)."""

from __future__ import annotations

import pytest

from repro.core.fsp import TAU, from_transitions
from repro.core.paper_figures import fig2_language_pair
from repro.equivalence.kobs import (
    k_limited_equivalent,
    k_limited_partition,
    k_observational_equivalent,
    k_observational_equivalent_processes,
    k_observational_partition,
    limited_observational_partition,
    separation_level,
)
from repro.equivalence.language import language_equivalent_processes
from repro.equivalence.observational import observational_partition


class TestLevelZero:
    def test_level_zero_groups_by_extension(self, branching_process):
        for partition_fn in (k_limited_partition, k_observational_partition):
            partition = partition_fn(branching_process, 0)
            assert partition.same_block("s", "l")
            assert not partition.same_block("s", "t")

    def test_negative_k_rejected(self, branching_process):
        with pytest.raises(ValueError):
            k_limited_partition(branching_process, -1)
        with pytest.raises(ValueError):
            k_observational_partition(branching_process, -1)


class TestChainsAreMonotone:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_each_level_refines_the_previous(self, k):
        process, other = fig2_language_pair()
        combined = process.disjoint_union(other)
        coarser = k_limited_partition(combined, k)
        finer = k_limited_partition(combined, k + 1)
        assert finer.refines(coarser)

    def test_approx_refines_simeq_levelwise(self):
        """approx_k is at least as fine as simeq_k (strings versus single actions)."""
        process, other = fig2_language_pair()
        combined = process.disjoint_union(other)
        for k in range(3):
            approx = k_observational_partition(combined, k)
            simeq = k_limited_partition(combined, k)
            assert approx.refines(simeq)


class TestKnownSeparations:
    def test_fig2_pair_is_approx1_but_not_approx2(self):
        first, second = fig2_language_pair()
        assert k_observational_equivalent_processes(first, second, 1)
        assert not k_observational_equivalent_processes(first, second, 2)

    def test_approx1_is_language_equivalence_on_restricted(self):
        first, second = fig2_language_pair()
        assert language_equivalent_processes(first, second) == k_observational_equivalent_processes(
            first, second, 1
        )
        longer = from_transitions(
            [("p", "a", "p1"), ("p1", "a", "p2"), ("p2", "a", "p3")],
            start="p",
            all_accepting=True,
        )
        shorter = from_transitions(
            [("q", "a", "q1"), ("q1", "a", "q2")], start="q", all_accepting=True
        )
        assert not language_equivalent_processes(longer, shorter)
        assert not k_observational_equivalent_processes(longer, shorter, 1)

    def test_simeq1_versus_approx1(self):
        """simeq_1 only looks one action deep, so it cannot see a length difference at depth 2."""
        longer = from_transitions(
            [("p", "a", "p1"), ("p1", "a", "p2"), ("p2", "a", "p3")],
            start="p",
            all_accepting=True,
        )
        shorter = from_transitions(
            [("q", "a", "q1"), ("q1", "a", "q2")], start="q", all_accepting=True
        )
        combined = longer.disjoint_union(shorter)
        assert k_limited_equivalent(combined, "L:p", "R:q", 1)
        assert not k_observational_equivalent(combined, "L:p", "R:q", 1)


class TestLimits:
    def test_limited_partition_fixed_point_equals_observational(self, tau_process):
        assert limited_observational_partition(tau_process) == observational_partition(tau_process)

    def test_chain_stabilises_within_state_count(self):
        process = from_transitions(
            [("p", "a", "p1"), ("p1", "a", "p2"), ("q", "a", "q1")],
            start="p",
            all_accepting=True,
        )
        n = len(process.states)
        assert k_limited_partition(process, n) == k_limited_partition(process, n + 3)


class TestSeparationLevel:
    def test_separation_level_none_for_equivalent_states(self, tau_process):
        assert separation_level(tau_process, "s", "m") is None

    def test_separation_level_zero_for_extension_difference(self, branching_process):
        assert separation_level(branching_process, "s", "t") == 0

    def test_separation_level_of_fig2_pair_is_two(self):
        first, second = fig2_language_pair()
        combined = first.disjoint_union(second)
        assert separation_level(combined, "L:" + first.start, "R:" + second.start) == 2

    def test_separation_level_depth_difference(self):
        process = from_transitions(
            [("p", "a", "p1"), ("p1", "a", "p2"), ("q", "a", "q1")],
            start="p",
            all_accepting=True,
        )
        # p can do "aa", q cannot: already an approx_1 (language) difference
        assert separation_level(process, "p", "q") == 1


class TestTauInteraction:
    def test_weak_derivatives_are_used(self):
        """tau.a.0 and a.0 agree at every level (they are observationally equivalent)."""
        direct = from_transitions([("p", "a", "p1")], start="p", all_accepting=True)
        delayed = from_transitions(
            [("q", TAU, "qm"), ("qm", "a", "q1")], start="q", all_accepting=True
        )
        for k in range(4):
            assert k_observational_equivalent_processes(direct, delayed, k)
