"""Tests for failure semantics and failure equivalence (Section 5)."""

from __future__ import annotations

import pytest

from repro.core.errors import ModelClassError, StateSpaceLimitError
from repro.core.fsp import TAU, from_transitions
from repro.core.paper_figures import fig2_failure_pair, fig2_language_pair
from repro.equivalence.failure import (
    failure_distinguishing_string,
    failure_equivalent,
    failure_equivalent_processes,
    failures_upto,
    maximal_refusals,
    refusal_sets,
    tree_failure_equivalent,
    tree_failure_signature,
)
from repro.generators.families import restricted_counter


class TestFailuresEnumeration:
    def test_requires_restricted_model(self, branching_process):
        with pytest.raises(ModelClassError):
            failures_upto(branching_process, "s", 2)

    def test_simple_chain_failures(self, simple_chain):
        failures = failures_upto(simple_chain, "c0", 3)
        # after the full chain everything is refused
        assert (("a", "a"), frozenset({"a"})) in failures
        # at the start nothing can be refused (an `a` is always available)
        assert ((), frozenset()) in failures
        assert ((), frozenset({"a"})) not in failures

    def test_refusal_sets_are_downward_closed(self):
        process = from_transitions(
            [("p", "a", "q")], start="p", all_accepting=True, alphabet={"a", "b", "c"}
        )
        refusals = refusal_sets(process, "p")
        assert frozenset({"b", "c"}) in refusals
        assert frozenset({"b"}) in refusals
        assert frozenset() in refusals
        assert frozenset({"a"}) not in refusals

    def test_maximal_refusals(self):
        process = from_transitions(
            [("p", "a", "q"), ("r", "b", "q")],
            start="p",
            all_accepting=True,
            alphabet={"a", "b"},
        )
        maxima = maximal_refusals(process, {"p", "r"})
        assert maxima == frozenset({frozenset({"b"}), frozenset({"a"})})
        # a derivative set containing a state that refuses nothing extra collapses
        maxima_single = maximal_refusals(process, {"q"})
        assert maxima_single == frozenset({frozenset({"a", "b"})})

    def test_tau_moves_do_not_appear_in_failures(self):
        process = from_transitions(
            [("p", TAU, "q"), ("q", "a", "r")], start="p", all_accepting=True
        )
        failures = failures_upto(process, "p", 2)
        assert ((), frozenset()) in failures
        assert all(TAU not in string for string, _z in failures)


class TestFailureEquivalence:
    def test_fig2_language_pair_is_not_failure_equivalent(self):
        first, second = fig2_language_pair()
        assert not failure_equivalent_processes(first, second)

    def test_fig2_failure_pair_is_failure_equivalent(self):
        first, second = fig2_failure_pair()
        assert failure_equivalent_processes(first, second)

    def test_distinguishing_string_for_language_pair(self):
        first, second = fig2_language_pair()
        combined = first.disjoint_union(second)
        witness = failure_distinguishing_string(combined, "L:p0", "R:q0")
        assert witness == ("a",)

    def test_distinguishing_string_none_when_equivalent(self):
        first, second = fig2_failure_pair()
        combined = first.disjoint_union(second)
        assert failure_distinguishing_string(combined, "L:p0", "R:q0") is None

    def test_language_difference_is_a_failure_difference(self):
        longer = from_transitions(
            [("p", "a", "p1"), ("p1", "a", "p2")], start="p", all_accepting=True
        )
        shorter = from_transitions([("q", "a", "q1")], start="q", all_accepting=True)
        assert not failure_equivalent_processes(longer, shorter)

    def test_reflexive_and_symmetric(self, simple_chain):
        assert failure_equivalent(simple_chain, "c0", "c0")
        other = from_transitions(
            [("d0", "a", "d1"), ("d1", "a", "d2")], start="d0", all_accepting=True
        )
        assert failure_equivalent_processes(simple_chain, other)
        assert failure_equivalent_processes(other, simple_chain)

    def test_requires_restricted(self, branching_process):
        with pytest.raises(ModelClassError):
            failure_equivalent(branching_process, "s", "t")

    def test_macro_state_budget(self):
        process = restricted_counter(10)
        bigger = restricted_counter(10).rename_states(prefix="o")
        combined = process.disjoint_union(bigger)
        with pytest.raises(StateSpaceLimitError):
            failure_distinguishing_string(combined, "L:g", "R:og", max_macro_states=4)

    def test_tau_sensitivity(self):
        """Internal choice before refusing shows up in failures: a + b  vs  tau.a + tau.b."""
        external = from_transitions(
            [("p", "a", "p1"), ("p", "b", "p2")], start="p", all_accepting=True
        )
        internal = from_transitions(
            [("q", TAU, "qa"), ("q", TAU, "qb"), ("qa", "a", "q1"), ("qb", "b", "q2")],
            start="q",
            all_accepting=True,
        )
        assert not failure_equivalent_processes(external, internal)


class TestFiniteTreeFastPath:
    def test_tree_signature_requires_tree(self, simple_chain):
        looped = from_transitions([("p", "a", "p")], start="p", all_accepting=True)
        with pytest.raises(ModelClassError):
            tree_failure_signature(looped)

    def test_tree_equivalence_agrees_with_general_checker(self):
        first = from_transitions(
            [("r", "a", "x"), ("r", "a", "y"), ("x", "b", "z")],
            start="r",
            all_accepting=True,
            alphabet={"a", "b"},
        )
        second = from_transitions(
            [("s", "a", "u"), ("s", "a", "v"), ("u", "b", "w")],
            start="s",
            all_accepting=True,
            alphabet={"a", "b"},
        )
        third = from_transitions(
            [("t", "a", "m"), ("m", "b", "n")],
            start="t",
            all_accepting=True,
            alphabet={"a", "b"},
        )
        assert tree_failure_equivalent(first, second)
        assert failure_equivalent_processes(first, second)
        assert not tree_failure_equivalent(first, third)
        assert not failure_equivalent_processes(first, third)

    def test_signature_content(self):
        tree = from_transitions(
            [("r", "a", "x")], start="r", all_accepting=True, alphabet={"a", "b"}
        )
        signature = tree_failure_signature(tree)
        assert ((), frozenset({"b"})) in signature
        assert (("a",), frozenset({"a", "b"})) in signature
