"""Tests for explicit bisimulation relations and the fixed-point checks."""

from __future__ import annotations

from repro.core.fsp import TAU, from_transitions
from repro.equivalence.relations import (
    is_strong_bisimulation,
    is_weak_bisimulation,
    largest_strong_bisimulation,
    largest_weak_bisimulation,
    partition_from_relation,
    reflexive_closure,
    relation_from_partition,
    symmetric_closure,
)
from repro.equivalence.observational import observational_partition
from repro.equivalence.strong import strong_bisimulation_partition
from repro.partition.partition import Partition


class TestClosures:
    def test_symmetric_closure(self):
        assert symmetric_closure([("a", "b")]) == frozenset({("a", "b"), ("b", "a")})

    def test_reflexive_closure(self):
        closed = reflexive_closure([("a", "b")], ["a", "b", "c"])
        assert ("c", "c") in closed and ("a", "b") in closed

    def test_relation_partition_round_trip(self):
        partition = Partition([["a", "b"], ["c"]])
        relation = relation_from_partition(partition)
        assert ("a", "b") in relation and ("a", "c") not in relation
        assert partition_from_relation(["a", "b", "c"], relation) == partition

    def test_partition_from_relation_closes_transitively(self):
        result = partition_from_relation(["a", "b", "c"], [("a", "b"), ("b", "c")])
        assert result.same_block("a", "c")


class TestStrongBisimulationCheck:
    def test_identity_is_always_a_bisimulation(self, branching_process):
        identity = [(state, state) for state in branching_process.states]
        assert is_strong_bisimulation(branching_process, identity)

    def test_partition_relation_is_a_bisimulation(self, branching_process):
        partition = strong_bisimulation_partition(branching_process)
        assert is_strong_bisimulation(branching_process, relation_from_partition(partition))

    def test_relating_inequivalent_states_fails(self, branching_process):
        assert not is_strong_bisimulation(branching_process, [("l", "r")])

    def test_relating_states_with_different_extensions_fails(self, branching_process):
        assert not is_strong_bisimulation(branching_process, [("s", "t")])

    def test_largest_strong_bisimulation_contains_partition(self, branching_process):
        relation = largest_strong_bisimulation(branching_process)
        assert ("l", "l") in relation
        assert ("l", "r") not in relation

    def test_tau_as_action_flag(self):
        process = from_transitions(
            [("p", TAU, "p1"), ("p1", "a", "dead")],
            start="p",
            all_accepting=True,
            alphabet={"a"},
        )
        # With tau treated as a label, p (which has a tau-move) cannot be
        # related to the dead state; ignoring tau, the pair is fine because
        # neither has any observable single-step move.
        assert not is_strong_bisimulation(process, [("p", "dead")], tau_as_action=True)
        assert is_strong_bisimulation(process, [("p", "dead")], tau_as_action=False)


class TestWeakBisimulationCheck:
    def test_weak_relation_accepts_tau_absorption(self):
        process = from_transitions(
            [("p", "a", "p1"), ("q", TAU, "qm"), ("qm", "a", "q1")],
            start="p",
            all_accepting=True,
        )
        relation = reflexive_closure(
            [("p", "q"), ("p", "qm"), ("p1", "q1"), ("q", "qm")], process.states
        )
        assert is_weak_bisimulation(process, relation)
        # the same relation is not a *strong* bisimulation
        assert not is_strong_bisimulation(process, relation)

    def test_weak_relation_rejects_real_differences(self):
        process = from_transitions(
            [("p", "a", "p1"), ("q", "b", "q1")], start="p", all_accepting=True
        )
        assert not is_weak_bisimulation(process, [("p", "q")])

    def test_largest_weak_bisimulation_matches_partition(self, tau_process):
        relation = largest_weak_bisimulation(tau_process)
        partition = observational_partition(tau_process)
        for first, second in relation:
            assert partition.same_block(first, second)
        assert is_weak_bisimulation(tau_process, relation)
