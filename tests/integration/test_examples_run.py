"""Smoke tests: every example script runs to completion and prints the expected headline facts."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
        check=True,
    )
    return result.stdout


@pytest.mark.slow
def test_quickstart_output():
    output = run_example("quickstart.py")
    assert "language equivalent (approx_1): True" in output
    assert "observationally equivalent:     False" in output
    assert "approx_2" in output


@pytest.mark.slow
def test_equivalence_spectrum_output():
    output = run_example("equivalence_spectrum.py")
    assert "pair A: same language, different failures" in output
    assert "separating_pair(3)" in output


@pytest.mark.slow
def test_protocol_verification_output():
    output = run_example("protocol_verification.py")
    assert "observationally equivalent: True" in output
    assert "mutual-exclusion violations found: 0" in output


@pytest.mark.slow
def test_star_expressions_demo_output():
    output = run_example("star_expressions_demo.py")
    assert "right distributivity" in output
    assert "False" in output


@pytest.mark.slow
def test_minimization_pipeline_output():
    output = run_example("minimization_pipeline.py")
    assert "observational quotient" in output
    assert "paige-tarjan" in output


@pytest.mark.slow
def test_dining_philosophers_output():
    output = run_example("dining_philosophers.py")
    assert "reachable deadlocks: 1" in output
    assert "routes agree: True" in output
    assert "equivalent=False" in output


@pytest.mark.slow
def test_two_phase_commit_output():
    output = run_example("two_phase_commit.py")
    assert "conforms to spec: True" in output
    assert "mutant caught: equivalent=False" in output
    assert "coordinator crash: deadlock" in output
    assert "declared tolerance f=0 confirmed: True" in output
