"""Tests for the command-line interface (``python -m repro``)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import EXIT_ERROR, EXIT_INEQUIVALENT, load_process, main
from repro.core.fsp import from_transitions
from repro.core.paper_figures import fig2_language_pair
from repro.utils import serialization


@pytest.fixture
def stored_pair(tmp_path: Path) -> tuple[str, str]:
    first, second = fig2_language_pair()
    first_path = tmp_path / "first.json"
    second_path = tmp_path / "second.json"
    serialization.dump(first, first_path)
    serialization.dump(second, second_path)
    return str(first_path), str(second_path)


class TestClassify:
    def test_classify_lists_model_classes(self, stored_pair, capsys):
        first, _second = stored_pair
        assert main(["classify", first]) == 0
        output = capsys.readouterr().out
        assert "restricted observable unary" in output
        assert "3 states" in output

    def test_classify_missing_file(self, tmp_path, capsys):
        assert main(["classify", str(tmp_path / "missing.json")]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err


class TestCheck:
    def test_language_equivalence_exit_zero(self, stored_pair, capsys):
        first, second = stored_pair
        assert main(["check", first, second, "--notion", "language"]) == 0
        assert "are equivalent" in capsys.readouterr().out

    def test_observational_inequivalence_exit_one(self, stored_pair, capsys):
        first, second = stored_pair
        assert main(["check", first, second, "--notion", "observational"]) == EXIT_INEQUIVALENT
        assert "NOT equivalent" in capsys.readouterr().out

    def test_k_observational_uses_level(self, stored_pair):
        first, second = stored_pair
        assert main(["check", first, second, "--notion", "k-observational", "--k", "1"]) == 0
        assert (
            main(["check", first, second, "--notion", "k-observational", "--k", "2"])
            == EXIT_INEQUIVALENT
        )

    def test_failure_and_strong_notions(self, stored_pair):
        first, second = stored_pair
        assert main(["check", first, second, "--notion", "failure"]) == EXIT_INEQUIVALENT
        assert main(["check", first, first, "--notion", "strong"]) == 0


class TestMinimizeAndConvert:
    def test_minimize_writes_smaller_process(self, tmp_path, capsys):
        bloated = from_transitions(
            [("p", "a", "x"), ("p", "a", "y"), ("x", "a", "z"), ("y", "a", "z")],
            start="p",
            all_accepting=True,
        )
        source = tmp_path / "bloated.json"
        target = tmp_path / "minimal.json"
        serialization.dump(bloated, source)
        assert main(["minimize", str(source), str(target), "--notion", "strong"]) == 0
        minimal = load_process(target)
        assert minimal.num_states < bloated.num_states
        assert "minimised" in capsys.readouterr().out

    def test_convert_json_to_aut_and_back(self, tmp_path, stored_pair):
        first, _second = stored_pair
        aut_path = tmp_path / "copy.aut"
        assert main(["convert", first, str(aut_path)]) == 0
        reloaded = load_process(aut_path)
        assert reloaded.num_states == load_process(first).num_states

    def test_convert_to_dot(self, tmp_path, stored_pair):
        first, _second = stored_pair
        dot_path = tmp_path / "graph.dot"
        assert main(["convert", first, str(dot_path)]) == 0
        assert dot_path.read_text().startswith("digraph")


class TestExpressionsAndCcs:
    def test_expr_strong_inequivalence(self, capsys):
        assert main(["expr", "a.(b + c)", "a.b + a.c"]) == EXIT_INEQUIVALENT
        assert main(["expr", "a.(b + c)", "a.b + a.c", "--notion", "language"]) == 0

    def test_expr_parse_error(self, capsys):
        assert main(["expr", "a + ", "a"]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_ccs_compile_and_store(self, tmp_path, capsys):
        output = tmp_path / "term.json"
        definitions = tmp_path / "defs.ccs"
        definitions.write_text("P := a.b.P\n", encoding="utf-8")
        code = main(["ccs", "P", "--definitions", str(definitions), "--output", str(output)])
        assert code == 0
        compiled = load_process(output)
        assert compiled.num_states == 2
        assert "compiled" in capsys.readouterr().out

    def test_ccs_state_bound(self, capsys):
        """Exceeding --max-states is reported as an input error, not a silent truncation."""
        assert main(["ccs", "a.0", "--max-states", "1"]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_malformed_json_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "broken.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["classify", str(bad)]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err
