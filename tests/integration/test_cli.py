"""Tests for the command-line interface (``python -m repro``)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import __version__
from repro.cli import EXIT_ERROR, EXIT_INEQUIVALENT, load_process, main
from repro.core.fsp import from_transitions
from repro.core.paper_figures import fig2_language_pair
from repro.utils import serialization


@pytest.fixture
def stored_pair(tmp_path: Path) -> tuple[str, str]:
    first, second = fig2_language_pair()
    first_path = tmp_path / "first.json"
    second_path = tmp_path / "second.json"
    serialization.dump(first, first_path)
    serialization.dump(second, second_path)
    return str(first_path), str(second_path)


class TestClassify:
    def test_classify_lists_model_classes(self, stored_pair, capsys):
        first, _second = stored_pair
        assert main(["classify", first]) == 0
        output = capsys.readouterr().out
        assert "restricted observable unary" in output
        assert "3 states" in output

    def test_classify_missing_file(self, tmp_path, capsys):
        assert main(["classify", str(tmp_path / "missing.json")]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err


class TestCheck:
    def test_language_equivalence_exit_zero(self, stored_pair, capsys):
        first, second = stored_pair
        assert main(["check", first, second, "--notion", "language"]) == 0
        assert "are equivalent" in capsys.readouterr().out

    def test_observational_inequivalence_exit_one(self, stored_pair, capsys):
        first, second = stored_pair
        assert main(["check", first, second, "--notion", "observational"]) == EXIT_INEQUIVALENT
        assert "NOT equivalent" in capsys.readouterr().out

    def test_k_observational_uses_level(self, stored_pair):
        first, second = stored_pair
        assert main(["check", first, second, "--notion", "k-observational", "--k", "1"]) == 0
        assert (
            main(["check", first, second, "--notion", "k-observational", "--k", "2"])
            == EXIT_INEQUIVALENT
        )

    def test_failure_and_strong_notions(self, stored_pair):
        first, second = stored_pair
        assert main(["check", first, second, "--notion", "failure"]) == EXIT_INEQUIVALENT
        assert main(["check", first, first, "--notion", "strong"]) == 0


class TestMinimizeAndConvert:
    def test_minimize_writes_smaller_process(self, tmp_path, capsys):
        bloated = from_transitions(
            [("p", "a", "x"), ("p", "a", "y"), ("x", "a", "z"), ("y", "a", "z")],
            start="p",
            all_accepting=True,
        )
        source = tmp_path / "bloated.json"
        target = tmp_path / "minimal.json"
        serialization.dump(bloated, source)
        assert main(["minimize", str(source), str(target), "--notion", "strong"]) == 0
        minimal = load_process(target)
        assert minimal.num_states < bloated.num_states
        assert "minimised" in capsys.readouterr().out

    def test_convert_json_to_aut_and_back(self, tmp_path, stored_pair):
        first, _second = stored_pair
        aut_path = tmp_path / "copy.aut"
        assert main(["convert", first, str(aut_path)]) == 0
        reloaded = load_process(aut_path)
        assert reloaded.num_states == load_process(first).num_states

    def test_convert_to_dot(self, tmp_path, stored_pair):
        first, _second = stored_pair
        dot_path = tmp_path / "graph.dot"
        assert main(["convert", first, str(dot_path)]) == 0
        assert dot_path.read_text().startswith("digraph")


class TestExpressionsAndCcs:
    def test_expr_strong_inequivalence(self, capsys):
        assert main(["expr", "a.(b + c)", "a.b + a.c"]) == EXIT_INEQUIVALENT
        assert main(["expr", "a.(b + c)", "a.b + a.c", "--notion", "language"]) == 0

    def test_expr_parse_error(self, capsys):
        assert main(["expr", "a + ", "a"]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_ccs_compile_and_store(self, tmp_path, capsys):
        output = tmp_path / "term.json"
        definitions = tmp_path / "defs.ccs"
        definitions.write_text("P := a.b.P\n", encoding="utf-8")
        code = main(["ccs", "P", "--definitions", str(definitions), "--output", str(output)])
        assert code == 0
        compiled = load_process(output)
        assert compiled.num_states == 2
        assert "compiled" in capsys.readouterr().out

    def test_ccs_state_bound(self, capsys):
        """Exceeding --max-states is reported as an input error, not a silent truncation."""
        assert main(["ccs", "a.0", "--max-states", "1"]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_malformed_json_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "broken.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["classify", str(bad)]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err


class TestVersion:
    def test_version_flag_prints_the_library_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestFileFormatContract:
    """Unknown extensions are rejected with the supported-format list (exit 2)."""

    def test_unknown_extension_is_rejected_on_load(self, tmp_path, capsys):
        weird = tmp_path / "process.xml"
        weird.write_text("<not-a-process/>", encoding="utf-8")
        assert main(["classify", str(weird)]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert "unsupported extension" in err
        assert ".json" in err and ".aut" in err

    def test_extensionless_file_is_rejected(self, tmp_path, capsys):
        first, _ = fig2_language_pair()
        bare = tmp_path / "process"
        serialization.dump(first, bare)
        assert main(["classify", str(bare)]) == EXIT_ERROR
        assert "unsupported extension" in capsys.readouterr().err

    def test_dot_is_write_only(self, tmp_path, stored_pair, capsys):
        first, _second = stored_pair
        dot_path = tmp_path / "graph.dot"
        assert main(["convert", first, str(dot_path)]) == 0
        assert main(["classify", str(dot_path)]) == EXIT_ERROR
        assert "write-only" in capsys.readouterr().err

    def test_unknown_output_extension_is_rejected(self, tmp_path, stored_pair, capsys):
        first, _second = stored_pair
        assert main(["convert", first, str(tmp_path / "copy.xml")]) == EXIT_ERROR
        assert "unsupported extension" in capsys.readouterr().err


class TestExitCodeContract:
    """The documented 0 / 1 / 2 contract across commands."""

    def test_check_contract(self, stored_pair):
        first, second = stored_pair
        assert main(["check", first, first, "--notion", "strong"]) == 0
        assert main(["check", first, second, "--notion", "observational"]) == EXIT_INEQUIVALENT
        assert main(["check", first, str(Path(first).parent / "missing.json")]) == EXIT_ERROR

    def test_expr_contract(self):
        assert main(["expr", "a + b", "b + a"]) == 0
        assert main(["expr", "a.(b + c)", "a.b + a.c"]) == EXIT_INEQUIVALENT
        assert main(["expr", "a + ", "a"]) == EXIT_ERROR

    def test_unknown_notion_is_a_usage_error(self, stored_pair):
        first, second = stored_pair
        with pytest.raises(SystemExit) as excinfo:
            main(["check", first, second, "--notion", "telepathic"])
        assert excinfo.value.code == EXIT_ERROR

    def test_explain_prints_a_witness(self, stored_pair, capsys):
        first, second = stored_pair
        code = main(["check", first, second, "--notion", "observational", "--explain", "--stats"])
        assert code == EXIT_INEQUIVALENT
        out = capsys.readouterr().out
        assert "witness:" in out
        assert "stats:" in out


class TestConvertRoundTrip:
    def test_json_aut_json_round_trip_preserves_behaviour(self, tmp_path):
        """.aut renames states to integers but keeps structure and acceptance."""
        from repro.equivalence.strong import strongly_equivalent_processes

        original = from_transitions(
            [("p", "a", "q"), ("q", "b", "p"), ("q", "a", "q")],
            start="p",
            accepting=["q"],
        )
        source = tmp_path / "orig.json"
        via_aut = tmp_path / "copy.aut"
        back = tmp_path / "back.json"
        serialization.dump(original, source)
        assert main(["convert", str(source), str(via_aut)]) == 0
        assert main(["convert", str(via_aut), str(back)]) == 0
        reloaded = load_process(back)
        assert reloaded.num_states == original.num_states
        assert reloaded.num_transitions == original.num_transitions
        assert len(reloaded.accepting_states()) == len(original.accepting_states())
        assert strongly_equivalent_processes(original, reloaded)

    def test_json_to_dot_renders_all_transitions(self, tmp_path):
        original = from_transitions(
            [("p", "a", "q"), ("q", "b", "p")], start="p", all_accepting=True
        )
        source = tmp_path / "orig.json"
        dot_path = tmp_path / "graph.dot"
        serialization.dump(original, source)
        assert main(["convert", str(source), str(dot_path)]) == 0
        rendered = dot_path.read_text(encoding="utf-8")
        assert rendered.startswith("digraph")
        assert rendered.count("->") >= original.num_transitions


class TestBatch:
    @pytest.fixture
    def manifest(self, tmp_path, stored_pair):
        first, second = stored_pair
        checks = [
            {"left": Path(first).name, "right": Path(second).name, "notion": "language"},
            {"left": Path(first).name, "right": Path(second).name, "notion": "observational"},
            {"left": Path(first).name, "right": Path(first).name},
        ]
        path = Path(first).parent / "manifest.json"
        path.write_text(json.dumps({"checks": checks}), encoding="utf-8")
        return path

    def test_batch_reports_every_check_and_exit_one_on_any_inequivalence(self, manifest, capsys):
        assert main(["batch", str(manifest)]) == EXIT_INEQUIVALENT
        out = capsys.readouterr().out
        assert out.count("equivalent") >= 3
        assert "batch: 3 checks" in out

    def test_batch_all_equivalent_exits_zero(self, tmp_path, stored_pair, capsys):
        first, _second = stored_pair
        path = tmp_path / "ok.json"
        path.write_text(
            json.dumps([{"left": first, "right": first, "notion": "strong"}]),
            encoding="utf-8",
        )
        assert main(["batch", str(path)]) == 0
        assert "1 equivalent" in capsys.readouterr().out

    def test_batch_writes_structured_results(self, manifest, tmp_path, capsys):
        output = tmp_path / "results.json"
        main(["batch", str(manifest), "--output", str(output)])
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert payload["summary"]["checks"] == 3
        assert [row["notion"] for row in payload["results"]] == [
            "language",
            "observational",
            "observational",
        ]
        assert all("seconds" in row for row in payload["results"])

    def test_unknown_notion_parameter_is_an_input_error(self, tmp_path, stored_pair, capsys):
        first, _second = stored_pair
        bad = tmp_path / "bad-param.json"
        bad.write_text(
            json.dumps([{"left": first, "right": first, "notion": "strong", "depth": 3}]),
            encoding="utf-8",
        )
        assert main(["batch", str(bad)]) == EXIT_ERROR
        assert "does not accept" in capsys.readouterr().err

    def test_malformed_manifest_is_an_input_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"checks": [{"left": "only.json"}]}), encoding="utf-8")
        assert main(["batch", str(bad)]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_non_list_manifest_is_an_input_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"not": "a manifest"}), encoding="utf-8")
        assert main(["batch", str(bad)]) == EXIT_ERROR
        assert "manifest" in capsys.readouterr().err


class TestOnTheFlyFlag:
    def test_check_on_the_fly_agrees_with_the_eager_route(self, stored_pair, capsys):
        first, second = stored_pair
        assert (
            main(["check", first, second, "--notion", "observational", "--on-the-fly"])
            == EXIT_INEQUIVALENT
        )
        assert main(["check", first, first, "--notion", "strong", "--on-the-fly"]) == 0

    def test_stats_report_pairs_visited(self, stored_pair, capsys):
        first, _second = stored_pair
        assert main(["check", first, first, "--on-the-fly", "--stats"]) == 0
        assert "product pairs visited" in capsys.readouterr().out

    def test_unsupported_notion_is_a_usage_error(self, stored_pair, capsys):
        first, second = stored_pair
        assert main(["check", first, second, "--notion", "language", "--on-the-fly"]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err


class TestExplore:
    @pytest.fixture
    def ring_pair(self, tmp_path: Path) -> tuple[str, str]:
        from repro.explore import spec_to_document
        from repro.generators.families import token_ring_pair

        ok, bad = token_ring_pair(4)
        ok_path = tmp_path / "ring_ok.json"
        bad_path = tmp_path / "ring_bad.json"
        ok_path.write_text(json.dumps(spec_to_document(ok)), encoding="utf-8")
        bad_path.write_text(json.dumps(spec_to_document(bad)), encoding="utf-8")
        return str(ok_path), str(bad_path)

    def test_stats_counts_without_materialising(self, ring_pair, capsys):
        ok, _bad = ring_pair
        assert main(["explore", "stats", ok]) == 0
        output = capsys.readouterr().out
        assert "reachable: exactly" in output and "states" in output

    def test_stats_limit_reports_a_lower_bound(self, ring_pair, capsys):
        ok, _bad = ring_pair
        assert main(["explore", "stats", ok, "--limit", "2"]) == 0
        assert "at least 2 states" in capsys.readouterr().out

    def test_check_finds_the_fault_with_a_witness(self, ring_pair, capsys):
        ok, bad = ring_pair
        assert main(["explore", "check", ok, bad, "--explain", "--stats"]) == EXIT_INEQUIVALENT
        output = capsys.readouterr().out
        assert "NOT equivalent" in output and "fault1" in output
        assert "product pairs visited" in output

    def test_check_equivalent_systems_exit_zero(self, ring_pair):
        ok, _bad = ring_pair
        assert main(["explore", "check", ok, ok, "--notion", "strong"]) == 0

    def test_materialize_writes_a_loadable_process(self, ring_pair, tmp_path, capsys):
        ok, _bad = ring_pair
        out = tmp_path / "ring.json"
        assert main(["explore", "materialize", ok, str(out)]) == 0
        assert load_process(out).num_states == 8

    def test_materialize_limit_is_enforced(self, ring_pair, tmp_path, capsys):
        ok, _bad = ring_pair
        out = tmp_path / "ring.json"
        assert main(["explore", "materialize", ok, str(out), "--limit", "2"]) == EXIT_ERROR
        assert "exceeded" in capsys.readouterr().err
        assert main(["explore", "materialize", ok, str(out), "--limit", "2", "--truncate"]) == 0
        assert load_process(out).num_states == 2

    def test_minimize_is_compositional(self, ring_pair, tmp_path, capsys):
        ok, _bad = ring_pair
        out = tmp_path / "ring_min.json"
        assert main(["explore", "minimize", ok, str(out)]) == 0
        assert "compositionally minimised" in capsys.readouterr().out
        assert load_process(out).num_states == 4

    def test_file_leaves_resolve_relative_to_the_document(self, stored_pair, tmp_path, capsys):
        first, _second = stored_pair
        system = tmp_path / "system.json"
        leaf = Path(first).name
        (tmp_path / leaf).write_text(Path(first).read_text(encoding="utf-8"), encoding="utf-8")
        system.write_text(
            json.dumps({"op": "interleave", "left": {"file": leaf}, "right": {"file": leaf}}),
            encoding="utf-8",
        )
        assert main(["explore", "stats", str(system)]) == 0
        assert "reachable" in capsys.readouterr().out

    def test_plain_process_files_are_leaves(self, stored_pair):
        first, second = stored_pair
        assert main(["explore", "check", first, second]) == EXIT_INEQUIVALENT

    def test_malformed_system_document_is_an_input_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"op": "tensor", "of": {}}), encoding="utf-8")
        assert main(["explore", "stats", str(bad)]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err


class TestProtocol:
    def test_check_library_scenario_by_name(self, capsys):
        assert main(["protocol", "check", "two_phase_commit", "--stats"]) == 0
        output = capsys.readouterr().out
        assert "equivalent to its spec" in output
        assert "product pairs visited" in output

    def test_check_mutant_side_exits_one_with_a_witness(self, tmp_path, capsys):
        scenario = tmp_path / "mutant.json"
        scenario.write_text(
            json.dumps({"name": "two_phase_commit", "n": 2, "side": "mutant"}),
            encoding="utf-8",
        )
        assert (
            main(["protocol", "check", str(scenario), "--explain"]) == EXIT_INEQUIVALENT
        )
        output = capsys.readouterr().out
        assert "NOT equivalent" in output and "defect0" in output

    def test_deadlock_search_finds_the_coordinator_crash(self, tmp_path, capsys):
        scenario = tmp_path / "crashed.json"
        scenario.write_text(
            json.dumps(
                {
                    "name": "two_phase_commit",
                    "n": 2,
                    "faults": [{"kind": "crash", "role": "coordinator", "index": 0}],
                }
            ),
            encoding="utf-8",
        )
        assert main(["protocol", "check", str(scenario), "--deadlock"]) == EXIT_INEQUIVALENT
        output = capsys.readouterr().out
        assert "deadlock at" in output and "trace:" in output

    def test_deadlock_search_on_a_healthy_scenario_exits_zero(self, capsys):
        assert main(["protocol", "check", "token_passing", "--deadlock"]) == 0
        assert "no deadlock or livelock" in capsys.readouterr().out

    def test_sweep_confirms_the_declared_tolerance(self, tmp_path, capsys):
        scenario = tmp_path / "qv.json"
        scenario.write_text(
            json.dumps({"name": "quorum_voting", "n": 3}), encoding="utf-8"
        )
        assert main(["protocol", "sweep", str(scenario)]) == 0
        output = capsys.readouterr().out
        assert "0 fault(s): equivalent" in output
        assert "2 fault(s): BROKEN" in output
        assert "tolerance confirmed" in output

    def test_instantiate_writes_an_explorable_system_document(self, tmp_path, capsys):
        out = tmp_path / "system.json"
        assert main(["protocol", "instantiate", "ring_election", str(out)]) == 0
        first = capsys.readouterr().out
        assert "reachable: exactly" in first
        reachable = next(
            line.strip() for line in first.splitlines() if "reachable:" in line
        )
        assert main(["explore", "stats", str(out)]) == 0
        assert reachable in capsys.readouterr().out

    def test_unknown_scenario_is_an_input_error(self, capsys):
        assert main(["protocol", "check", "three_phase_commit"]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err
