"""Integration tests exercising several subsystems together."""

from __future__ import annotations

from repro.ccs.parser import parse_definitions, parse_process
from repro.ccs.semantics import compile_to_fsp
from repro.equivalence.minimize import minimize_observational
from repro.equivalence.observational import observationally_equivalent_processes
from repro.equivalence.strong import strongly_equivalent_processes
from repro.expressions.parser import parse
from repro.expressions.semantics import representative_fsp
from repro.reductions.theorem41c import make_restricted
from repro.utils import aut_format, serialization


def test_ccs_term_versus_star_expression():
    """A sequential CCS term and the star expression with the same shape agree up to approx."""
    term = compile_to_fsp(parse_process("a.b.0 + a.c.0"))
    expression = representative_fsp(parse("a.b + a.c"), prune_unreachable=True)
    term_restricted = make_restricted(term)
    expression_restricted = make_restricted(expression)
    alphabet = term_restricted.alphabet | expression_restricted.alphabet
    assert observationally_equivalent_processes(
        term_restricted.with_alphabet(alphabet), expression_restricted.with_alphabet(alphabet)
    )


def test_minimise_serialise_reload_and_recheck():
    """Quotient a compiled CCS system, write it to both formats, reload, re-verify equivalence."""
    definitions = parse_definitions(
        """
        SPEC0 := left.SPEC1
        SPEC1 := left.SPEC2 + right!.SPEC0
        SPEC2 := right!.SPEC1
        CELL := left.mid!.CELL
        CELL2 := mid.right!.CELL2
        """
    )
    implementation = compile_to_fsp(parse_process("(CELL | CELL2) \\ {mid}"), definitions)
    specification = compile_to_fsp(parse_process("SPEC0"), definitions)
    minimal = minimize_observational(implementation)

    json_round_trip = serialization.loads(serialization.dumps(minimal))
    assert json_round_trip == minimal

    aut_round_trip = aut_format.loads(
        aut_format.dumps(minimal, accepting_label="ACCEPT"), accepting_label="ACCEPT"
    )
    assert aut_round_trip.num_states == minimal.num_states

    alphabet = implementation.alphabet | specification.alphabet
    assert observationally_equivalent_processes(
        minimal.with_alphabet(alphabet), specification.with_alphabet(alphabet)
    )


def test_spec_and_buggy_implementation_differ():
    """A one-cell 'implementation' must not pass for the two-place specification."""
    definitions = parse_definitions(
        """
        SPEC0 := inp.SPEC1
        SPEC1 := inp.SPEC2 + outp!.SPEC0
        SPEC2 := outp!.SPEC1
        CELL := inp.outp!.CELL
        """
    )
    spec = compile_to_fsp(parse_process("SPEC0"), definitions)
    buggy = compile_to_fsp(parse_process("CELL"), definitions)
    alphabet = spec.alphabet | buggy.alphabet
    assert not observationally_equivalent_processes(
        spec.with_alphabet(alphabet), buggy.with_alphabet(alphabet)
    )
    assert not strongly_equivalent_processes(
        spec.with_alphabet(alphabet), buggy.with_alphabet(alphabet)
    )
