"""Integration test: the full equivalence matrix on the Fig. 2 examples (experiment E3).

This test ties together the whole stack -- paper figures, every equivalence
checker, the separation-level machinery and the HML explanation layer -- and
asserts the exact pattern of agreements and disagreements that Appendix A /
Fig. 2 describe.
"""

from __future__ import annotations

from repro.core.paper_figures import fig2_failure_pair, fig2_language_pair
from repro.equivalence.failure import failure_equivalent_processes
from repro.equivalence.hml import distinguishing_formula, satisfies
from repro.equivalence.kobs import k_observational_equivalent_processes, separation_level
from repro.equivalence.language import language_equivalent_processes
from repro.equivalence.observational import observationally_equivalent_processes
from repro.equivalence.strong import strongly_equivalent_processes


def equivalence_row(first, second) -> dict[str, bool]:
    return {
        "language": language_equivalent_processes(first, second),
        "failure": failure_equivalent_processes(first, second),
        "observational": observationally_equivalent_processes(first, second),
        "strong": strongly_equivalent_processes(first, second),
        "approx_1": k_observational_equivalent_processes(first, second, 1),
        "approx_2": k_observational_equivalent_processes(first, second, 2),
    }


def test_language_pair_matrix():
    row = equivalence_row(*fig2_language_pair())
    assert row == {
        "language": True,
        "failure": False,
        "observational": False,
        "strong": False,
        "approx_1": True,
        "approx_2": False,
    }


def test_failure_pair_matrix():
    """Failure equivalence sits strictly between approx_1 and approx_2 (Section 1):
    this pair is failure equivalent and approx_1-equivalent yet already differs at approx_2."""
    row = equivalence_row(*fig2_failure_pair())
    assert row == {
        "language": True,
        "failure": True,
        "observational": False,
        "strong": False,
        "approx_1": True,
        "approx_2": False,
    }


def test_spectrum_is_ordered_as_in_proposition_223():
    """language >= failure >= observational, with both inclusions strict on these examples."""
    language_row = equivalence_row(*fig2_language_pair())
    failure_row = equivalence_row(*fig2_failure_pair())
    # approx implies failure implies language: whenever a finer one holds, the coarser must
    for row in (language_row, failure_row):
        if row["observational"]:
            assert row["failure"]
        if row["failure"]:
            assert row["language"]
    # strictness witnesses
    assert language_row["language"] and not language_row["failure"]
    assert failure_row["failure"] and not failure_row["observational"]


def test_separation_levels_and_distinguishing_formulas():
    first, second = fig2_language_pair()
    combined = first.disjoint_union(second)
    level = separation_level(combined, "L:" + first.start, "R:" + second.start)
    assert level == 2
    formula = distinguishing_formula(combined, "R:" + second.start, "L:" + first.start, weak=True)
    assert formula is not None
    assert satisfies(combined, "R:" + second.start, formula) != satisfies(
        combined, "L:" + first.start, formula
    )

    first2, second2 = fig2_failure_pair()
    combined2 = first2.disjoint_union(second2)
    level2 = separation_level(combined2, "L:" + first2.start, "R:" + second2.start)
    assert level2 is not None and level2 >= 2
