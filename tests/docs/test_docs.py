"""Documentation gates: doctests, intra-repo links, README/CLI sync.

These run in the tier-1 suite so documentation rot fails locally, and the
CI docs job runs the same checks standalone (``tools/check_links.py``,
``pytest --doctest-modules``).
"""

from __future__ import annotations

import doctest
import importlib.util
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]

#: The modules whose docstrings promise runnable examples (gated in CI with
#: ``pytest --doctest-modules`` over exactly this list).
DOCTEST_MODULES = (
    "repro.engine",
    "repro.core.lts",
    "repro.core.weak",
    "repro.explore",
    "repro.protocols",
)


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_module_doctests(module_name):
    module = __import__(module_name, fromlist=["__name__"])
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module_name} promises runnable examples but has none"
    assert results.failed == 0


def _load_check_links():
    spec = importlib.util.spec_from_file_location(
        "check_links", ROOT / "tools" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_links", module)
    spec.loader.exec_module(module)
    return module


def test_markdown_links_resolve():
    check_links = _load_check_links()
    files = [ROOT / "README.md"] + sorted((ROOT / "docs").rglob("*.md"))
    assert len(files) >= 4  # README + architecture + paper-map + service-protocol
    failures = check_links.broken_links(files, ROOT)
    assert not failures, "broken markdown links:\n" + "\n".join(failures)


def test_link_checker_catches_breakage(tmp_path):
    check_links = _load_check_links()
    markdown = tmp_path / "doc.md"
    markdown.write_text(
        "[good](real.md)\n[bad](missing.md)\n[web](https://example.com/x)\n",
        encoding="utf-8",
    )
    (tmp_path / "real.md").write_text("ok\n", encoding="utf-8")
    failures = check_links.broken_links([markdown], tmp_path)
    assert len(failures) == 1 and "missing.md" in failures[0]


def test_link_checker_validates_heading_anchors(tmp_path):
    check_links = _load_check_links()
    markdown = tmp_path / "doc.md"
    markdown.write_text(
        "# Operating the Service\n\n"
        "[good](#operating-the-service)\n[bad](#no-such-heading)\n"
        "[good](other.md#real-one)\n[bad](other.md#fake-one)\n"
        "[ignored](script.py#L12)\n",
        encoding="utf-8",
    )
    (tmp_path / "other.md").write_text("## Real One\n", encoding="utf-8")
    (tmp_path / "script.py").write_text("pass\n", encoding="utf-8")
    failures = check_links.broken_links([markdown], tmp_path)
    assert len(failures) == 2
    assert any("#no-such-heading" in failure for failure in failures)
    assert any("other.md#fake-one" in failure for failure in failures)


def test_paper_map_names_module_and_test_for_every_result():
    """Every theorem/lemma row of docs/paper-map.md links code *and* a test."""
    text = (ROOT / "docs" / "paper-map.md").read_text(encoding="utf-8")
    for required in (
        "Theorem 4.1(a)",
        "Theorem 4.1(b)",
        "Theorem 4.1(c)",
        "Lemma 4.2",
        "Theorem 5.1",
        "Lemma 3.1",
    ):
        row = next((line for line in text.splitlines() if line.startswith(f"| {required}")), None)
        assert row is not None, f"paper-map.md has no table row for {required}"
        assert "src/repro/" in row, f"{required} row names no implementation module"
        assert "tests/" in row, f"{required} row names no test"


def test_readme_lists_every_cli_command():
    """The README command table stays in sync with the argparse tree."""
    from repro.cli import build_parser

    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    parser = build_parser()
    subparsers = next(
        action for action in parser._actions if hasattr(action, "choices") and action.choices
    )
    for command in subparsers.choices:
        assert f"`{command}`" in readme or f"`{command} " in readme, (
            f"CLI command {command!r} is missing from README.md -- regenerate the "
            "command table from `python -m repro --help`"
        )


def test_readme_links_docs_suite():
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    for target in (
        "docs/architecture.md",
        "docs/paper-map.md",
        "docs/service-protocol.md",
        "docs/protocols.md",
    ):
        assert target in readme, f"README.md does not cross-link {target}"
