"""Tests for star-expression syntax and the parser."""

from __future__ import annotations

import pytest

from repro.core.errors import ExpressionError
from repro.expressions.parser import parse
from repro.expressions.syntax import (
    ActionExpr,
    ConcatExpr,
    EmptyExpr,
    StarExpr,
    UnionExpr,
    actions_of,
    length_of,
    subexpressions,
)


class TestAst:
    def test_operator_sugar(self):
        a, b = ActionExpr("a"), ActionExpr("b")
        expression = (a | b) >> a.star()
        assert isinstance(expression, ConcatExpr)
        assert isinstance(expression.left, UnionExpr)
        assert isinstance(expression.right, StarExpr)

    def test_invalid_action_names(self):
        with pytest.raises(ExpressionError):
            ActionExpr("")
        with pytest.raises(ExpressionError):
            ActionExpr("a b")
        with pytest.raises(ExpressionError):
            ActionExpr("0")

    def test_actions_of(self):
        expression = parse("a.(b + c)* + 0")
        assert actions_of(expression) == frozenset({"a", "b", "c"})
        assert actions_of(EmptyExpr()) == frozenset()

    def test_length_of_counts_symbols(self):
        assert length_of(parse("a")) == 1
        assert length_of(parse("a + b")) == 3
        assert length_of(parse("(a.b)*")) == 4
        assert length_of(EmptyExpr()) == 1

    def test_subexpressions_postorder(self):
        expression = parse("a.b")
        subs = subexpressions(expression)
        assert subs[-1] is expression
        assert len(subs) == 3

    def test_str_round_trip_parses(self):
        expression = parse("a.(b + c)* + 0.a")
        again = parse(str(expression))
        assert str(again) == str(expression)


class TestParser:
    def test_empty_expression(self):
        assert isinstance(parse("0"), EmptyExpr)

    def test_single_action(self):
        expression = parse("a")
        assert isinstance(expression, ActionExpr) and expression.action == "a"

    def test_multi_character_actions(self):
        expression = parse("coin.tea")
        assert isinstance(expression, ConcatExpr)
        assert expression.left == ActionExpr("coin")

    def test_union_variants(self):
        assert parse("a + b") == parse("a | b")

    def test_precedence_star_tightest(self):
        expression = parse("a.b*")
        assert isinstance(expression, ConcatExpr)
        assert isinstance(expression.right, StarExpr)

    def test_precedence_concat_over_union(self):
        expression = parse("a.b + c")
        assert isinstance(expression, UnionExpr)
        assert isinstance(expression.left, ConcatExpr)

    def test_juxtaposition_is_concatenation(self):
        assert parse("a b") == parse("a.b")
        assert parse("(a)(b)") == parse("a.b")

    def test_double_star(self):
        expression = parse("a**")
        assert isinstance(expression, StarExpr) and isinstance(expression.operand, StarExpr)

    def test_parentheses(self):
        expression = parse("(a + b).c")
        assert isinstance(expression, ConcatExpr)
        assert isinstance(expression.left, UnionExpr)

    def test_errors(self):
        for text in ("", "a +", "(a", "a)", "*a", "a @ b", "+"):
            with pytest.raises(ExpressionError):
                parse(text)

    def test_whitespace_ignored(self):
        assert parse(" a .  ( b + c ) ") == parse("a.(b+c)")
