"""Tests for the classical (language) semantics of the expression syntax."""

from __future__ import annotations

import pytest

from repro.expressions.parser import parse
from repro.expressions.regular import denotes, language_nfa, language_upto, regular_equivalent


class TestDenotation:
    def test_empty_denotes_nothing(self):
        assert not denotes(parse("0"), [])
        assert not denotes(parse("0"), ["a"])

    def test_action(self):
        assert denotes(parse("a"), ["a"])
        assert not denotes(parse("a"), [])
        assert not denotes(parse("a"), ["a", "a"])

    def test_union(self):
        expression = parse("a + b")
        assert denotes(expression, ["a"]) and denotes(expression, ["b"])
        assert not denotes(expression, ["a", "b"])

    def test_concat(self):
        expression = parse("a.b")
        assert denotes(expression, ["a", "b"])
        assert not denotes(expression, ["a"])

    def test_star(self):
        expression = parse("(a.b)*")
        assert denotes(expression, [])
        assert denotes(expression, ["a", "b", "a", "b"])
        assert not denotes(expression, ["a"])

    def test_language_upto(self):
        assert language_upto(parse("a*"), 3) == frozenset({(), ("a",), ("a", "a"), ("a", "a", "a")})

    def test_language_nfa_alphabet_override(self):
        nfa = language_nfa(parse("a"), alphabet={"a", "b"})
        assert nfa.alphabet == frozenset({"a", "b"})


class TestRegularEquivalence:
    @pytest.mark.parametrize(
        "left,right,expected",
        [
            ("a + b", "b + a", True),
            ("a.(b + c)", "a.b + a.c", True),
            ("a.0", "0", True),
            ("(a + b)*", "(a*.b*)*", True),
            ("a*", "a.a*", False),
            ("a", "a + a.a", False),
            ("0*", "0", False),  # 0* denotes {epsilon}
        ],
    )
    def test_equivalences(self, left, right, expected):
        assert regular_equivalent(parse(left), parse(right)) is expected

    def test_alphabet_alignment(self):
        # over the joint alphabet {a, b}: a* != (a+b)*
        assert not regular_equivalent(parse("a*"), parse("(a + b)*"))
