"""Tests for the algebraic-identity catalogue (Section 2.3 item (3), experiment E16)."""

from __future__ import annotations

from repro.expressions.axioms import (
    IDENTITY_INSTANCES,
    annihilation_counterexample,
    distributivity_counterexample,
    evaluate_identity,
    identity_report,
    identity_table,
)
from repro.expressions.ccs_equivalence import ccs_equivalent, language_ccs_equivalent


def test_distributivity_counterexample_behaves_as_the_paper_states():
    left, right = distributivity_counterexample()
    assert language_ccs_equivalent(left, right)
    assert not ccs_equivalent(left, right)


def test_annihilation_counterexample_behaves_as_the_paper_states():
    left, right = annihilation_counterexample()
    assert language_ccs_equivalent(left, right)
    assert not ccs_equivalent(left, right)


def test_report_contains_every_catalogue_entry():
    report = identity_report()
    assert len(report) == len(IDENTITY_INSTANCES)
    names = {verdict.name for verdict in report}
    assert "right distributivity" in names and "annihilation r.0 = 0" in names


def test_every_identity_holds_in_language_semantics():
    """All catalogued laws are classical regular-expression identities."""
    for verdict in identity_report():
        assert verdict.holds_in_language, verdict.name


def test_exactly_the_two_paper_identities_fail_in_ccs():
    failing = {verdict.name for verdict in identity_report() if not verdict.holds_in_ccs}
    assert failing == {"right distributivity", "annihilation r.0 = 0"}


def test_evaluate_identity_single():
    verdict = evaluate_identity("custom", "a + a", "a")
    assert verdict.holds_in_ccs and verdict.holds_in_language


def test_identity_table_renders_all_rows():
    table = identity_table()
    for name, _left, _right in IDENTITY_INSTANCES:
        assert name in table
