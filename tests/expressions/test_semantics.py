"""Tests for the representative-FSP construction (Definition 2.3.1, Lemma 2.3.1)."""

from __future__ import annotations

import pytest

from repro.core.classify import ModelClass, classify
from repro.equivalence.language import accepted_strings_upto
from repro.equivalence.strong import strongly_equivalent_processes
from repro.expressions.parser import parse
from repro.expressions.regular import language_upto
from repro.expressions.semantics import construction_size, representative_fsp
from repro.expressions.syntax import length_of
from repro.generators.expressions import random_star_expression


class TestBaseCases:
    def test_empty_expression(self):
        process = representative_fsp(parse("0"))
        assert process.num_states == 1
        assert process.num_transitions == 0
        assert not process.is_accepting(process.start)

    def test_single_action(self):
        process = representative_fsp(parse("a"))
        assert process.num_states == 2
        assert process.num_transitions == 1
        assert not process.is_accepting(process.start)
        (target,) = process.successors(process.start, "a")
        assert process.is_accepting(target)


class TestStructuralProperties:
    @pytest.mark.parametrize(
        "text",
        ["0", "a", "a + b", "a.b", "a*", "a.(b + c)*", "(a + b)*.(c.a + 0)", "a**"],
    )
    def test_representative_is_standard_and_observable(self, text):
        """Lemma 2.3.1: the representative FSP is observable and standard."""
        process = representative_fsp(parse(text))
        classes = classify(process)
        assert ModelClass.STANDARD_OBSERVABLE in classes

    @pytest.mark.parametrize("size", [3, 6, 10, 15])
    def test_size_bounds_of_lemma_231(self, size):
        """O(n) states and O(n^2) transitions in the expression length n."""
        expression = random_star_expression(size, seed=size)
        n = length_of(expression)
        states, transitions = construction_size(expression)
        assert states <= 2 * n + 1
        assert transitions <= 4 * n * n

    def test_union_start_copies_both_sides(self):
        process = representative_fsp(parse("a + b"))
        assert process.enabled_actions(process.start) == frozenset({"a", "b"})

    def test_star_start_is_accepting(self):
        process = representative_fsp(parse("a*"))
        assert process.is_accepting(process.start)

    def test_prune_unreachable_option(self):
        literal = representative_fsp(parse("a + b"))
        pruned = representative_fsp(parse("a + b"), prune_unreachable=True)
        assert pruned.num_states <= literal.num_states
        assert strongly_equivalent_processes(literal, pruned)

    def test_explicit_alphabet(self):
        process = representative_fsp(parse("a"), alphabet={"a", "b"})
        assert process.alphabet == frozenset({"a", "b"})


class TestLanguagePreservation:
    @pytest.mark.parametrize(
        "text",
        [
            "0",
            "a",
            "a + b",
            "a.b",
            "a*",
            "a.b*",
            "a.(b + c)",
            "(a.b)*",
            "a.0",
            "0*",
            "(a + b)*.c",
            "a*.b*",
            "(a + b.a)*",
        ],
    )
    def test_representative_accepts_the_denoted_language(self, text):
        """Cross-check Definition 2.3.1 against the Thompson (classical) semantics."""
        expression = parse(text)
        process = representative_fsp(expression)
        assert accepted_strings_upto(process, 4) == language_upto(expression, 4)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_expressions_preserve_language(self, seed):
        expression = random_star_expression(6, seed=seed)
        process = representative_fsp(expression)
        assert accepted_strings_upto(process, 4) == language_upto(expression, 4)
