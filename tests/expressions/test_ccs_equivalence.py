"""Tests for the CCS equivalence problem on star expressions (Section 2.3)."""

from __future__ import annotations

import pytest

from repro.expressions.ccs_equivalence import (
    ccs_equivalent,
    failure_ccs_equivalent,
    language_ccs_equivalent,
    observationally_ccs_equivalent,
)
from repro.expressions.parser import parse


class TestStrongSemantics:
    @pytest.mark.parametrize(
        "left,right",
        [
            ("a + b", "b + a"),
            ("a + a", "a"),
            ("(a + b) + c", "a + (b + c)"),
            ("(a.b).c", "a.(b.c)"),
            ("a*", "a.(a*) + 0*"),
            ("(a + b).c", "a.c + b.c"),
        ],
    )
    def test_identities_that_hold(self, left, right):
        assert ccs_equivalent(left, right)

    @pytest.mark.parametrize(
        "left,right",
        [
            ("a.(b + c)", "a.b + a.c"),
            ("a.0", "0"),
            ("a", "a + b"),
            ("a*", "a.a"),
        ],
    )
    def test_inequivalences(self, left, right):
        assert not ccs_equivalent(left, right)

    def test_accepts_parsed_expressions_and_strings(self):
        assert ccs_equivalent(parse("a + b"), "b + a")


class TestOtherSemantics:
    def test_observational_agrees_with_strong_on_observable_representatives(self):
        for left, right in [("a + b", "b + a"), ("a.(b + c)", "a.b + a.c")]:
            assert observationally_ccs_equivalent(left, right) == ccs_equivalent(left, right)

    def test_language_semantics_is_coarser(self):
        assert language_ccs_equivalent("a.(b + c)", "a.b + a.c")
        assert not ccs_equivalent("a.(b + c)", "a.b + a.c")

    def test_failure_semantics_sits_between(self):
        """Failure equivalence also rejects the distributivity instance but is
        coarser than strong equivalence on other examples."""
        assert not failure_ccs_equivalent("a.(b + c)", "a.b + a.c")
        # a.(a + a.a) vs a.a + a.a.a: failure equivalent, not strongly equivalent
        left, right = "a.(a + a.a)", "a.a + a.a.a"
        assert failure_ccs_equivalent(left, right)
        assert not ccs_equivalent(left, right)
        assert language_ccs_equivalent(left, right)

    def test_different_alphabets_are_aligned(self):
        assert not ccs_equivalent("a", "b")
        assert not language_ccs_equivalent("a", "b")
