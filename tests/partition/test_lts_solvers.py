"""Cross-solver property tests on the integer LTS kernel.

The coarsest stable refinement is unique, so all four entry points -- the
naive method, the Kanellakis-Smolka splitter queue, the Paige-Tarjan
three-way splitter and the :func:`~repro.partition.generalized.solve`
dispatcher -- must produce identical partitions on every instance.  The
tests sweep the random generators of :mod:`repro.generators.random_fsp`
(general, observable, deterministic, and tau-heavy shapes) and also check
the raw ``*_refine_lts`` interfaces directly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.lts import LTS
from repro.generators.random_fsp import (
    random_deterministic_fsp,
    random_equivalent_copy,
    random_fsp,
    random_observable_fsp,
)
from repro.partition.generalized import (
    GeneralizedPartitioningInstance,
    Solver,
    is_valid_solution,
    solve,
)
from repro.partition.kanellakis_smolka import kanellakis_smolka_refine_lts
from repro.partition.naive import naive_refine_lts
from repro.partition.paige_tarjan import paige_tarjan_refine_lts
from repro.partition.refinable import partition_from_refinable

from tests.property.strategies import fsp_strategy


def _assert_all_solvers_agree(instance: GeneralizedPartitioningInstance) -> None:
    reference = solve(instance, Solver.NAIVE)
    assert is_valid_solution(instance, reference)
    for method in (Solver.KANELLAKIS_SMOLKA, Solver.PAIGE_TARJAN):
        assert solve(instance, method) == reference, method
    # the raw integer interfaces agree as well
    lts, block_of, num_blocks = instance.kernel
    for refine in (naive_refine_lts, kanellakis_smolka_refine_lts, paige_tarjan_refine_lts):
        part = refine(lts, list(block_of), num_blocks)
        assert partition_from_refinable(part, lts.state_names) == reference, refine


@pytest.mark.parametrize("seed", range(12))
def test_solvers_agree_on_random_general_fsps(seed):
    process = random_fsp(12, tau_probability=0.25, seed=seed)
    _assert_all_solvers_agree(GeneralizedPartitioningInstance.from_fsp(process, include_tau=True))


@pytest.mark.parametrize("seed", range(8))
def test_solvers_agree_on_random_observable_fsps(seed):
    process = random_observable_fsp(16, transition_density=2.5, seed=seed)
    _assert_all_solvers_agree(GeneralizedPartitioningInstance.from_fsp(process))


@pytest.mark.parametrize("seed", range(8))
def test_solvers_agree_on_deterministic_fsps(seed):
    """Deterministic instances exercise the sound smaller-half worklist rule."""
    process = random_deterministic_fsp(14, seed=seed)
    instance = GeneralizedPartitioningInstance.from_fsp(process)
    assert instance.kernel[0].is_deterministic()
    _assert_all_solvers_agree(instance)


@pytest.mark.parametrize("seed", range(4))
def test_solvers_agree_on_duplicated_state_classes(seed):
    """Duplicated states force large non-trivial equivalence classes."""
    base = random_observable_fsp(10, transition_density=2.0, seed=seed)
    process = random_equivalent_copy(base, duplicates=12, seed=seed)
    instance = GeneralizedPartitioningInstance.from_fsp(process)
    result = solve(instance, Solver.KANELLAKIS_SMOLKA)
    _assert_all_solvers_agree(instance)
    # every original state must share a block with at least one of its clones
    clones = [state for state in process.states if "#dup" in state]
    assert clones
    for clone in clones:
        original = clone.split("#dup")[0]
        assert result.same_block(original, clone)


@settings(max_examples=40, deadline=None)
@given(process=fsp_strategy())
def test_solvers_agree_on_hypothesis_fsps(process):
    _assert_all_solvers_agree(GeneralizedPartitioningInstance.from_fsp(process, include_tau=True))


@settings(max_examples=25, deadline=None)
@given(process=fsp_strategy(allow_tau=True))
def test_kernel_round_trip_preserves_partition(process):
    """Solving after an FSP->LTS->FSP round-trip gives the same classes."""
    back = GeneralizedPartitioningInstance.from_fsp(process, include_tau=True)
    round_tripped = GeneralizedPartitioningInstance.from_fsp(
        LTS.from_fsp(process).to_fsp(), include_tau=True
    )
    assert solve(back) == solve(round_tripped)
