"""Property tests for the vectorized partition kernel against the python oracles.

The coarsest stable refinement is unique, so the numpy kernel
(:mod:`repro.partition.vectorized`) must produce exactly the partition the
pure-Python solvers compute -- up to block renumbering -- on every instance:
random FSPs, the structured scaling families, and hypothesis-generated
processes, for the strong notion and (through the packed-bitset saturation
backend) the observational one.  The memory-mapped CSR store must behave
byte-for-byte like the in-memory arrays.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

np = pytest.importorskip("numpy")

from repro.core.lts import LTS  # noqa: E402
from repro.core.weak import saturate_lts  # noqa: E402
from repro.equivalence.observational import observational_partition  # noqa: E402
from repro.equivalence.strong import strong_bisimulation_partition  # noqa: E402
from repro.generators.families import (  # noqa: E402
    comb,
    duplicated_chain,
    shift_register,
    shift_register_csr,
    tau_diamond_tower,
    tau_ladder,
    tau_mesh,
)
from repro.generators.random_fsp import random_fsp, random_observable_fsp  # noqa: E402
from repro.partition.generalized import (  # noqa: E402
    GeneralizedPartitioningError,
    GeneralizedPartitioningInstance,
    Solver,
    solve,
)
from repro.partition.vectorized import (  # noqa: E402
    vector_refine,
    vector_refine_csr,
    vector_refine_lts,
)
from repro.utils.matrices import CSRArrays, MmapCSR  # noqa: E402

from tests.property.strategies import fsp_strategy  # noqa: E402

STRUCTURED = [
    ("shift_register", lambda: shift_register(7), False),
    ("comb", lambda: comb(40), False),
    ("duplicated_chain", lambda: duplicated_chain(30, 3), False),
    ("tau_ladder", lambda: tau_ladder(25), True),
]


def _assert_vector_matches_oracle(instance: GeneralizedPartitioningInstance) -> None:
    oracle = solve(instance, Solver.PAIGE_TARJAN)
    assert vector_refine(instance).as_frozen() == oracle.as_frozen()
    assert solve(instance, backend="vector").as_frozen() == oracle.as_frozen()


@pytest.mark.parametrize("seed", range(10))
def test_vector_matches_oracle_on_random_fsps(seed):
    process = random_fsp(14, tau_probability=0.25, seed=seed)
    _assert_vector_matches_oracle(
        GeneralizedPartitioningInstance.from_fsp(process, include_tau=True)
    )


@pytest.mark.parametrize("seed", range(6))
def test_vector_matches_oracle_on_observable_fsps(seed):
    process = random_observable_fsp(18, transition_density=2.5, seed=seed)
    _assert_vector_matches_oracle(GeneralizedPartitioningInstance.from_fsp(process))


@pytest.mark.parametrize("name,builder,include_tau", STRUCTURED, ids=[s[0] for s in STRUCTURED])
def test_vector_matches_oracle_on_structured_families(name, builder, include_tau):
    process = builder()
    _assert_vector_matches_oracle(
        GeneralizedPartitioningInstance.from_fsp(process, include_tau=include_tau)
    )


@settings(max_examples=30, deadline=None)
@given(process=fsp_strategy(allow_tau=True))
def test_vector_matches_oracle_on_hypothesis_fsps(process):
    _assert_vector_matches_oracle(
        GeneralizedPartitioningInstance.from_fsp(process, include_tau=True)
    )


@pytest.mark.parametrize("seed", range(4))
def test_vector_refine_lts_matches_raw_interface(seed):
    """The raw ``*_refine_lts`` twin agrees with the python solvers' assignment."""
    process = random_observable_fsp(16, transition_density=2.0, seed=seed)
    instance = GeneralizedPartitioningInstance.from_fsp(process)
    lts, block_of, num_blocks = instance.kernel
    assignment = vector_refine_lts(lts, block_of, num_blocks)
    oracle = solve(instance, Solver.KANELLAKIS_SMOLKA)
    names = lts.state_names
    by_block: dict[int, set[str]] = {}
    for state, block in enumerate(assignment.tolist()):
        by_block.setdefault(block, set()).add(names[state])
    assert frozenset(frozenset(b) for b in by_block.values()) == oracle.as_frozen()


def test_strong_equivalence_api_accepts_vector_backend():
    process = duplicated_chain(20, 2)
    python = strong_bisimulation_partition(process)
    vector = strong_bisimulation_partition(process, backend="vector")
    assert vector.as_frozen() == python.as_frozen()


@pytest.mark.parametrize(
    "builder",
    [lambda: tau_ladder(20), lambda: tau_mesh(60), lambda: tau_diamond_tower(12)],
    ids=["tau_ladder", "tau_mesh", "tau_diamond_tower"],
)
def test_observational_backends_agree(builder):
    process = builder()
    python = observational_partition(process)
    vector = observational_partition(process, backend="vector")
    assert vector.as_frozen() == python.as_frozen()


@pytest.mark.parametrize("seed", range(6))
def test_vector_saturation_is_byte_identical(seed):
    """The packed-uint64 closure emits exactly the python saturation's CSR."""
    process = random_fsp(15, tau_probability=0.4, seed=seed)
    lts = LTS.from_fsp(process, include_tau=True)
    python = saturate_lts(lts)
    vector = saturate_lts(lts, backend="vector")
    assert vector.fwd_offsets == python.fwd_offsets
    assert vector.fwd_actions == python.fwd_actions
    assert vector.fwd_targets == python.fwd_targets
    assert vector.action_names == python.action_names


def test_unknown_backend_rejected():
    process = shift_register(4)
    instance = GeneralizedPartitioningInstance.from_fsp(process)
    with pytest.raises(GeneralizedPartitioningError):
        solve(instance, backend="fortran")


def test_mmap_csr_equals_in_memory(tmp_path):
    """The mmap store holds the same arrays and refines to the same partition."""
    bits = 9
    memory_csr, memory_blocks = shift_register_csr(bits)
    _, mmap_blocks = shift_register_csr(bits, mmap_dir=tmp_path)
    store = MmapCSR.open(tmp_path)
    assert isinstance(memory_csr, CSRArrays)
    assert store.n == memory_csr.n
    assert np.array_equal(np.asarray(store.offsets), np.asarray(memory_csr.offsets))
    assert np.array_equal(np.asarray(store.actions), np.asarray(memory_csr.actions))
    assert np.array_equal(np.asarray(store.targets), np.asarray(memory_csr.targets))
    assert np.array_equal(memory_blocks, mmap_blocks)
    refined_memory = vector_refine_csr(memory_csr, memory_blocks)
    refined_mmap = vector_refine_csr(store, mmap_blocks)
    assert np.array_equal(refined_memory, refined_mmap)
    # depth log2(n): the shift register is discrete after `bits` rounds
    assert int(refined_mmap.max()) + 1 == 1 << bits
