"""The ``auto`` backend: threshold dispatch and python/vector agreement.

``resolve_backend("auto", n)`` is the one choke point every caller funnels
through (solve, saturation, the engine's process handles, the notion
defaults), so these tests pin its dispatch rule -- vector iff numpy is
available and the state count reaches ``VECTOR_STATE_THRESHOLD`` -- and then
check end-to-end that an ``auto`` answer equals the ``python`` answer on
instances both above and below the threshold.
"""

from __future__ import annotations

import pytest

from repro.core.lts import LTS
from repro.core.weak import saturate_lts
from repro.engine import Engine
from repro.generators.families import duplicated_chain, tau_ladder
from repro.generators.random_fsp import random_fsp
from repro.partition import generalized
from repro.partition.generalized import (
    GeneralizedPartitioningError,
    GeneralizedPartitioningInstance,
    resolve_backend,
    solve,
)
from repro.utils.matrices import HAVE_NUMPY

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy is not installed")


# ----------------------------------------------------------------------
# the dispatch rule
# ----------------------------------------------------------------------
def test_concrete_backends_pass_through_unchanged():
    assert resolve_backend("python", 10**9) == "python"
    if HAVE_NUMPY:
        assert resolve_backend("vector", 1) == "vector"


def test_unknown_backend_is_rejected():
    with pytest.raises(GeneralizedPartitioningError, match="backend"):
        resolve_backend("fortran", 100)


def test_auto_stays_python_below_the_threshold():
    assert resolve_backend("auto", generalized.VECTOR_STATE_THRESHOLD - 1) == "python"


@needs_numpy
def test_auto_switches_to_vector_at_the_threshold():
    assert resolve_backend("auto", generalized.VECTOR_STATE_THRESHOLD) == "vector"


def test_auto_without_numpy_always_resolves_python(monkeypatch):
    monkeypatch.setattr("repro.utils.matrices.HAVE_NUMPY", False)
    assert resolve_backend("auto", generalized.VECTOR_STATE_THRESHOLD * 2) == "python"


# ----------------------------------------------------------------------
# end-to-end agreement (threshold lowered so the vector path really runs)
# ----------------------------------------------------------------------
@needs_numpy
@pytest.mark.parametrize("seed", range(4))
def test_auto_solve_agrees_with_python_above_the_threshold(monkeypatch, seed):
    monkeypatch.setattr(generalized, "VECTOR_STATE_THRESHOLD", 4)
    process = random_fsp(16, tau_probability=0.25, seed=seed)
    instance = GeneralizedPartitioningInstance.from_fsp(process, include_tau=True)
    assert resolve_backend("auto", len(instance.elements)) == "vector"
    auto = solve(instance, backend="auto")
    python = solve(instance, backend="python")
    assert auto.as_frozen() == python.as_frozen()


@needs_numpy
def test_auto_saturation_agrees_with_python(monkeypatch):
    monkeypatch.setattr(generalized, "VECTOR_STATE_THRESHOLD", 4)
    process = tau_ladder(12)
    lts = LTS.from_fsp(process, include_tau=True)
    auto = saturate_lts(lts, backend="auto")
    python = saturate_lts(lts, backend="python")
    assert auto.fwd_offsets == python.fwd_offsets
    assert auto.fwd_actions == python.fwd_actions
    assert auto.fwd_targets == python.fwd_targets


@needs_numpy
def test_engine_auto_default_matches_explicit_python(monkeypatch):
    monkeypatch.setattr(generalized, "VECTOR_STATE_THRESHOLD", 4)
    process = duplicated_chain(15, 2)
    auto_engine, python_engine = Engine(), Engine()
    auto = auto_engine.minimize(process, "strong")  # backend defaults to auto
    python = python_engine.minimize(process, "strong", backend="python")
    assert auto.num_states == python.num_states
    assert auto_engine.check(process, auto, notion="strong").equivalent
    assert python_engine.check(auto, python, notion="strong").equivalent


def test_auto_and_python_share_one_verdict_cache_slot():
    # Below the threshold auto *is* python, so the engine must not compute
    # or cache the same quotient twice under two backend names.
    engine = Engine()
    process = duplicated_chain(10, 2)
    engine.minimize(process, "strong")  # auto -> python
    engine.minimize(process, "strong", backend="python")

    def minimized_slots() -> int:
        [artifact] = engine.export_stats()["process_artifacts"]
        return artifact["artifacts"]["minimized_strong"]

    assert minimized_slots() == 1  # both calls share one (method, backend) slot
