"""Cross-checks between the three generalized-partitioning solvers (experiments E5/E6)."""

from __future__ import annotations

import pytest

from repro.core.fsp import from_transitions
from repro.generators.families import comb, duplicated_chain
from repro.generators.random_fsp import random_fsp, random_observable_fsp
from repro.partition.generalized import (
    GeneralizedPartitioningInstance,
    Solver,
    is_valid_solution,
    solve,
)
from repro.partition.naive import naive_refine, naive_refinement_passes


def _instances():
    yield GeneralizedPartitioningInstance.from_fsp(duplicated_chain(4, 2))
    yield GeneralizedPartitioningInstance.from_fsp(comb(5))
    yield GeneralizedPartitioningInstance.from_fsp(
        random_observable_fsp(20, transition_density=2.0, seed=7)
    )
    yield GeneralizedPartitioningInstance.from_fsp(
        random_fsp(15, tau_probability=0.3, seed=11), include_tau=True
    )
    # a nondeterministic instance where the smaller-half subtlety matters
    yield GeneralizedPartitioningInstance(
        elements=[f"e{i}" for i in range(6)],
        initial_blocks=[[f"e{i}" for i in range(6)]],
        functions={
            "f": {
                "e0": ["e1", "e2"],
                "e1": ["e3"],
                "e2": ["e4", "e5"],
                "e3": ["e0"],
                "e4": ["e1", "e5"],
            }
        },
    )


@pytest.mark.parametrize("index,instance", list(enumerate(_instances())))
def test_solvers_agree_and_are_valid(index, instance):
    naive = solve(instance, Solver.NAIVE)
    ks = solve(instance, Solver.KANELLAKIS_SMOLKA)
    pt = solve(instance, Solver.PAIGE_TARJAN)
    assert naive == ks, f"instance {index}: naive vs Kanellakis-Smolka differ"
    assert naive == pt, f"instance {index}: naive vs Paige-Tarjan differ"
    assert is_valid_solution(instance, naive)
    assert is_valid_solution(instance, pt, reference=naive)


def test_result_refines_initial_partition():
    instance = GeneralizedPartitioningInstance.from_fsp(comb(4))
    result = solve(instance)
    assert result.refines(instance.initial_partition())


def test_no_functions_leaves_initial_partition():
    instance = GeneralizedPartitioningInstance(
        elements=["a", "b", "c"],
        initial_blocks=[["a", "b"], ["c"]],
        functions={},
    )
    for method in Solver:
        result = solve(instance, method)
        assert result == instance.initial_partition()


def test_singleton_instance():
    instance = GeneralizedPartitioningInstance(
        elements=["only"], initial_blocks=[["only"]], functions={"f": {"only": ["only"]}}
    )
    for method in Solver:
        assert len(solve(instance, method)) == 1


def test_naive_pass_count_is_bounded_by_n():
    instance = GeneralizedPartitioningInstance.from_fsp(duplicated_chain(6, 2))
    passes = naive_refinement_passes(instance)
    n, _m = instance.size
    assert 1 <= passes <= n

    # and the counting helper computes the same partition as naive_refine
    assert naive_refine(instance) == solve(instance, Solver.NAIVE)


def test_empty_element_set():
    instance = GeneralizedPartitioningInstance(elements=[], initial_blocks=[], functions={})
    for method in Solver:
        assert len(solve(instance, method)) == 0


def test_self_loop_versus_sink_distinction():
    """A state with a self-loop must not merge with a dead state."""
    process = from_transitions(
        [("loop", "a", "loop")], start="loop", all_accepting=True, alphabet={"a"}
    )
    process = from_transitions(
        [("loop", "a", "loop")],
        start="loop",
        all_accepting=True,
        alphabet={"a"},
    )
    # add an isolated dead state by rebuilding
    from repro.core.fsp import FSP

    process = FSP(
        states=set(process.states) | {"dead"},
        start=process.start,
        alphabet=process.alphabet,
        transitions=process.transitions,
        variables=process.variables,
        extensions=set(process.extensions) | {("dead", "x")},
    )
    instance = GeneralizedPartitioningInstance.from_fsp(process)
    for method in Solver:
        result = solve(instance, method)
        assert not result.same_block("loop", "dead")
