"""Tests for the generalized partitioning problem definition and the Lemma 3.1 reduction."""

from __future__ import annotations

import pytest

from repro.core.fsp import TAU, from_transitions
from repro.partition.generalized import (
    GeneralizedPartitioningError,
    GeneralizedPartitioningInstance,
    Solver,
    is_stable,
    is_valid_solution,
    solve,
)
from repro.partition.partition import Partition


def small_instance() -> GeneralizedPartitioningInstance:
    """S = {1..4}, one function f with f(1)={2}, f(2)={3}, f(3)={4}, f(4)={}.

    Starting from the trivial partition, the coarsest stable refinement must
    separate 4 (no image) from 3 (image into the block of 4), and so on: the
    answer is the discrete partition.
    """
    return GeneralizedPartitioningInstance(
        elements=["1", "2", "3", "4"],
        initial_blocks=[["1", "2", "3", "4"]],
        functions={"f": {"1": ["2"], "2": ["3"], "3": ["4"]}},
    )


class TestInstanceValidation:
    def test_valid_instance(self):
        instance = small_instance()
        assert instance.size == (4, 3)
        assert instance.fanout == 1

    def test_blocks_must_cover(self):
        with pytest.raises(GeneralizedPartitioningError):
            GeneralizedPartitioningInstance(["a", "b"], [["a"]], {})

    def test_blocks_must_be_disjoint(self):
        with pytest.raises(GeneralizedPartitioningError):
            GeneralizedPartitioningInstance(["a", "b"], [["a", "b"], ["b"]], {})

    def test_blocks_must_be_nonempty(self):
        with pytest.raises(GeneralizedPartitioningError):
            GeneralizedPartitioningInstance(["a"], [["a"], []], {})

    def test_function_domain_inside_s(self):
        with pytest.raises(GeneralizedPartitioningError):
            GeneralizedPartitioningInstance(["a"], [["a"]], {"f": {"z": ["a"]}})

    def test_function_range_inside_s(self):
        with pytest.raises(GeneralizedPartitioningError):
            GeneralizedPartitioningInstance(["a"], [["a"]], {"f": {"a": ["z"]}})

    def test_image_defaults_to_empty(self):
        instance = small_instance()
        assert instance.image("f", "4") == frozenset()
        assert instance.image("missing", "1") == frozenset()

    def test_predecessor_map(self):
        instance = small_instance()
        predecessors = instance.predecessor_map()
        assert predecessors["f"]["2"] == frozenset({"1"})
        assert "1" not in predecessors["f"]


class TestStabilityCheck:
    def test_discrete_partition_is_stable(self):
        instance = small_instance()
        assert is_stable(instance, Partition.discrete(instance.elements))

    def test_trivial_partition_is_unstable_here(self):
        instance = small_instance()
        assert not is_stable(instance, Partition.trivial(instance.elements))

    def test_is_valid_solution_checks_consistency(self):
        instance = small_instance()
        discrete = Partition.discrete(instance.elements)
        assert is_valid_solution(instance, discrete)
        wrong_elements = Partition.discrete(["1", "2", "3"])
        assert not is_valid_solution(instance, wrong_elements)

    def test_is_valid_solution_with_reference(self):
        instance = small_instance()
        reference = solve(instance, Solver.NAIVE)
        assert is_valid_solution(instance, solve(instance, Solver.PAIGE_TARJAN), reference)


class TestLemma31Reduction:
    def test_states_become_elements(self, branching_process):
        instance = GeneralizedPartitioningInstance.from_fsp(branching_process)
        assert instance.elements == branching_process.states

    def test_one_function_per_action(self, branching_process):
        instance = GeneralizedPartitioningInstance.from_fsp(branching_process)
        assert set(instance.functions) == set(branching_process.alphabet)

    def test_functions_are_successor_sets(self, branching_process):
        instance = GeneralizedPartitioningInstance.from_fsp(branching_process)
        assert instance.image("a", "s") == frozenset({"l", "r"})
        assert instance.image("b", "l") == frozenset({"t"})

    def test_initial_blocks_group_by_extension(self, branching_process):
        instance = GeneralizedPartitioningInstance.from_fsp(branching_process)
        partition = instance.initial_partition()
        assert partition.same_block("s", "l")
        assert not partition.same_block("s", "t")

    def test_tau_included_only_on_request(self, tau_process):
        without = GeneralizedPartitioningInstance.from_fsp(tau_process, include_tau=False)
        with_tau = GeneralizedPartitioningInstance.from_fsp(tau_process, include_tau=True)
        assert TAU not in without.functions
        assert TAU in with_tau.functions

    def test_size_matches_lemma(self, branching_process):
        instance = GeneralizedPartitioningInstance.from_fsp(branching_process)
        n, m = instance.size
        assert n == branching_process.num_states
        assert m == branching_process.num_transitions

    def test_repr(self):
        assert "n=4" in repr(small_instance())


class TestSolveDispatcher:
    def test_solver_accepts_strings(self):
        instance = small_instance()
        assert solve(instance, "naive") == solve(instance, Solver.NAIVE)

    def test_all_methods_agree_on_small_instance(self):
        instance = small_instance()
        reference = solve(instance, Solver.NAIVE)
        assert solve(instance, Solver.KANELLAKIS_SMOLKA) == reference
        assert solve(instance, Solver.PAIGE_TARJAN) == reference
        assert len(reference) == 4  # discrete, as analysed in the fixture docstring

    def test_known_two_class_instance(self):
        # two parallel chains of equal length collapse pairwise
        process = from_transitions(
            [("a0", "x1", "a1"), ("a1", "x1", "a2"), ("b0", "x1", "b1"), ("b1", "x1", "b2")],
            start="a0",
            all_accepting=True,
        )
        instance = GeneralizedPartitioningInstance.from_fsp(process)
        result = solve(instance)
        assert result.same_block("a0", "b0")
        assert result.same_block("a1", "b1")
        assert result.same_block("a2", "b2")
        assert not result.same_block("a0", "a1")
