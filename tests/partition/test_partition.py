"""Unit tests for the Partition data structure."""

from __future__ import annotations

import pytest

from repro.partition.partition import Partition, PartitionError


class TestConstruction:
    def test_blocks_and_elements(self):
        partition = Partition([["a", "b"], ["c"]])
        assert len(partition) == 2
        assert partition.elements == frozenset({"a", "b", "c"})

    def test_discrete(self):
        partition = Partition.discrete(["a", "b", "c"])
        assert len(partition) == 3
        assert all(len(block) == 1 for block in partition)

    def test_trivial(self):
        partition = Partition.trivial(["a", "b", "c"])
        assert len(partition) == 1

    def test_trivial_empty(self):
        assert len(Partition.trivial([])) == 0

    def test_from_key(self):
        partition = Partition.from_key(["a", "bb", "cc", "d"], key=len)
        assert partition.as_frozen() == frozenset({frozenset({"a", "d"}), frozenset({"bb", "cc"})})

    def test_overlapping_blocks_rejected(self):
        with pytest.raises(PartitionError):
            Partition([["a", "b"], ["b", "c"]])

    def test_empty_block_rejected(self):
        with pytest.raises(PartitionError):
            Partition([["a"], []])


class TestQueries:
    def test_block_of_and_same_block(self):
        partition = Partition([["a", "b"], ["c"]])
        assert partition.block_of("a") == frozenset({"a", "b"})
        assert partition.same_block("a", "b")
        assert not partition.same_block("a", "c")

    def test_block_of_unknown_element(self):
        partition = Partition([["a"]])
        with pytest.raises(PartitionError):
            partition.block_of("z")

    def test_block_members_unknown_id(self):
        partition = Partition([["a"]])
        with pytest.raises(PartitionError):
            partition.block_members(99)

    def test_refines(self):
        coarse = Partition([["a", "b", "c"], ["d"]])
        fine = Partition([["a", "b"], ["c"], ["d"]])
        assert fine.refines(coarse)
        assert not coarse.refines(fine)
        assert coarse.refines(coarse)

    def test_refines_requires_same_elements(self):
        assert not Partition([["a"]]).refines(Partition([["b"]]))


class TestSplitting:
    def test_split_block_proper(self):
        partition = Partition([["a", "b", "c"]])
        block_id = partition.block_ids()[0]
        result = partition.split_block(block_id, ["a"])
        assert result is not None
        kept, new = result
        assert partition.block_members(new) == frozenset({"a"})
        assert partition.block_members(kept) == frozenset({"b", "c"})

    def test_split_block_trivial_is_noop(self):
        partition = Partition([["a", "b"]])
        block_id = partition.block_ids()[0]
        assert partition.split_block(block_id, ["a", "b"]) is None
        assert partition.split_block(block_id, ["z"]) is None
        assert len(partition) == 1

    def test_split_by_key(self):
        partition = Partition([["a", "bb", "c"], ["dd", "ee"]])
        changed = partition.split_by_key(len)
        assert changed
        assert partition.as_frozen() == frozenset(
            {frozenset({"a", "c"}), frozenset({"bb"}), frozenset({"dd", "ee"})}
        )

    def test_split_by_key_stable(self):
        partition = Partition([["a", "b"]])
        assert not partition.split_by_key(lambda _e: 0)

    def test_equality_and_hash(self):
        first = Partition([["a", "b"], ["c"]])
        second = Partition([["c"], ["b", "a"]])
        assert first == second
        assert hash(first) == hash(second)
        assert first != Partition([["a"], ["b"], ["c"]])
        assert first != "something else"

    def test_repr_is_sorted(self):
        partition = Partition([["b", "a"]])
        assert repr(partition) == "Partition([['a', 'b']])"
