"""Direct unit tests for the validation and estimation edges of ``reduce``.

The differential oracle and metamorphic suites exercise the reductions
end-to-end; these tests pin the small contracts around them -- mode /
frontier validation, malformed symmetry declarations, the structural
state estimator's dispatch over every spec node, and the bounded
canonical rendering -- where a silently-accepted bad input would
surface much later as a confusing search result.
"""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidProcessError
from repro.core.fsp import FSP, from_transitions
from repro.explore.products import LazyInterleavingProduct
from repro.explore.reduce import (
    ConfluenceReducer,
    FullPermutationSymmetry,
    RotationSymmetry,
    SymmetryReducer,
    annotate_symmetry,
    canonical_bytes,
    declared_symmetry,
    normalize_frontier,
    normalize_reduction,
    structural_state_estimate,
)
from repro.explore.system import (
    HideSpec,
    LeafSpec,
    ProductSpec,
    RelabelSpec,
    RestrictSpec,
    build_implicit,
)


def _toggle(a: str = "a") -> FSP:
    return from_transitions([("p", a, "q"), ("q", a, "p")], "p")


# ----------------------------------------------------------------------
# Mode / frontier validation
# ----------------------------------------------------------------------
def test_normalize_reduction_rejects_unknown_mode():
    with pytest.raises(InvalidProcessError, match="unknown reduction"):
        normalize_reduction("everything")


def test_normalize_frontier_rejects_unknown_choice():
    with pytest.raises(InvalidProcessError, match="unknown frontier"):
        normalize_frontier("bloom")


def test_normalize_defaults():
    assert normalize_reduction(None) == "none"
    assert normalize_frontier(None) == "exact"


# ----------------------------------------------------------------------
# Symmetry declaration validation
# ----------------------------------------------------------------------
def test_rotation_rings_must_share_one_length():
    with pytest.raises(InvalidProcessError, match="share one length"):
        RotationSymmetry(((0, 1), (2, 3, 4)))


def test_symmetry_positions_must_be_disjoint():
    with pytest.raises(InvalidProcessError, match="appears twice"):
        FullPermutationSymmetry(((0, 1), (1, 2)))


def test_symmetry_rejects_empty_and_negative_groups():
    with pytest.raises(InvalidProcessError, match="empty"):
        FullPermutationSymmetry(((),))
    with pytest.raises(InvalidProcessError, match="negative"):
        RotationSymmetry(((-1, 0),))


def test_annotate_symmetry_needs_a_symmetry():
    spec = ProductSpec("interleave", LeafSpec(_toggle()), LeafSpec(_toggle()))
    with pytest.raises(InvalidProcessError, match="at least one"):
        annotate_symmetry(spec)
    with pytest.raises(InvalidProcessError, match="not a symmetry"):
        annotate_symmetry(spec, "rotate please")
    assert declared_symmetry(spec) is None


def test_annotate_symmetry_rejects_frozen_leaf_nodes():
    with pytest.raises(InvalidProcessError, match="annotate an enclosing"):
        annotate_symmetry(LeafSpec(_toggle()), FullPermutationSymmetry(((0,),)))


def test_symmetry_reducer_rejects_positions_beyond_the_leaves():
    spec = ProductSpec("interleave", LeafSpec(_toggle()), LeafSpec(_toggle()))
    with pytest.raises(InvalidProcessError, match="exceed"):
        SymmetryReducer(build_implicit(spec), FullPermutationSymmetry(((0, 5),)))
    with pytest.raises(InvalidProcessError, match="at least one symmetry"):
        SymmetryReducer(build_implicit(spec), ())


# ----------------------------------------------------------------------
# Structural state estimation
# ----------------------------------------------------------------------
def test_structural_estimate_multiplies_across_operators():
    left = LeafSpec(_toggle("a"))
    right = LeafSpec(_toggle("b"))
    product = ProductSpec("interleave", left, right)
    assert structural_state_estimate(left) == 2
    assert structural_state_estimate(product) == 4
    assert structural_state_estimate(RestrictSpec(product, frozenset({"a"}))) == 4
    assert structural_state_estimate(HideSpec(product, frozenset({"a"}))) == 4
    assert structural_state_estimate(RelabelSpec(product, {"a": "c"})) == 4
    assert structural_state_estimate(_toggle()) == 2


def test_structural_estimate_sees_through_reducers():
    spec = ProductSpec("interleave", LeafSpec(_toggle("a")), LeafSpec(_toggle("b")))
    implicit = build_implicit(spec)
    assert structural_state_estimate(implicit) == 4
    assert structural_state_estimate(ConfluenceReducer(implicit)) == 4
    reducer = SymmetryReducer(implicit, FullPermutationSymmetry(((0, 1),)))
    assert structural_state_estimate(reducer) == 4
    lazy = LazyInterleavingProduct(_toggle("a"), _toggle("b"))
    assert structural_state_estimate(lazy) == 4


def test_structural_estimate_rejects_opaque_sources():
    with pytest.raises(InvalidProcessError, match="cannot estimate"):
        structural_state_estimate(object())


# ----------------------------------------------------------------------
# Canonical rendering bound
# ----------------------------------------------------------------------
def test_canonical_bytes_limit_is_enforced():
    spec = ProductSpec("interleave", LeafSpec(_toggle("a")), LeafSpec(_toggle("b")))
    with pytest.raises(InvalidProcessError, match="exceeded 2 states"):
        canonical_bytes(spec, limit=2)
    assert canonical_bytes(spec, limit=100) == canonical_bytes(spec, limit=100)
