"""Lazy products and wrappers mirror the eager composition operators exactly."""

from __future__ import annotations

import pytest

from repro.core.composition import (
    ccs_composition,
    hide,
    interleaving_product,
    relabel,
    restrict,
    synchronous_product,
)
from repro.core.errors import InvalidProcessError
from repro.core.fsp import TAU, from_transitions
from repro.explore import (
    CCSAdapter,
    LazyCCSProduct,
    LazyHiding,
    LazyInterleavingProduct,
    LazyRelabeling,
    LazyRestriction,
    LazySynchronousProduct,
    materialize,
)
from repro.generators.random_fsp import random_fsp


def sender():
    return from_transitions(
        [("s0", "send!", "s1"), ("s1", TAU, "s0")], start="s0", all_accepting=True
    )


def receiver():
    return from_transitions(
        [("r0", "send", "r1"), ("r1", "deliver", "r0")], start="r0", all_accepting=True
    )


class TestLazyMirrorsEager:
    @pytest.mark.parametrize("seed", range(12))
    def test_ccs_product_on_random_pairs(self, seed):
        left = random_fsp(4, alphabet=("a", "b"), tau_probability=0.2, seed=seed)
        right = random_fsp(4, alphabet=("a", "a!", "b"), tau_probability=0.2, seed=seed + 50)
        assert materialize(LazyCCSProduct(left, right)) == ccs_composition(left, right)

    @pytest.mark.parametrize("seed", range(12))
    def test_interleaving_on_random_pairs(self, seed):
        left = random_fsp(4, alphabet=("a", "b"), seed=seed)
        right = random_fsp(4, alphabet=("b", "c"), seed=seed + 50)
        assert materialize(LazyInterleavingProduct(left, right)) == interleaving_product(
            left, right
        )

    @pytest.mark.parametrize("seed", range(12))
    def test_synchronous_on_random_pairs(self, seed):
        left = random_fsp(4, alphabet=("a", "b"), tau_probability=0.2, seed=seed)
        right = random_fsp(4, alphabet=("a", "b"), tau_probability=0.2, seed=seed + 50)
        assert materialize(LazySynchronousProduct(left, right)) == synchronous_product(
            left, right
        )

    def test_synchronisation_appears_as_tau(self):
        product = materialize(LazyCCSProduct(sender(), receiver()))
        assert product == ccs_composition(sender(), receiver())
        assert any(action == TAU for _s, action, _d in product.transitions)

    def test_extension_modes_match_eager(self):
        left = random_fsp(3, accepting_probability=0.5, seed=1)
        right = random_fsp(3, accepting_probability=0.5, seed=2)
        for mode in ("union", "intersection"):
            assert materialize(LazyInterleavingProduct(left, right, mode)) == (
                interleaving_product(left, right, mode)
            )

    def test_bad_extension_mode_rejected(self):
        with pytest.raises(InvalidProcessError, match="extension mode"):
            LazyCCSProduct(sender(), receiver(), "both")


class TestWrappers:
    def test_restriction_matches_eager(self):
        composed = ccs_composition(sender(), receiver())
        assert materialize(LazyRestriction(composed, ["send"])) == restrict(composed, ["send"])

    def test_hiding_matches_eager_on_reachable(self):
        composed = ccs_composition(sender(), receiver())
        eager = hide(composed, ["send"]).restrict_to_reachable()
        assert materialize(LazyHiding(composed, ["send"])) == eager

    def test_relabeling_matches_eager_on_reachable(self):
        eager = relabel(sender(), {"send": "emit"}).restrict_to_reachable()
        assert materialize(LazyRelabeling(sender(), {"send": "emit"})) == eager

    def test_relabeling_rejects_tau(self):
        with pytest.raises(InvalidProcessError, match="tau"):
            LazyRelabeling(sender(), {TAU: "x"})

    def test_wrappers_compose_with_products(self):
        lazy = LazyRestriction(LazyCCSProduct(sender(), receiver()), ["send"])
        eager = restrict(ccs_composition(sender(), receiver()), ["send"])
        assert materialize(lazy) == eager

    def test_synchronous_product_requires_alphabets(self):
        from repro.ccs.parser import parse_process

        with pytest.raises(InvalidProcessError, match="alphabet"):
            LazySynchronousProduct(CCSAdapter(parse_process("a.0")), sender())
