"""Tests for the on-the-fly equivalence checker and trace verification."""

from __future__ import annotations

import pytest

from repro.ccs.semantics import compile_to_fsp
from repro.ccs.stdlib import broken_vending_machine, vending_machine
from repro.core.errors import StateSpaceLimitError
from repro.core.fsp import TAU, from_transitions
from repro.explore import (
    LazyInterleavingProduct,
    build_implicit,
    check_implicit,
    verify_trace,
)
from repro.generators.families import (
    interleaved_cycles_pair,
    interleaved_cycles_product_size,
    token_ring_pair,
)


def cycle(n, action="a"):
    return from_transitions(
        [(f"s{i}", action, f"s{(i + 1) % n}") for i in range(n)],
        start="s0",
        all_accepting=True,
    )


class TestVerdicts:
    def test_equivalent_cyclic_pair_needs_the_dfs(self):
        # a 1-cycle vs a 2-cycle: bisimilar, but only coinduction proves it.
        result = check_implicit(cycle(1), cycle(2), "strong")
        assert result.equivalent and result.trace is None

    def test_missing_action_is_found_with_a_verified_trace(self):
        left = cycle(3)
        right = from_transitions(
            [("s0", "a", "s1"), ("s1", "a", "s2"), ("s2", "a", "s0"), ("s2", "b", "s0")],
            start="s0",
            all_accepting=True,
        )
        result = check_implicit(left, right, "strong")
        assert not result.equivalent
        assert result.trace == ("a", "a", "b")
        assert result.trace_verified and result.trace_in_left is False

    def test_branching_difference_is_found_but_not_trace_verified(self):
        # a.(b+c) vs a.b + a.c: bisimulation-inequivalent, trace-equivalent.
        merged = from_transitions(
            [("p", "a", "q"), ("q", "b", "r"), ("q", "c", "r")],
            start="p",
            all_accepting=True,
        )
        split = from_transitions(
            [("p", "a", "q1"), ("p", "a", "q2"), ("q1", "b", "r"), ("q2", "c", "r")],
            start="p",
            all_accepting=True,
        )
        result = check_implicit(merged, split, "strong")
        assert not result.equivalent
        assert result.trace is not None and not result.trace_verified

    def test_extension_mismatch_at_the_roots(self):
        accepting = from_transitions([], start="p", accepting=["p"])
        rejecting = from_transitions([], start="p", accepting=[])
        result = check_implicit(accepting, rejecting, "strong")
        assert not result.equivalent
        assert result.trace == () and result.trace_verified

    def test_weak_notion_absorbs_tau(self):
        quick = from_transitions([("p", "a", "q")], start="p", all_accepting=True)
        lazy = from_transitions(
            [("p", TAU, "m"), ("m", "a", "q")], start="p", all_accepting=True
        )
        assert not check_implicit(quick, lazy, "strong").equivalent
        assert check_implicit(quick, lazy, "observational").equivalent

    def test_vending_machines_differ_observationally(self):
        good = compile_to_fsp(*vending_machine())
        broken = compile_to_fsp(*broken_vending_machine())
        good = good.with_alphabet(good.alphabet | broken.alphabet)
        broken = broken.with_alphabet(good.alphabet)
        result = check_implicit(good, broken, "observational")
        assert not result.equivalent

    def test_unknown_notion_rejected(self):
        with pytest.raises(ValueError, match="on-the-fly"):
            check_implicit(cycle(2), cycle(2), "failure")

    def test_max_pairs_budget_raises(self):
        left = LazyInterleavingProduct(cycle(9, "a"), cycle(9, "b"))
        right = LazyInterleavingProduct(cycle(9, "a"), cycle(9, "b"))
        with pytest.raises(StateSpaceLimitError, match="exceeded 5 pairs"):
            check_implicit(left, right, "strong", max_pairs=5)


class TestEarlyExit:
    def test_composed_fault_found_in_a_vanishing_fraction(self):
        ok, bad = interleaved_cycles_pair([6, 6, 6, 6])
        product = interleaved_cycles_product_size([6, 6, 6, 6])
        result = check_implicit(build_implicit(ok), build_implicit(bad), "strong")
        assert not result.equivalent and result.trace_verified
        assert result.trace[-1] == "snag"
        assert result.pairs_visited <= 0.01 * product

    def test_token_ring_fault_is_weakly_visible(self):
        ok, bad = token_ring_pair(4)
        result = check_implicit(build_implicit(ok), build_implicit(bad), "observational")
        assert not result.equivalent and result.trace_verified

    def test_identical_composed_systems_are_equivalent(self):
        ok, _bad = interleaved_cycles_pair([3, 3])
        result = check_implicit(build_implicit(ok), build_implicit(ok), "strong")
        assert result.equivalent


class TestVerifyTrace:
    def test_replay_confirms_a_real_trace(self):
        left = cycle(2)
        right = from_transitions([("s0", "a", "s1")], start="s0", all_accepting=True)
        verified, in_left = verify_trace(left, right, ("a", "a"), "strong")
        assert verified and in_left is True

    def test_replay_rejects_a_shared_trace(self):
        verified, in_left = verify_trace(cycle(2), cycle(3), ("a",), "strong")
        assert not verified and in_left is None

    def test_weak_replay_skips_tau(self):
        lazy = from_transitions(
            [("p", TAU, "m"), ("m", "a", "q")], start="p", all_accepting=True
        )
        dead = from_transitions([], start="p", all_accepting=True, alphabet={"a"})
        verified, in_left = verify_trace(lazy, dead, (TAU, "a"), "observational")
        assert verified and in_left is True

    def test_unknown_notion_rejected(self):
        with pytest.raises(ValueError, match="verification"):
            verify_trace(cycle(1), cycle(1), ("a",), "language")
