"""Differential-testing oracle for the state-space reductions.

The reductions of :mod:`repro.explore.reduce` are only worth having if they
are *silently* correct: a soundness bug produces a wrong verdict, not an
exception.  So every property here is differential -- the unreduced checker
is the oracle and each ``reduction=`` mode (times each frontier) must agree
with it on hypothesis-generated random ``SystemSpec`` trees:

* verdict parity for strong and observational equivalence;
* witness validity -- any trace reported verified under a reduction must
  replay as a genuine distinguishing trace on the *raw* systems;
* deadlock / livelock parity for ``find_stuck``, including trace realism
  for the modes whose traces are exact (everything except non-label-
  preserving symmetry, which reports traces modulo the symmetry);
* declared-symmetry validation on the trees the generator *constructs* to
  be symmetric (interleavings of identical components).

``REDUCTION_ORACLE_EXAMPLES`` scales the hypothesis example budget (the CI
nightly lane raises it via a workflow input).
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.fsp import TAU
from repro.explore.onthefly import check_implicit, verify_trace
from repro.explore.reduce import (
    FRONTIERS,
    REDUCTIONS,
    FullPermutationSymmetry,
    SymmetryReducer,
    annotate_symmetry,
    declared_symmetry,
)
from repro.explore.system import (
    HideSpec,
    LeafSpec,
    ProductSpec,
    RestrictSpec,
    build_implicit,
)
from repro.protocols.check import find_stuck
from tests.property.strategies import fsp_strategy

MAX_EXAMPLES = int(os.environ.get("REDUCTION_ORACLE_EXAMPLES", "25"))
ORACLE_SETTINGS = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

REDUCED_MODES = tuple(mode for mode in REDUCTIONS if mode != "none")


@st.composite
def system_spec_strategy(draw, max_leaves: int = 3):
    """A random small composition tree over random FSP leaves."""
    num_leaves = draw(st.integers(min_value=1, max_value=max_leaves))
    tree = None
    for index in range(num_leaves):
        leaf = LeafSpec(
            draw(fsp_strategy(max_states=3, max_transitions=6, all_accepting=True)),
            label=f"leaf{index}",
        )
        if tree is None:
            tree = leaf
        else:
            op = draw(st.sampled_from(["ccs", "interleave"]))
            tree = ProductSpec(op, tree, leaf)
    wrapper = draw(st.sampled_from(["none", "restrict", "hide"]))
    if wrapper == "restrict":
        tree = RestrictSpec(tree, frozenset({"b"}))
    elif wrapper == "hide":
        tree = HideSpec(tree, frozenset({"b"}))
    return tree


@st.composite
def symmetric_spec_strategy(draw, copies: int = 3):
    """An interleaving of identical components, annotated with the (true)
    full-permutation symmetry -- label-preserving by construction."""
    component = draw(fsp_strategy(max_states=3, max_transitions=6, all_accepting=True))
    tree = LeafSpec(component, label="copy0")
    for index in range(1, copies):
        tree = ProductSpec("interleave", tree, LeafSpec(component, label=f"copy{index}"))
    return annotate_symmetry(
        tree, FullPermutationSymmetry((tuple(range(copies)),))
    )


def _all_routes(left, right, notion):
    baseline = check_implicit(left, right, notion)
    routes = []
    for mode in REDUCED_MODES:
        for frontier in FRONTIERS:
            routes.append(
                (mode, frontier, check_implicit(left, right, notion, reduction=mode, frontier=frontier))
            )
    # the compact frontier alone must also agree
    routes.append(("none", "compact", check_implicit(left, right, notion, frontier="compact")))
    return baseline, routes


@given(left=system_spec_strategy(), right=system_spec_strategy())
@ORACLE_SETTINGS
def test_verdict_parity_random_trees(left, right):
    for notion in ("strong", "observational"):
        baseline, routes = _all_routes(left, right, notion)
        for mode, frontier, result in routes:
            assert result.equivalent == baseline.equivalent, (
                f"{notion}/{mode}/{frontier} disagrees with the unreduced verdict"
            )
            assert result.reduction == mode


@given(spec=system_spec_strategy())
@ORACLE_SETTINGS
def test_self_equivalence_every_mode(spec):
    for notion in ("strong", "observational"):
        for mode in REDUCTIONS:
            assert check_implicit(spec, spec, notion, reduction=mode).equivalent


@given(left=system_spec_strategy(), right=system_spec_strategy())
@ORACLE_SETTINGS
def test_witness_validity_under_reduction(left, right):
    for notion in ("strong", "observational"):
        for mode in REDUCED_MODES:
            result = check_implicit(left, right, notion, reduction=mode, frontier="compact")
            if result.trace is not None and result.trace_verified:
                verified, _ = verify_trace(
                    build_implicit(left), build_implicit(right), result.trace, notion
                )
                assert verified, (
                    f"{mode} reported a verified trace that does not replay raw"
                )


def _admits_deadlock_after(spec, trace: tuple[str, ...]) -> bool:
    """Whether some path realising ``trace`` ends in a successor-free state."""
    node = build_implicit(spec)
    macro = {node.initial()}
    for action in trace:
        macro = {
            target
            for state in macro
            for label, target in node.successors(state)
            if label == action
        }
        if not macro:
            return False
    return any(not tuple(node.successors(state)) for state in macro)


@given(spec=system_spec_strategy())
@ORACLE_SETTINGS
def test_stuck_parity_random_trees(spec):
    baseline = find_stuck(spec, frontier="exact")
    for mode in REDUCTIONS:
        for frontier in FRONTIERS:
            report = find_stuck(spec, reduction=mode, frontier=frontier)
            assert (report is None) == (baseline is None), (
                f"find_stuck {mode}/{frontier} disagrees on stuck existence"
            )
            if report is not None:
                assert report.kind == baseline.kind
                assert report.reduction == mode
                if report.kind == "deadlock":
                    # random trees carry no symmetry annotation, so every
                    # mode's trace is a genuine trace of the raw system
                    assert _admits_deadlock_after(spec, report.trace)


@given(spec=symmetric_spec_strategy())
@ORACLE_SETTINGS
def test_symmetric_trees_validate_and_agree(spec):
    symmetries = declared_symmetry(spec)
    assert symmetries is not None
    # the declaration is *true*: generator-image validation must pass on
    # every reachable state (validate=True raises on the first violation)
    reducer = SymmetryReducer(build_implicit(spec), symmetries, validate=True)
    seen = {reducer.initial()}
    frontier = [reducer.initial()]
    while frontier:
        state = frontier.pop()
        for _action, target in reducer.successors(state):
            if target not in seen:
                seen.add(target)
                frontier.append(target)
    # and verdicts agree with the oracle in every mode
    for notion in ("strong", "observational"):
        baseline = check_implicit(spec, spec, notion)
        for mode in REDUCED_MODES:
            assert check_implicit(spec, spec, notion, reduction=mode).equivalent == baseline.equivalent
    stuck_baseline = find_stuck(spec, frontier="exact")
    for mode in REDUCED_MODES:
        report = find_stuck(spec, reduction=mode)
        assert (report is None) == (stuck_baseline is None)
        if report is not None:
            assert report.kind == stuck_baseline.kind


@given(
    spec=symmetric_spec_strategy(),
    other=fsp_strategy(max_states=3, max_transitions=6, all_accepting=True),
)
@ORACLE_SETTINGS
def test_symmetric_vs_foreign_parity(spec, other):
    """Symmetry must not mask differences against an unrelated system."""
    for notion in ("strong", "observational"):
        baseline = check_implicit(spec, other, notion)
        for mode in REDUCED_MODES:
            result = check_implicit(spec, other, notion, reduction=mode)
            assert result.equivalent == baseline.equivalent


def test_livelock_parity_tau_cycle():
    """A tau cycle beyond the observable prefix: every mode must call it."""
    from repro.core.fsp import from_transitions

    system = from_transitions(
        [("s", "go", "l1"), ("l1", TAU, "l2"), ("l2", TAU, "l1")],
        start="s",
        all_accepting=True,
    )
    for mode in REDUCTIONS:
        for frontier in FRONTIERS:
            report = find_stuck(system, reduction=mode, frontier=frontier)
            assert report is not None and report.kind == "livelock", (
                f"livelock missed under {mode}/{frontier}"
            )
