"""Tests for the ImplicitLTS protocol, adapters and bounded materialisation."""

from __future__ import annotations

import pytest

from repro.ccs.parser import parse_definitions, parse_process
from repro.ccs.semantics import compile_to_fsp
from repro.core.errors import InvalidProcessError, StateSpaceLimitError
from repro.core.fsp import TAU, from_transitions
from repro.explore import (
    CCSAdapter,
    FSPAdapter,
    ImplicitLTS,
    as_implicit,
    materialize,
    materialize_lts,
    reachable_stats,
)


def chain(n=3):
    return from_transitions(
        [(f"s{i}", "a", f"s{i + 1}") for i in range(n)], start="s0", all_accepting=True
    )


class TestFSPAdapter:
    def test_round_trips_identically(self):
        fsp = from_transitions(
            [("p", "a", "q"), ("q", TAU, "p")], start="p", accepting=["q"]
        )
        assert materialize(FSPAdapter(fsp)) == fsp

    def test_as_implicit_wraps_and_passes_through(self):
        fsp = chain()
        adapter = as_implicit(fsp)
        assert isinstance(adapter, FSPAdapter)
        assert as_implicit(adapter) is adapter

    def test_as_implicit_rejects_other_types(self):
        with pytest.raises(InvalidProcessError, match="implicit"):
            as_implicit("not a process")

    def test_unreachable_states_are_dropped(self):
        fsp = from_transitions(
            [("p", "a", "q"), ("island", "a", "island")], start="p", all_accepting=True
        )
        assert materialize(fsp).states == frozenset({"p", "q"})


class TestCCSAdapter:
    def test_matches_compile_to_fsp(self):
        definitions = parse_definitions("LEFT := in.mid!.LEFT\nRIGHT := mid.out!.RIGHT")
        term = parse_process("(LEFT | RIGHT) \\ {mid}")
        assert materialize(CCSAdapter(term, definitions)) == compile_to_fsp(term, definitions)

    def test_lazy_exploration_ignores_global_bounds(self):
        # compile_to_fsp would need max_states up front; the adapter only
        # pays for the states a bounded sweep actually touches.
        definitions = parse_definitions("P := a.P")
        adapter = CCSAdapter(parse_process("P"), definitions)
        stats = reachable_stats(adapter, limit=10)
        assert stats.complete and stats.states == 1

    def test_tau_is_translated_to_the_kernel_marker(self):
        adapter = CCSAdapter(parse_process("tau.0"))
        moves = list(adapter.successors(adapter.initial()))
        assert moves[0][0] == TAU


class TestMaterialize:
    def test_limit_raises_by_default(self):
        with pytest.raises(StateSpaceLimitError, match="exceeded 2"):
            materialize(chain(5), limit=2)

    def test_limit_truncate_keeps_a_valid_prefix(self):
        truncated = materialize(chain(5), limit=3, on_limit="truncate")
        assert truncated.num_states == 3
        # no dangling transitions into unexplored states
        assert all(dst in truncated.states for _s, _a, dst in truncated.transitions)

    def test_bad_on_limit_value(self):
        with pytest.raises(ValueError, match="on_limit"):
            materialize(chain(), limit=1, on_limit="explode")

    def test_name_collisions_are_rejected(self):
        class Colliding(ImplicitLTS):
            def initial(self):
                return 0

            def successors(self, state):
                if state == 0:
                    yield "a", 1
                    yield "a", 2

            def state_name(self, state):
                return "same" if state else "start"

        with pytest.raises(InvalidProcessError, match="collision"):
            materialize(Colliding())

    def test_materialize_lts_reaches_the_kernel(self):
        lts = materialize_lts(chain(3))
        assert lts.to_fsp().num_states == 4


class TestReachableStats:
    def test_exact_counts(self):
        stats = reachable_stats(chain(4))
        assert (stats.states, stats.transitions, stats.complete) == (5, 4, True)

    def test_limit_marks_incomplete(self):
        stats = reachable_stats(chain(10), limit=4)
        assert not stats.complete
        assert stats.states == 4


class TestCCSAdapterBound:
    def test_infinite_state_terms_are_cut_off(self):
        from repro.ccs.parser import parse_definitions, parse_process
        from repro.explore import check_implicit

        definitions = parse_definitions("A := a.(A | A)")
        adapter = CCSAdapter(parse_process("A"), definitions, max_states=50)
        with pytest.raises(StateSpaceLimitError, match="exceeded 50"):
            check_implicit(adapter, CCSAdapter(parse_process("A"), definitions, max_states=50))

    def test_spec_max_states_reaches_the_lazy_route(self):
        from repro.ccs.parser import parse_definitions, parse_process
        from repro.explore import TermSpec, build_implicit

        spec = TermSpec(
            parse_process("A"), parse_definitions("A := a.(A | A)"), max_states=30
        )
        with pytest.raises(StateSpaceLimitError, match="exceeded 30"):
            reachable_stats(build_implicit(spec))
