"""Tests for the vector-backend dispatch in compositional minimisation.

``minimize_compositionally`` defaults to ``backend="auto"``: each
intermediate quotient runs on the vectorized numpy kernel once its state
count clears ``VECTOR_STATE_THRESHOLD`` (and numpy is present), and on the
sequential Python solvers below it.  The tests pin the dispatch decision
itself and the end-to-end agreement of the two kernels on real systems.
"""

from __future__ import annotations

import pytest

import repro.explore.system
from repro.engine import default_engine
from repro.explore import compose_eager, minimize_compositionally
from repro.explore.system import VECTOR_STATE_THRESHOLD, _partition_backend
from repro.generators.families import redundant_interleaving_system, token_ring_system
from repro.protocols import build_scenario
from repro.utils.matrices import HAVE_NUMPY

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy is not installed")


class TestDispatchDecision:
    def test_explicit_backends_pass_through(self):
        assert _partition_backend(10, "python") == "python"
        assert _partition_backend(10**6, "python") == "python"
        assert _partition_backend(3, "vector") == "vector"

    @needs_numpy
    def test_auto_picks_vector_above_the_threshold(self):
        assert _partition_backend(VECTOR_STATE_THRESHOLD - 1, "auto") == "python"
        assert _partition_backend(VECTOR_STATE_THRESHOLD, "auto") == "vector"

    def test_auto_stays_python_without_numpy(self, monkeypatch):
        monkeypatch.setattr("repro.utils.matrices.HAVE_NUMPY", False)
        assert _partition_backend(10**6, "auto") == "python"


@needs_numpy
class TestBackendAgreement:
    """Force the vector path on small systems and require identical results."""

    @pytest.fixture(autouse=True)
    def tiny_threshold(self, monkeypatch):
        monkeypatch.setattr(repro.explore.system, "VECTOR_STATE_THRESHOLD", 1)

    @pytest.mark.parametrize(
        "spec_factory",
        [
            lambda: redundant_interleaving_system(3),
            lambda: token_ring_system(3),
            lambda: build_scenario("two_phase_commit", n=2).system,
            lambda: build_scenario("quorum_voting", n=3).system,
        ],
    )
    def test_auto_and_python_quotients_agree(self, spec_factory):
        spec = spec_factory()
        sequential = minimize_compositionally(spec, backend="python")
        vectorized = minimize_compositionally(spec, backend="auto")
        assert vectorized.num_states == sequential.num_states
        assert vectorized.num_transitions == sequential.num_transitions
        verdict = default_engine().check(sequential, vectorized, "observational")
        assert verdict.equivalent

    def test_quotient_still_shrinks_the_eager_product(self):
        spec = redundant_interleaving_system(3)
        assert (
            minimize_compositionally(spec, backend="auto").num_states
            < compose_eager(spec).num_states
        )
