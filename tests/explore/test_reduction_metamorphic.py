"""Metamorphic tests for the symmetric library scenarios.

Symmetry declarations promise that role indices are interchangeable; the
metamorphic consequence is that *which* indices a test perturbs must never
matter.  These tests permute crash-fault index sets in ``quorum_voting``
and rotate the crashed station in ``token_passing`` and assert that every
``protocol check`` / stuck-search verdict is invariant -- under the
unreduced route and under every reduction mode.

The canonical-form regression fixtures pin the byte rendering of each
symmetric family's canonical quotient (``canonical_bytes`` is hash-seed
independent by construction): any change to canonicalisation -- new
symmetry declarations, a different representative rule -- must show up
here as an explicit fixture diff, not as a silently different search.
Regenerate with::

    PYTHONPATH=src python tests/explore/test_reduction_metamorphic.py --regen
"""

from __future__ import annotations

import itertools
from pathlib import Path

import pytest

from repro.explore.reduce import REDUCTIONS, canonical_bytes
from repro.generators.families import (
    dining_philosophers_system,
    milner_scheduler_system,
    token_ring_system,
)
from repro.protocols.check import check_conformance, find_stuck
from repro.protocols.faults import Crash, apply_faults
from repro.protocols.library import quorum_voting, token_passing

FIXTURES = Path(__file__).parent / "fixtures"


# ----------------------------------------------------------------------
# Index-permutation invariance
# ----------------------------------------------------------------------
def _quorum_verdicts(n, f, indices, reduction):
    scenario = quorum_voting(n, f)
    faulty = apply_faults(scenario.system, tuple(Crash("validator", i) for i in indices))
    verdict = check_conformance(scenario.spec, faulty, reduction=reduction)
    return verdict.equivalent


@pytest.mark.parametrize("reduction", REDUCTIONS)
def test_quorum_crash_index_permutation_invariance(reduction):
    n, f = 5, 2
    for k, expected in ((f, True), (f + 1, False)):
        verdicts = {
            _quorum_verdicts(n, f, combo, reduction)
            for combo in itertools.combinations(range(n), k)
        }
        assert verdicts == {expected}, (
            f"crashing different validator {k}-subsets changed the verdict "
            f"under reduction={reduction}"
        )


@pytest.mark.parametrize("reduction", REDUCTIONS)
def test_token_passing_crash_rotation_invariance(reduction):
    scenario = token_passing(4)
    verdicts = set()
    kinds = set()
    for station in range(scenario.n):
        faulty = apply_faults(scenario.system, (Crash("station", station, at="wait"),))
        verdicts.add(
            check_conformance(scenario.spec, faulty, reduction=reduction).equivalent
        )
        report = find_stuck(faulty, reduction=reduction)
        kinds.add(None if report is None else report.kind)
    assert len(verdicts) == 1, (
        f"rotating the crashed station changed the conformance verdict "
        f"under reduction={reduction}"
    )
    assert len(kinds) == 1, (
        f"rotating the crashed station changed the stuck kind under "
        f"reduction={reduction}"
    )


@pytest.mark.parametrize("reduction", REDUCTIONS)
def test_healthy_library_scenarios_conform_every_mode(reduction):
    for scenario in (quorum_voting(3, 1), token_passing(3)):
        verdict = check_conformance(scenario.spec, scenario.system, reduction=reduction)
        assert verdict.equivalent, (
            f"{scenario.name} healthy system rejected under reduction={reduction}"
        )


# ----------------------------------------------------------------------
# Canonical-form regression fixtures
# ----------------------------------------------------------------------
def _canonical_cases():
    return {
        "token_ring_n3": token_ring_system(3),
        "milner_scheduler_n3": milner_scheduler_system(3),
        "dining_philosophers_n3": dining_philosophers_system(3),
        "quorum_voting_n3_f1": quorum_voting(3, 1).system,
        "token_passing_n3": token_passing(3).system,
    }


@pytest.mark.parametrize("name", sorted(_canonical_cases()))
def test_canonical_form_fixture(name):
    rendered = canonical_bytes(_canonical_cases()[name])
    fixture = FIXTURES / f"canonical_{name}.txt"
    assert fixture.exists(), (
        f"missing fixture {fixture}; regenerate with "
        "PYTHONPATH=src python tests/explore/test_reduction_metamorphic.py --regen"
    )
    assert rendered == fixture.read_bytes(), (
        f"canonical quotient of {name} changed; if intentional, regenerate "
        "the fixtures and review the diff"
    )


def test_canonical_bytes_stable_across_calls():
    spec = milner_scheduler_system(3)
    assert canonical_bytes(spec) == canonical_bytes(milner_scheduler_system(3))


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        FIXTURES.mkdir(exist_ok=True)
        for name, spec in _canonical_cases().items():
            path = FIXTURES / f"canonical_{name}.txt"
            path.write_bytes(canonical_bytes(spec))
            print(f"wrote {path}")
    else:
        sys.exit("pass --regen to regenerate the canonical fixtures")
