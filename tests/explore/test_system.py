"""Composition specs: three routes, JSON documents, compositional minimisation."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidProcessError
from repro.core.fsp import from_transitions
from repro.engine import Engine
from repro.equivalence.minimize import minimize_observational
from repro.explore import (
    HideSpec,
    LeafSpec,
    ProductSpec,
    RelabelSpec,
    RestrictSpec,
    build_implicit,
    compose_eager,
    materialize,
    minimize_compositionally,
    spec_from_document,
    spec_to_document,
)
from repro.generators.families import (
    dining_philosophers_system,
    milner_scheduler_system,
    redundant_interleaving_system,
    token_ring_system,
)


def leaf(seed=0):
    from repro.generators.random_fsp import random_fsp

    return LeafSpec(random_fsp(4, alphabet=("a", "a!", "b"), all_accepting=True, seed=seed))


def sample_spec():
    return HideSpec(ProductSpec("ccs", leaf(1), leaf(2)), frozenset({"a"}))


class TestRoutes:
    def test_lazy_route_materialises_to_the_eager_route(self):
        spec = sample_spec()
        assert materialize(build_implicit(spec)) == (
            compose_eager(spec).restrict_to_reachable()
        )

    def test_operator_specs_cover_all_constructors(self):
        spec = RelabelSpec(
            RestrictSpec(ProductSpec("interleave", leaf(3), leaf(4)), frozenset({"b"})),
            {"a": "c"},
        )
        assert materialize(build_implicit(spec)) == (
            compose_eager(spec).restrict_to_reachable()
        )

    def test_unknown_product_operator_rejected(self):
        with pytest.raises(InvalidProcessError, match="operator"):
            ProductSpec("tensor", leaf(), leaf())


class TestMinimizeCompositionally:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: dining_philosophers_system(3),
            lambda: token_ring_system(4),
            lambda: milner_scheduler_system(3),
            lambda: redundant_interleaving_system(2, 3, 2),
        ],
    )
    def test_agrees_with_eager_minimise_after_compose(self, build):
        spec = build()
        compositional = minimize_compositionally(spec)
        eager = minimize_observational(compose_eager(spec))
        verdict = Engine().check(
            compositional, eager, "observational", align=True, witness=False
        )
        assert verdict.equivalent
        # both are minimal, so the quotients have the same size
        assert compositional.num_states == eager.num_states

    def test_redundancy_is_removed_before_the_product(self):
        spec = redundant_interleaving_system(2, 3, 3)
        assert minimize_compositionally(spec).num_states < compose_eager(spec).num_states


class TestDocuments:
    def test_round_trip_preserves_the_composition(self):
        spec = sample_spec()
        document = spec_to_document(spec)
        assert compose_eager(spec_from_document(document)) == compose_eager(spec)

    def test_term_leaves_round_trip(self):
        document = {
            "op": "restrict",
            "of": {
                "op": "ccs",
                "left": {"term": "LEFT", "definitions": "LEFT := in.mid!.LEFT"},
                "right": {"term": "RIGHT", "definitions": "RIGHT := mid.out!.RIGHT"},
            },
            "channels": ["mid"],
        }
        spec = spec_from_document(document)
        rebuilt = spec_from_document(spec_to_document(spec))
        assert compose_eager(rebuilt) == compose_eager(spec)

    def test_default_resolver_accepts_inline_processes_only(self):
        fsp = from_transitions([("p", "a", "q")], start="p", all_accepting=True)
        document = spec_to_document(LeafSpec(fsp))
        assert compose_eager(spec_from_document(document)) == fsp
        with pytest.raises(InvalidProcessError, match="inline"):
            spec_from_document({"file": "nope.json"})

    @pytest.mark.parametrize(
        "document, message",
        [
            ({"op": "ccs", "left": {"term": "0"}}, "missing 'right'"),
            ({"op": "restrict", "of": {"term": "0"}}, "channels"),
            ({"op": "hide", "channels": ["a"]}, "missing 'of'"),
            ({"op": "relabel", "of": {"term": "0"}}, "mapping"),
            ({"op": "quotient", "of": {"term": "0"}}, "unknown system operator"),
            ([1, 2], "JSON object"),
        ],
    )
    def test_malformed_documents_are_rejected(self, document, message):
        with pytest.raises(InvalidProcessError, match=message):
            spec_from_document(document)

    def test_describe_renders_the_shape(self):
        assert "ccs" in sample_spec().of.describe()
        assert dining_philosophers_system(2).describe().startswith("(")
