"""Tests for the CCS standard library of example systems."""

from __future__ import annotations

import pytest

from repro.ccs.parser import parse_definitions, parse_process
from repro.ccs.semantics import compile_to_fsp
from repro.ccs.stdlib import (
    alternating_bit_protocol,
    broken_vending_machine,
    buffer_implementation_fsp,
    buffer_specification_fsp,
    compile_system,
    mutual_exclusion,
    one_place_buffer,
    vending_machine,
    vending_machines_fsp,
)
from repro.equivalence.failure import failure_equivalent_processes
from repro.equivalence.language import accepted_strings_upto, language_equivalent_processes
from repro.equivalence.observational import observationally_equivalent_processes
from repro.equivalence.strong import strongly_equivalent_processes
from repro.reductions.theorem41c import make_restricted


def _align(first, second):
    alphabet = first.alphabet | second.alphabet
    return first.with_alphabet(alphabet), second.with_alphabet(alphabet)


class TestVendingMachines:
    def test_machines_are_language_equivalent_but_not_observationally(self):
        good, broken = vending_machines_fsp()
        good, broken = _align(good, broken)
        assert language_equivalent_processes(good, broken)
        assert not observationally_equivalent_processes(good, broken)

    def test_machines_are_not_failure_equivalent(self):
        good, broken = vending_machines_fsp()
        good, broken = _align(good, broken)
        assert not failure_equivalent_processes(good, broken)

    def test_sizes_are_small(self):
        good, broken = vending_machines_fsp()
        assert good.num_states <= 4
        assert broken.num_states <= 5


class TestBuffers:
    def test_one_place_buffer_language(self):
        process = compile_system(one_place_buffer())
        strings = accepted_strings_upto(process, 3)
        assert ("in", "out!") in strings
        assert ("out!",) not in strings

    def test_two_place_buffer_implementation_matches_spec_weakly(self):
        spec, impl = buffer_specification_fsp(), buffer_implementation_fsp()
        spec, impl = _align(spec, impl)
        assert observationally_equivalent_processes(spec, impl)
        assert not strongly_equivalent_processes(spec, impl)

    def test_implementation_has_internal_steps(self):
        impl = buffer_implementation_fsp()
        assert impl.has_tau()


class TestMutualExclusion:
    def test_two_workers_never_both_in_critical_section(self):
        system = compile_system(mutual_exclusion(2))
        # no trace contains enter1 followed by enter2 without an exit1 in between
        for trace in accepted_strings_upto(system, 6):
            inside = set()
            for action in trace:
                if action.startswith("enter"):
                    inside.add(action[-1])
                    assert len(inside) <= 1, trace
                elif action.startswith("exit"):
                    inside.discard(action[-1])

    def test_single_worker_degenerates_to_a_cycle(self):
        system = compile_system(mutual_exclusion(1))
        assert ("enter1", "exit1", "enter1") in accepted_strings_upto(system, 3)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            mutual_exclusion(0)


class TestAlternatingBit:
    @pytest.mark.parametrize("lossy", [False, True])
    def test_protocol_refines_the_send_deliver_buffer(self, lossy):
        protocol = compile_system(alternating_bit_protocol(lossy=lossy), max_states=20_000)
        spec = compile_to_fsp(parse_process("B"), parse_definitions("B := send.deliver!.B"))
        protocol, spec = _align(protocol, spec)
        assert observationally_equivalent_processes(protocol, spec)

    def test_lossy_protocol_is_larger_than_lossless(self):
        lossless = compile_system(alternating_bit_protocol(lossy=False), max_states=20_000)
        lossy = compile_system(alternating_bit_protocol(lossy=True), max_states=20_000)
        assert lossy.num_states >= lossless.num_states

    def test_protocol_is_failure_equivalent_to_spec(self):
        protocol = compile_system(alternating_bit_protocol(lossy=False), max_states=20_000)
        spec = compile_to_fsp(parse_process("B"), parse_definitions("B := send.deliver!.B"))
        protocol, spec = _align(make_restricted(protocol), make_restricted(spec))
        assert failure_equivalent_processes(protocol, spec)
