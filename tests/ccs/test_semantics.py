"""Tests for the CCS SOS semantics and the compilation to FSPs."""

from __future__ import annotations

import pytest

from repro.ccs.parser import parse_definitions, parse_process
from repro.ccs.semantics import compile_to_fsp, derivatives, observable_alphabet
from repro.ccs.syntax import Definitions, Nil, Parallel, Prefix, TAU_ACTION
from repro.core.classify import ModelClass, classify
from repro.core.errors import ExpressionError, StateSpaceLimitError
from repro.core.fsp import TAU
from repro.equivalence.language import accepted_strings_upto
from repro.equivalence.observational import observationally_equivalent_processes


class TestDerivatives:
    def test_nil_has_no_moves(self):
        assert derivatives(Nil()) == frozenset()

    def test_prefix(self):
        assert derivatives(Prefix("a", Nil())) == frozenset({("a", Nil())})

    def test_sum_collects_both_sides(self):
        term = parse_process("a.0 + b.0")
        assert {action for action, _ in derivatives(term)} == {"a", "b"}

    def test_parallel_interleaves(self):
        term = parse_process("a.0 | b.0")
        moves = derivatives(term)
        assert {action for action, _ in moves} == {"a", "b"}
        assert len(moves) == 2

    def test_parallel_synchronises_complements_into_tau(self):
        term = parse_process("a.0 | a!.0")
        moves = derivatives(term)
        actions = {action for action, _ in moves}
        assert TAU_ACTION in actions
        assert {"a", "a!"} <= actions
        tau_targets = [target for action, target in moves if action == TAU_ACTION]
        assert tau_targets == [Parallel(Nil(), Nil())]

    def test_restriction_blocks_channel_but_not_tau(self):
        term = parse_process("(a.0 | a!.0) \\ {a}")
        moves = derivatives(term)
        assert {action for action, _ in moves} == {TAU_ACTION}

    def test_relabeling_renames_actions_and_co_actions(self):
        term = parse_process("(a.b!.0)[c/a, d/b]")
        moves = derivatives(term)
        assert {action for action, _ in moves} == {"c"}
        (_, successor), = moves
        assert {action for action, _ in derivatives(successor)} == {"d!"}

    def test_reference_unfolds_definition(self):
        definitions = parse_definitions("P := a.P")
        moves = derivatives(parse_process("P"), definitions)
        assert {action for action, _ in moves} == {"a"}

    def test_unguarded_recursion_rejected(self):
        definitions = parse_definitions("P := P + a.0")
        with pytest.raises(ExpressionError):
            derivatives(parse_process("P"), definitions)

    def test_undefined_reference_rejected(self):
        with pytest.raises(ExpressionError):
            derivatives(parse_process("Unknown"), Definitions())


class TestCompilation:
    def test_finite_term_compiles_to_tree(self):
        process = compile_to_fsp(parse_process("a.b.0"))
        assert process.num_states == 3
        assert accepted_strings_upto(process, 3) == frozenset({(), ("a",), ("a", "b")})

    def test_compiled_process_is_restricted(self):
        process = compile_to_fsp(parse_process("a.0 + tau.b.0"))
        assert ModelClass.RESTRICTED in classify(process)

    def test_synchronisation_appears_as_tau(self):
        process = compile_to_fsp(parse_process("(a.0 | a!.0) \\ {a}"))
        assert process.has_tau()
        assert observable_alphabet(process) == frozenset()

    def test_recursion_produces_cycles(self):
        definitions = parse_definitions("P := a.b.P")
        process = compile_to_fsp(parse_process("P"), definitions)
        assert process.num_states == 2
        assert ("a",) in accepted_strings_upto(process, 1)

    def test_state_bound_enforced(self):
        definitions = parse_definitions("P := a.(P | b.0)")
        with pytest.raises(StateSpaceLimitError):
            compile_to_fsp(parse_process("P"), definitions, max_states=20)

    def test_explicit_alphabet_is_extended(self):
        process = compile_to_fsp(parse_process("a.0"), alphabet={"a", "b"})
        assert process.alphabet == frozenset({"a", "b"})

    def test_expansion_law_instance(self):
        """a.0 | b.0 is observationally equivalent to a.b.0 + b.a.0 (no synchronisation)."""
        parallel = compile_to_fsp(parse_process("a.0 | b.0"))
        expanded = compile_to_fsp(parse_process("a.b.0 + b.a.0"))
        assert observationally_equivalent_processes(parallel, expanded)

    def test_restriction_of_unsynchronised_channel_deadlocks(self):
        process = compile_to_fsp(parse_process("(a.b.0) \\ {a}"))
        assert accepted_strings_upto(process, 2) == frozenset({()})

    def test_tau_prefix_compiles_to_tau_transition(self):
        process = compile_to_fsp(parse_process("tau.a.0"))
        assert any(action == TAU for _s, action, _t in process.transitions)
