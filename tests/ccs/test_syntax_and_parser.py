"""Tests for CCS term syntax and the parser."""

from __future__ import annotations

import pytest

from repro.ccs.parser import parse_definitions, parse_process
from repro.ccs.syntax import (
    Definitions,
    Nil,
    Parallel,
    Prefix,
    ProcessRef,
    Relabeling,
    Restriction,
    Sum,
    TAU_ACTION,
    actions_of,
    channel_of,
    co,
    is_co_action,
)
from repro.core.errors import ExpressionError


class TestActions:
    def test_co_is_an_involution(self):
        assert co("a") == "a!"
        assert co("a!") == "a"
        assert co(co("send")) == "send"

    def test_tau_has_no_complement(self):
        with pytest.raises(ExpressionError):
            co(TAU_ACTION)

    def test_channel_of(self):
        assert channel_of("a!") == "a"
        assert channel_of("a") == "a"

    def test_is_co_action(self):
        assert is_co_action("a!")
        assert not is_co_action("a")


class TestAst:
    def test_operator_sugar(self):
        term = Prefix("a", Nil()) + Prefix("b", Nil()) | Nil()
        assert isinstance(term, Parallel)
        assert isinstance(term.left, Sum)

    def test_process_names_must_be_capitalised(self):
        with pytest.raises(ExpressionError):
            ProcessRef("lowercase")

    def test_definitions_lookup(self):
        definitions = Definitions().define("P", Prefix("a", Nil()))
        assert "P" in definitions
        assert definitions.lookup("P") == Prefix("a", Nil())
        with pytest.raises(ExpressionError):
            definitions.lookup("Q")

    def test_actions_of_folds_co_actions(self):
        term = parse_process("a.b!.0 + tau.0")
        assert actions_of(term) == frozenset({"a", "b"})

    def test_actions_of_through_definitions(self):
        definitions = parse_definitions("P := a.Q\nQ := b.P")
        assert actions_of(parse_process("P"), definitions) == frozenset({"a", "b"})

    def test_actions_of_relabeling(self):
        term = parse_process("(a.0)[c/a]")
        assert "c" in actions_of(term)


class TestParser:
    def test_nil(self):
        assert parse_process("0") == Nil()

    def test_prefix_chain(self):
        term = parse_process("a.b!.0")
        assert term == Prefix("a", Prefix("b!", Nil()))

    def test_bare_action_abbreviates_prefix_nil(self):
        assert parse_process("a") == Prefix("a", Nil())
        assert parse_process("tau") == Prefix(TAU_ACTION, Nil())

    def test_sum_and_parallel_precedence(self):
        term = parse_process("a.0 + b.0 | c.0")
        assert isinstance(term, Sum)
        assert isinstance(term.right, Parallel)

    def test_restriction(self):
        term = parse_process("(a.0 | a!.0) \\ {a}")
        assert isinstance(term, Restriction)
        assert term.channels == frozenset({"a"})

    def test_restriction_multiple_channels(self):
        term = parse_process("(a.0) \\ {a, b, c}")
        assert term.channels == frozenset({"a", "b", "c"})

    def test_relabeling(self):
        term = parse_process("(a.0)[b/a]")
        assert isinstance(term, Relabeling)
        assert term.as_dict() == {"a": "b"}

    def test_process_reference(self):
        assert parse_process("Worker") == ProcessRef("Worker")

    def test_tau_prefix(self):
        term = parse_process("tau.a.0")
        assert term == Prefix(TAU_ACTION, Prefix("a", Nil()))

    def test_parse_errors(self):
        for text in ("", "a +", "(a.0", "a.0)", "a.0 \\ {A}", "a.0 [b]"):
            with pytest.raises(ExpressionError):
                parse_process(text)

    def test_parse_definitions(self):
        definitions = parse_definitions(
            """
            # a comment
            P := a.Q

            Q := b!.P
            """
        )
        assert "P" in definitions and "Q" in definitions

    def test_parse_definitions_requires_assignment(self):
        with pytest.raises(ExpressionError):
            parse_definitions("P = a.0")

    def test_round_trip_via_str(self):
        term = parse_process("(a.0 | a!.0) \\ {a} + tau.0")
        assert parse_process(str(term)) == term
