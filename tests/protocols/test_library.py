"""Tests for the scenario library: every classic, plus the JSON document layer."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidProcessError
from repro.explore import build_implicit, reachable_stats
from repro.protocols import (
    SCENARIOS,
    build_scenario,
    check_conformance,
    find_stuck,
    scenario_from_document,
    scenario_names,
    sweep_crashes,
    system_from_document,
)

SMALL_SIZES = {
    "two_phase_commit": 2,
    "quorum_voting": 3,
    "ring_election": 3,
    "token_passing": 3,
}


@pytest.fixture(params=sorted(SCENARIOS))
def scenario(request):
    return build_scenario(request.param, n=SMALL_SIZES[request.param])


class TestEveryScenario:
    def test_implementation_conforms_to_its_spec(self, scenario):
        verdict = check_conformance(scenario.spec, scenario.system)
        assert verdict.equivalent
        assert verdict.stats.details["route"].startswith("on-the-fly")

    def test_mutant_is_caught_with_a_verified_trace(self, scenario):
        verdict = check_conformance(scenario.spec, scenario.mutant)
        assert not verdict.equivalent
        assert verdict.stats.details["trace_verified"] is True
        assert verdict.stats.details["trace"]

    def test_fault_tolerance_sweep_is_confirmed(self, scenario):
        assert sweep_crashes(scenario).confirmed

    def test_sizes_are_recorded_and_slots_cover_the_sweep(self, scenario):
        assert scenario.n == SMALL_SIZES[scenario.name]
        assert len(scenario.crash_slots) >= scenario.f + 1
        assert scenario.protocol.name == scenario.name

    def test_system_is_finite_and_explorable(self, scenario):
        stats = reachable_stats(build_implicit(scenario.system))
        assert stats.complete
        assert stats.states >= 2


class TestScenarioDetails:
    def test_coordinator_crash_wedges_two_phase_commit_before_committing(self):
        from repro.protocols import Crash, apply_fault

        scenario = build_scenario("two_phase_commit", n=2)
        crashed = apply_fault(scenario.system, Crash("coordinator", 0))
        stuck = find_stuck(crashed)
        assert stuck is not None
        assert stuck.kind == "deadlock"
        assert "commit" not in stuck.trace

    def test_quorum_voting_decides_exactly_once(self):
        scenario = build_scenario("quorum_voting", n=3)
        stuck = find_stuck(scenario.system)
        # the one-shot protocol terminates -- but only after deciding
        assert stuck is not None and stuck.kind == "deadlock"
        assert "decide" in stuck.trace

    def test_ring_election_announces_the_maximum(self):
        scenario = build_scenario("ring_election", n=3)
        stuck = find_stuck(scenario.system)
        assert stuck is not None and "leader2" in stuck.trace

    def test_ring_mutant_elects_the_wrong_leader(self):
        scenario = build_scenario("ring_election", n=3)
        verdict = check_conformance(scenario.spec, scenario.mutant)
        assert not verdict.equivalent

    def test_token_passing_serves_round_robin_forever(self):
        scenario = build_scenario("token_passing", n=3)
        assert find_stuck(scenario.system) is None


class TestValidation:
    def test_quorum_voting_enforces_the_intersection_bound(self):
        with pytest.raises(InvalidProcessError, match="2f"):
            build_scenario("quorum_voting", n=2, f=1)

    def test_minimum_sizes(self):
        with pytest.raises(InvalidProcessError):
            build_scenario("two_phase_commit", n=0)
        with pytest.raises(InvalidProcessError):
            build_scenario("ring_election", n=1)
        with pytest.raises(InvalidProcessError):
            build_scenario("token_passing", n=1)

    def test_zero_tolerance_protocols_reject_a_fault_budget(self):
        for name in ("two_phase_commit", "ring_election", "token_passing"):
            with pytest.raises(InvalidProcessError, match="f must be 0"):
                build_scenario(name, n=3, f=1)

    def test_unknown_scenario_name(self):
        with pytest.raises(InvalidProcessError, match="unknown scenario"):
            build_scenario("three_phase_commit")

    def test_scenario_names_are_sorted(self):
        assert scenario_names() == tuple(sorted(SCENARIOS))


class TestDocuments:
    def test_bare_name_builds_the_default_size(self):
        scenario = scenario_from_document("quorum_voting")
        assert (scenario.n, scenario.f) == (5, 2)

    def test_mapping_overrides_sizes(self):
        scenario = scenario_from_document({"name": "quorum_voting", "n": 3, "f": 1})
        assert (scenario.n, scenario.f) == (3, 1)

    def test_malformed_scenario_documents_are_rejected(self):
        with pytest.raises(InvalidProcessError):
            scenario_from_document(42)
        with pytest.raises(InvalidProcessError):
            scenario_from_document({"n": 3})

    def test_system_document_sides(self):
        base = {"name": "two_phase_commit", "n": 2}
        scenario = build_scenario("two_phase_commit", n=2)
        assert system_from_document(base) == scenario.system
        assert system_from_document({**base, "side": "spec"}) == scenario.spec
        assert system_from_document({**base, "side": "mutant"}) == scenario.mutant

    def test_system_document_applies_faults_in_order(self):
        from repro.protocols import Crash, apply_fault

        document = {
            "name": "two_phase_commit",
            "n": 2,
            "faults": [{"kind": "crash", "role": "coordinator", "index": 0}],
        }
        scenario = build_scenario("two_phase_commit", n=2)
        assert system_from_document(document) == apply_fault(
            scenario.system, Crash("coordinator", 0)
        )

    def test_unknown_side_is_rejected(self):
        with pytest.raises(InvalidProcessError, match="side"):
            system_from_document({"name": "two_phase_commit", "side": "oracle"})
