"""Tests for fault injection: leaf rewrites, tree rewrites, JSON documents."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidProcessError
from repro.core.fsp import ACCEPT, TAU, from_transitions
from repro.protocols import (
    Byzantine,
    Crash,
    Omission,
    Snag,
    apply_fault,
    apply_faults,
    build_scenario,
    chaos_leaf,
    check_conformance,
    crash_leaf,
    fault_from_document,
    fault_to_document,
    find_stuck,
)


def pingpong():
    return from_transitions(
        [("a", "go", "b"), ("b", "back", "a")], start="a", all_accepting=True
    )


class TestCrashLeaf:
    def test_cut_state_loses_its_moves_and_falls_into_crashed(self):
        felled = crash_leaf(pingpong(), at="b")
        assert ("b", "back", "a") not in felled.transitions
        assert ("b", TAU, "crashed") in felled.transitions
        assert ("a", "go", "b") in felled.transitions
        # the crashed state is terminal for style="stop"
        assert not any(src == "crashed" for src, _, _ in felled.transitions)

    def test_default_cut_is_the_start_state(self):
        felled = crash_leaf(pingpong())
        assert ("a", TAU, "crashed") in felled.transitions
        assert ("a", "go", "b") not in felled.transitions

    def test_crashed_state_stays_accepting(self):
        felled = crash_leaf(pingpong(), at="b")
        assert ("crashed", ACCEPT) in felled.extensions

    def test_spin_style_diverges_instead_of_stopping(self):
        felled = crash_leaf(pingpong(), at="b", style="spin")
        assert ("crashed", TAU, "crashed") in felled.transitions

    def test_fresh_name_avoids_collisions(self):
        taken = from_transitions(
            [("crashed", "go", "crashed")], start="crashed", all_accepting=True
        )
        felled = crash_leaf(taken)
        assert "crashed_" in felled.states

    def test_bad_cut_state_and_style_are_rejected(self):
        with pytest.raises(InvalidProcessError):
            crash_leaf(pingpong(), at="nowhere")
        with pytest.raises(InvalidProcessError):
            crash_leaf(pingpong(), style="smoulder")


class TestChaosLeaf:
    def test_chaos_offers_the_whole_alphabet_forever(self):
        chaotic = chaos_leaf(pingpong())
        assert chaotic.states == frozenset({"chaos"})
        assert chaotic.transitions == frozenset(
            {("chaos", "go", "chaos"), ("chaos", "back", "chaos")}
        )

    def test_chaos_is_accepting_even_without_source_extensions(self):
        bare = from_transitions([("a", "go", "b")], start="a")
        assert ("chaos", ACCEPT) in chaos_leaf(bare).extensions


class TestTreeRewrites:
    def test_crash_targets_one_named_leaf(self):
        scenario = build_scenario("token_passing", n=3)
        crashed = apply_fault(scenario.system, Crash("station", 1, at="wait"))
        assert crashed != scenario.system
        assert not check_conformance(scenario.spec, crashed).equivalent

    def test_unknown_leaf_label_is_rejected(self):
        scenario = build_scenario("two_phase_commit", n=2)
        with pytest.raises(InvalidProcessError, match="no leaf labelled"):
            apply_fault(scenario.system, Crash("ghost", 7))

    def test_snag_rewrite_reproduces_the_library_mutant(self):
        scenario = build_scenario("two_phase_commit", n=2)
        snagged = apply_fault(
            scenario.system, Snag("participant", 0, at="ready", action="defect0")
        )
        assert snagged == scenario.mutant

    def test_byzantine_fake_can_forge_a_quorum_back(self):
        # n=3, f=1, threshold 2: two crashes starve the counter, but turning
        # one of the crashed validators Byzantine restores the quorum -- an
        # unconstrained sender happily supplies the missing votes.
        scenario = build_scenario("quorum_voting", n=3)
        starved = apply_faults(
            scenario.system, (Crash("validator", 0), Crash("validator", 1))
        )
        assert not check_conformance(scenario.spec, starved).equivalent
        forged = apply_faults(
            scenario.system, (Crash("validator", 0), Byzantine("validator", 1))
        )
        assert check_conformance(scenario.spec, forged).equivalent

    def test_apply_faults_composes_left_to_right(self):
        scenario = build_scenario("quorum_voting", n=3)
        both = apply_faults(
            scenario.system, (Crash("validator", 0), Crash("validator", 1))
        )
        one_then_other = apply_fault(
            apply_fault(scenario.system, Crash("validator", 0)), Crash("validator", 1)
        )
        assert both == one_then_other


class TestOmission:
    def test_lossy_vote_channel_can_wedge_two_phase_commit(self):
        scenario = build_scenario("two_phase_commit", n=2)
        assert find_stuck(scenario.system) is None
        lossy = apply_fault(scenario.system, Omission("yes0"))
        stuck = find_stuck(lossy)
        assert stuck is not None and stuck.kind == "deadlock"
        assert not check_conformance(scenario.spec, lossy).equivalent

    def test_omission_needs_a_restricted_channel(self):
        scenario = build_scenario("two_phase_commit", n=2)
        with pytest.raises(InvalidProcessError, match="restricted at the root"):
            apply_fault(scenario.system, Omission("nonexistent"))
        with pytest.raises(InvalidProcessError):
            apply_fault(scenario.spec, Omission("yes0"))


class TestDocuments:
    @pytest.mark.parametrize(
        "fault",
        [
            Crash("coordinator", 0),
            Crash("station", 2, at="relay", style="spin"),
            Crash("tally", None),
            Omission("yes0"),
            Byzantine("validator", 3),
            Byzantine("tally", None),
            Snag("participant", 0, at="ready", action="defect0"),
            Snag("tally", None, at="fired"),
        ],
    )
    def test_documents_round_trip(self, fault):
        assert fault_from_document(fault_to_document(fault)) == fault

    def test_singleton_targets_omit_the_index_key(self):
        assert "index" not in fault_to_document(Crash("tally", None))

    def test_malformed_documents_are_rejected(self):
        with pytest.raises(InvalidProcessError):
            fault_from_document(["crash"])
        with pytest.raises(InvalidProcessError):
            fault_from_document({"role": "x"})
        with pytest.raises(InvalidProcessError):
            fault_from_document({"kind": "meteor"})
        with pytest.raises(InvalidProcessError, match="missing field"):
            fault_from_document({"kind": "crash"})
        with pytest.raises(InvalidProcessError, match="missing field"):
            fault_from_document({"kind": "snag", "role": "r"})
