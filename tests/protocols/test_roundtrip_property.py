"""Property test: every library scenario survives the JSON document round trip.

For any scenario, size, side and crash-fault prefix, rendering the composed
``SystemSpec`` with ``spec_to_document``, parsing it back with
``spec_from_document`` (through an actual JSON encode/decode, as the CLI and
service do) and exploring it with ``build_implicit`` must yield the same tree
document and identical reachable statistics -- the wire format loses nothing
a checker can observe.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore import build_implicit, reachable_stats
from repro.explore.system import spec_from_document, spec_to_document
from repro.protocols import apply_faults, build_scenario

_EXPLORE_LIMIT = 5_000

_SIZES = {
    "two_phase_commit": st.integers(min_value=1, max_value=3),
    "quorum_voting": st.integers(min_value=1, max_value=4),
    "ring_election": st.integers(min_value=2, max_value=4),
    "token_passing": st.integers(min_value=2, max_value=4),
}


@st.composite
def scenario_systems(draw):
    name = draw(st.sampled_from(sorted(_SIZES)))
    scenario = build_scenario(name, n=draw(_SIZES[name]))
    side = draw(
        st.sampled_from(("implementation", "implementation", "spec", "mutant"))
    )
    system = {
        "implementation": scenario.system,
        "spec": scenario.spec,
        "mutant": scenario.mutant,
    }[side]
    if side == "implementation":
        crashes = draw(st.integers(min_value=0, max_value=len(scenario.crash_slots)))
        system = apply_faults(system, scenario.crash_slots[:crashes])
    return system


@given(scenario_systems())
@settings(max_examples=40, deadline=None)
def test_document_round_trip_preserves_the_reachable_behaviour(system):
    document = spec_to_document(system)
    rebuilt = spec_from_document(json.loads(json.dumps(document)))
    assert spec_to_document(rebuilt) == document
    original = reachable_stats(build_implicit(system), limit=_EXPLORE_LIMIT)
    roundtripped = reachable_stats(build_implicit(rebuilt), limit=_EXPLORE_LIMIT)
    assert (original.states, original.transitions, original.complete) == (
        roundtripped.states,
        roundtripped.transitions,
        roundtripped.complete,
    )
