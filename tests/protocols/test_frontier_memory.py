"""Memory-boundedness of the hash-compacted stuck-search frontier.

The point of ``frontier="compact"`` is that :func:`find_stuck` can sweep a
product far bigger than memory: the visited set, parent links, and edge
lists are keyed by 128-bit fingerprints (plain ints) instead of the
composed state tuples themselves.  This test truncates a 10^7-state
interleaved-cycles product (the textbook exponential grid) at a fixed
discovery limit and asserts, via ``tracemalloc``, that the compact sweep
stays under a configurable ceiling -- and genuinely undercuts the exact
frontier on the same workload, so the fingerprint path cannot silently
regress into retaining full states.

``FRONTIER_MEMORY_CEILING_MB`` overrides the ceiling (e.g. for allocators
or interpreter builds with different fixed overheads).
"""

from __future__ import annotations

import os
import tracemalloc

from repro.generators.families import (
    interleaved_cycles_product_size,
    interleaved_cycles_system,
)
from repro.protocols.check import find_stuck

LENGTHS = (10,) * 7  # 10^7 reachable product states
LIMIT = 25_000  # truncation: discover this many states, then give up
CEILING_MB = float(os.environ.get("FRONTIER_MEMORY_CEILING_MB", "32"))


def _peak_mb(frontier: str) -> float:
    spec = interleaved_cycles_system(LENGTHS)
    tracemalloc.start()
    try:
        report = find_stuck(spec, limit=LIMIT, frontier=frontier)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    # cycles never deadlock or livelock; a truncated sweep must say "don't know"
    assert report is None
    return peak / 1e6


def test_compact_frontier_bounds_truncated_sweep_memory():
    assert interleaved_cycles_product_size(LENGTHS) == 10_000_000
    compact_peak = _peak_mb("compact")
    assert compact_peak <= CEILING_MB, (
        f"compact frontier peaked at {compact_peak:.1f}MB for a {LIMIT}-state "
        f"truncated sweep (ceiling {CEILING_MB}MB); the fingerprint path is "
        "retaining full product states"
    )
    exact_peak = _peak_mb("exact")
    assert compact_peak < 0.75 * exact_peak, (
        f"compact frontier ({compact_peak:.1f}MB) no longer undercuts the "
        f"exact frontier ({exact_peak:.1f}MB) on the same workload"
    )
