"""Tests for the protocol model layer: roles, actions, quorums, compilation."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidProcessError
from repro.core.fsp import TAU
from repro.explore import build_implicit, compose_eager, reachable_stats
from repro.explore.system import LeafSpec, ProductSpec, RestrictSpec
from repro.protocols import (
    Broadcast,
    Internal,
    Local,
    Machine,
    ProtocolSpec,
    Quorum,
    Recv,
    Role,
    RoleContext,
    Send,
    role_label,
)


def single_role(machine_factory, count=1, name="r", quorums=()):
    return ProtocolSpec(
        name="test", roles=(Role(name, machine_factory, count=count),), quorums=quorums
    )


class TestRoleContext:
    def test_ring_neighbours_wrap(self):
        ctx = RoleContext(role="r", index=3, n=4, f=0, counts={"r": 4})
        assert ctx.count == 4
        assert ctx.succ == 0
        assert ctx.pred == 2

    def test_peers_covers_all_instances_of_any_role(self):
        ctx = RoleContext(role="a", index=0, n=3, f=0, counts={"a": 2, "b": 3})
        assert list(ctx.peers()) == [0, 1]
        assert list(ctx.peers("b")) == [0, 1, 2]


class TestCounts:
    def test_count_forms(self):
        def one(ctx):
            return Machine("s", [])

        spec = ProtocolSpec(
            name="counts",
            roles=(
                Role("fixed", one, count=2),
                Role("per_validator", one, count="n"),
                Role("derived", one, count=lambda n, f: f + 1),
            ),
        )
        assert spec.counts(5, 2) == {"fixed": 2, "per_validator": 5, "derived": 3}

    def test_zero_count_is_rejected(self):
        spec = single_role(lambda ctx: Machine("s", []), count=lambda n, f: 0)
        with pytest.raises(InvalidProcessError):
            spec.counts(3)

    def test_duplicate_role_names_are_rejected(self):
        def one(ctx):
            return Machine("s", [])

        spec = ProtocolSpec(name="dup", roles=(Role("r", one), Role("r", one)))
        with pytest.raises(InvalidProcessError):
            spec.counts(2)

    def test_instantiate_validates_sizes(self):
        spec = single_role(lambda ctx: Machine("s", []))
        with pytest.raises(InvalidProcessError):
            spec.instantiate(0)
        with pytest.raises(InvalidProcessError):
            spec.instantiate(2, -1)


class TestCompilation:
    def test_leaves_are_labelled_role_instances(self):
        spec = single_role(lambda ctx: Machine("s", []), count=3)
        leaves = spec.leaves(3)
        assert [leaf.label for leaf in leaves] == ["r0", "r1", "r2"]
        assert all(isinstance(leaf, LeafSpec) for leaf in leaves)
        assert role_label("r", 2) == "r2"

    def test_send_recv_compile_to_ccs_co_actions(self):
        spec = single_role(
            lambda ctx: Machine("s", [("s", Send("ping"), "t"), ("t", Recv("pong"), "s")])
        )
        (leaf,) = spec.leaves(1)
        assert ("s", "ping!", "t") in leaf.fsp.transitions
        assert ("t", "pong", "s") in leaf.fsp.transitions
        assert spec.channels(1) == frozenset({"ping", "pong"})

    def test_local_is_observable_and_internal_is_tau(self):
        spec = single_role(
            lambda ctx: Machine("s", [("s", Local("work"), "t"), ("t", Internal(), "s")])
        )
        (leaf,) = spec.leaves(1)
        assert ("s", "work", "t") in leaf.fsp.transitions
        assert ("t", TAU, "s") in leaf.fsp.transitions
        assert spec.channels(1) == frozenset()

    def test_instantiate_restricts_every_touched_channel(self):
        spec = single_role(
            lambda ctx: Machine("s", [("s", Send("ping"), "t"), ("t", Local("done"), "t")])
        )
        system = spec.instantiate(1)
        assert isinstance(system, RestrictSpec)
        assert system.channels == frozenset({"ping"})

    def test_channel_free_protocol_has_no_restriction(self):
        spec = single_role(lambda ctx: Machine("s", [("s", Local("work"), "s")]), count="n")
        assert isinstance(spec.instantiate(1), LeafSpec)
        assert isinstance(spec.instantiate(2), ProductSpec)

    def test_invalid_channel_names_are_rejected(self):
        for bad in ("", TAU, "chan!"):
            spec = single_role(lambda ctx, c=bad: Machine("s", [("s", Send(c), "t")]))
            with pytest.raises(InvalidProcessError):
                spec.instantiate(1)

    def test_unknown_action_type_is_rejected(self):
        spec = single_role(lambda ctx: Machine("s", [("s", "not an action", "t")]))
        with pytest.raises(InvalidProcessError):
            spec.instantiate(1)


class TestCcsSemantics:
    def test_matched_handshake_becomes_tau(self):
        def left(ctx):
            return Machine("s", [("s", Send("m"), "t")])

        def right(ctx):
            return Machine("s", [("s", Recv("m"), "t")])

        spec = ProtocolSpec(
            name="pair", roles=(Role("l", left, count=1), Role("r", right, count=1))
        )
        composed = compose_eager(spec.instantiate(1))
        actions = {action for _, action, _ in composed.transitions}
        assert actions == {TAU}

    def test_unmatched_receive_blocks_instead_of_leaking(self):
        spec = single_role(lambda ctx: Machine("s", [("s", Recv("never"), "t")]))
        composed = compose_eager(spec.instantiate(1))
        assert composed.num_transitions == 0


class TestBroadcast:
    def two_role_spec(self, **broadcast_kwargs):
        def sender(ctx):
            return Machine(
                "s", [("s", Broadcast("m{peer}", to="peer", **broadcast_kwargs), "t")]
            )

        def peer(ctx):
            return Machine("w", [("w", Recv(f"m{ctx.index}"), "got")])

        return ProtocolSpec(
            name="bcast",
            roles=(Role("sender", sender, count=1), Role("peer", peer, count="n")),
        )

    def test_expands_to_an_ascending_chain_of_sends(self):
        spec = self.two_role_spec()
        sender_leaf = spec.leaves(3)[0]
        actions = [action for _, action, _ in sorted(sender_leaf.fsp.transitions)]
        assert actions == ["m0!", "m1!", "m2!"]
        # two fresh intermediate states between s and t
        assert sender_leaf.fsp.num_states == 4

    def test_all_peers_end_up_synchronised(self):
        spec = self.two_role_spec()
        stats = reachable_stats(build_implicit(spec.instantiate(3)))
        assert stats.complete
        # chain of 3 handshakes: 4 product states, all reached by tau
        assert stats.states == 4

    def test_skip_self_omits_the_sender_within_its_own_role(self):
        def everyone(ctx):
            return Machine(
                "s",
                [
                    ("s", Broadcast("m{peer}", to="station"), "t"),
                    ("t", Recv(f"m{ctx.index}"), "u"),
                ],
            )

        spec = single_role(everyone, count=3, name="station")
        middle = spec.leaves(3)[1]
        sends = {a for _, a, _ in middle.fsp.transitions if a.endswith("!")}
        assert sends == {"m0!", "m2!"}

    def test_broadcast_to_no_one_is_a_tau_step(self):
        def loner(ctx):
            return Machine("s", [("s", Broadcast("m{peer}", to="station"), "t")])

        spec = single_role(loner, count=1, name="station")
        (leaf,) = spec.leaves(1)
        assert leaf.fsp.transitions == frozenset({("s", TAU, "t")})

    def test_broadcast_to_unknown_role_is_rejected(self):
        spec = single_role(
            lambda ctx: Machine("s", [("s", Broadcast("m{peer}", to="ghost"), "t")])
        )
        with pytest.raises(InvalidProcessError):
            spec.instantiate(2)


class TestQuorum:
    def counting_spec(self, stages, count=3):
        def sender(ctx):
            return Machine("s", [("s", Send(f"v{ctx.index}"), "t")])

        return single_role(
            sender,
            count=count,
            name="sender",
            quorums=(Quorum("tally", senders="sender", stages=stages, fire="go"),),
        )

    def test_counter_fires_after_threshold_messages(self):
        spec = self.counting_spec((("v{sender}", 2),))
        tally = spec.leaves(3)[-1]
        assert tally.label == "tally"
        # 2 counting states + full + fired
        assert tally.fsp.num_states == 4
        assert ("full", "go", "fired") in tally.fsp.transitions

    def test_straggler_messages_are_absorbed_after_firing(self):
        spec = self.counting_spec((("v{sender}", 2),))
        tally = spec.leaves(3)[-1].fsp
        for channel in ("v0", "v1", "v2"):
            assert ("fired", channel, "fired") in tally.transitions

    def test_callable_threshold_resolves_against_n_and_f(self):
        spec = self.counting_spec((("v{sender}", lambda n, f: n - f),))
        tally = spec.leaves(3, 1)[-1].fsp
        assert "s0_1" in tally.states and "s0_2" not in tally.states

    def test_threshold_out_of_range_is_rejected(self):
        for bad in (0, 4):
            with pytest.raises(InvalidProcessError):
                self.counting_spec((("v{sender}", bad),)).instantiate(3)

    def test_stageless_quorum_is_rejected(self):
        with pytest.raises(InvalidProcessError):
            self.counting_spec(()).instantiate(3)

    def test_unknown_sender_role_is_rejected(self):
        spec = single_role(
            lambda ctx: Machine("s", []),
            quorums=(Quorum("tally", senders="ghost", stages=(("v{sender}", 1),), fire="go"),),
        )
        with pytest.raises(InvalidProcessError):
            spec.instantiate(2)

    def test_quorum_channels_are_restricted(self):
        spec = self.counting_spec((("v{sender}", 2),))
        system = spec.instantiate(3)
        assert isinstance(system, RestrictSpec)
        assert {"v0", "v1", "v2"} <= set(system.channels)
