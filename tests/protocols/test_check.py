"""Tests for the checking harness: conformance, stuck states, sweeps."""

from __future__ import annotations

import pytest

from repro.core.fsp import TAU, from_transitions
from repro.engine import default_engine
from repro.protocols import (
    build_scenario,
    check_conformance,
    find_stuck,
    sweep_crashes,
)


class TestConformance:
    def test_accepts_plain_fsp_operands(self):
        left = from_transitions([("a", "go", "a")], start="a", all_accepting=True)
        right = from_transitions(
            [("x", TAU, "y"), ("y", "go", "x")], start="x", all_accepting=True
        )
        verdict = check_conformance(left, right)
        assert verdict.equivalent
        assert verdict.stats.details["route"].startswith("on-the-fly")

    def test_strong_notion_and_explicit_engine(self):
        left = from_transitions([("a", "go", "a")], start="a", all_accepting=True)
        right = from_transitions(
            [("x", TAU, "y"), ("y", "go", "x")], start="x", all_accepting=True
        )
        verdict = check_conformance(left, right, "strong", engine=default_engine())
        assert not verdict.equivalent

    def test_inequivalence_carries_a_verified_trace(self):
        scenario = build_scenario("two_phase_commit", n=2)
        verdict = check_conformance(scenario.spec, scenario.mutant)
        assert not verdict.equivalent
        details = verdict.stats.details
        assert details["trace_verified"] is True
        assert "defect0" in details["trace"]


class TestFindStuck:
    def test_deadlock_with_shortest_trace(self):
        system = from_transitions(
            [("s0", "a", "s1"), ("s0", "b", "s0"), ("s1", TAU, "s2")],
            start="s0",
            all_accepting=True,
        )
        stuck = find_stuck(system)
        assert stuck is not None
        assert stuck.kind == "deadlock"
        assert stuck.trace == ("a", TAU)
        assert stuck.complete and stuck.states_explored == 3

    def test_livelock_needs_every_state_to_keep_moving(self):
        system = from_transitions(
            [("s0", "a", "s0"), ("s0", TAU, "s1"), ("s1", TAU, "s1")],
            start="s0",
            all_accepting=True,
        )
        stuck = find_stuck(system)
        assert stuck is not None
        assert stuck.kind == "livelock"
        assert stuck.trace == (TAU,)

    def test_livelock_scan_can_be_disabled(self):
        system = from_transitions(
            [("s0", "a", "s0"), ("s0", TAU, "s1"), ("s1", TAU, "s1")],
            start="s0",
            all_accepting=True,
        )
        assert find_stuck(system, livelocks=False) is None

    def test_healthy_system_reports_nothing(self):
        scenario = build_scenario("token_passing", n=3)
        assert find_stuck(scenario.system) is None

    def test_truncated_exploration_never_invents_livelocks(self):
        chain = from_transitions(
            [(f"s{i}", TAU, f"s{i + 1}") for i in range(40)],
            start="s0",
            all_accepting=True,
        )
        truncated = find_stuck(chain, limit=5)
        assert truncated is None  # the real deadlock lies beyond the bound
        full = find_stuck(chain)
        assert full is not None and full.kind == "deadlock"
        assert full.states_explored == 41


class TestSweep:
    def test_quorum_voting_tolerates_exactly_f(self):
        scenario = build_scenario("quorum_voting", n=3)
        result = sweep_crashes(scenario)
        assert result.scenario == "quorum_voting"
        assert result.tolerance == 1
        assert [point.faults for point in result.points] == [0, 1, 2]
        assert [point.equivalent for point in result.points] == [True, True, False]
        assert result.breaks_at == 2
        assert result.confirmed
        broken = result.points[-1]
        assert broken.trace is not None and broken.trace_verified

    def test_zero_tolerance_protocols_break_at_one(self):
        result = sweep_crashes(build_scenario("two_phase_commit", n=2))
        assert result.tolerance == 0
        assert result.breaks_at == 1
        assert result.confirmed

    def test_max_faults_beyond_declared_slots_is_an_error(self):
        scenario = build_scenario("quorum_voting", n=3)
        with pytest.raises(ValueError, match="fault slots"):
            sweep_crashes(scenario, max_faults=5)

    def test_partial_sweep_stays_confirmed(self):
        scenario = build_scenario("quorum_voting", n=3)
        result = sweep_crashes(scenario, max_faults=1)
        assert [point.equivalent for point in result.points] == [True, True]
        assert result.breaks_at is None
        assert result.confirmed
