"""Mutation-style soundness probes for the state-space reductions.

A reduction that *masks* a fault is worse than no reduction at all: it
returns "equivalent" for a genuinely broken implementation.  These probes
take every library scenario, inject each fault class the library models --
crash, omission, Byzantine, and the scenario's built-in snag mutant -- and
assert that every ``reduction=`` mode reaches exactly the verdict of the
unreduced route.  In particular a mutant the unreduced checker *detects*
must stay detected under every mode (the one-sided failure that matters),
but full parity is asserted both ways: a reduction inventing a difference
would be just as wrong.

Faults rebuild the ``SystemSpec`` tree (see :mod:`repro.protocols.faults`),
which drops any symmetry annotation -- deliberately, since a faulty
instance is precisely what breaks the symmetry -- so the symmetry modes
degrade soundly to the identity on the faulty side.
"""

from __future__ import annotations

import pytest

from repro.explore.reduce import FRONTIERS, REDUCTIONS
from repro.protocols.check import check_conformance, find_stuck
from repro.protocols.faults import Byzantine, Crash, Omission, apply_fault
from repro.protocols.library import (
    quorum_voting,
    ring_election,
    token_passing,
    two_phase_commit,
)

REDUCED_MODES = tuple(mode for mode in REDUCTIONS if mode != "none")


def _scenarios():
    return {
        "two_phase_commit": two_phase_commit(3),
        "quorum_voting": quorum_voting(3, 1),
        "ring_election": ring_election(3),
        "token_passing": token_passing(3),
    }


def _first_role(scenario) -> str:
    return scenario.protocol.roles[0].name


def _first_channel(scenario) -> str:
    return sorted(scenario.protocol.channels(scenario.n, scenario.f))[0]


def _faulted_systems(scenario):
    """One faulty system per fault class, plus the built-in snag mutant."""
    last_role = scenario.protocol.roles[-1].name
    return {
        "crash": apply_fault(scenario.system, Crash(last_role, 0)),
        "omission": apply_fault(scenario.system, Omission(_first_channel(scenario))),
        "byzantine": apply_fault(scenario.system, Byzantine(last_role, 0)),
        "snag-mutant": scenario.mutant,
    }


@pytest.mark.parametrize("name", sorted(_scenarios()))
def test_fault_verdict_parity_every_mode(name):
    scenario = _scenarios()[name]
    for fault_name, faulty in _faulted_systems(scenario).items():
        baseline = check_conformance(scenario.spec, faulty)
        for mode in REDUCED_MODES:
            for frontier in FRONTIERS:
                verdict = check_conformance(
                    scenario.spec, faulty, reduction=mode, frontier=frontier
                )
                assert verdict.equivalent == baseline.equivalent, (
                    f"{name}/{fault_name}: reduction={mode} frontier={frontier} "
                    f"flipped the verdict "
                    f"({verdict.equivalent} vs baseline {baseline.equivalent})"
                )


@pytest.mark.parametrize("name", sorted(_scenarios()))
def test_builtin_mutant_never_masked(name):
    scenario = _scenarios()[name]
    baseline = check_conformance(scenario.spec, scenario.mutant)
    assert not baseline.equivalent, f"{name} mutant undetected even unreduced"
    for mode in REDUCED_MODES:
        verdict = check_conformance(scenario.spec, scenario.mutant, reduction=mode)
        assert not verdict.equivalent, (
            f"{name} mutant masked by reduction={mode}"
        )


@pytest.mark.parametrize("name", sorted(_scenarios()))
def test_fault_stuck_parity_every_mode(name):
    scenario = _scenarios()[name]
    for fault_name, faulty in _faulted_systems(scenario).items():
        baseline = find_stuck(faulty, frontier="exact")
        for mode in REDUCED_MODES:
            report = find_stuck(faulty, reduction=mode)
            assert (report is None) == (baseline is None), (
                f"{name}/{fault_name}: reduction={mode} disagrees on stuck existence"
            )
            if report is not None:
                assert report.kind == baseline.kind, (
                    f"{name}/{fault_name}: reduction={mode} reports {report.kind}, "
                    f"baseline {baseline.kind}"
                )
