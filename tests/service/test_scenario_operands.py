"""Scenario-document operands through the service: resolution, routing, e2e.

A check operand may be ``{"scenario": <document>}`` -- a protocol-library
scenario reference resolved server-side through
:func:`repro.protocols.system_from_document` into a ``SystemSpec``, which then
rides the lazy on-the-fly route like any composed system.  Worker-level tests
run the shard job functions in-process; the end-to-end test drives a real
asyncio server over a socket.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.protocols import build_scenario
from repro.service import EquivalenceServer, ServiceClient
from repro.service import protocol
from repro.service.shards import ShardPool, _init_worker, _worker_check


@pytest.fixture()
def worker():
    _init_worker(0, None, max_processes=16, max_verdicts=64)


def scenario_ref(document) -> dict:
    return {"scenario": document}


def check_spec(left, right, **overrides) -> dict:
    spec = {
        "left": left,
        "right": right,
        "notion": "observational",
        "align": True,
        "witness": False,
        "on_the_fly": None,
        "params": {},
    }
    spec.update(overrides)
    return spec


class TestResolveOperand:
    def test_scenario_reference_builds_the_implementation_system(self):
        from repro.explore.system import SystemSpec

        resolved = protocol.resolve_operand(
            scenario_ref({"name": "two_phase_commit", "n": 2})
        )
        assert isinstance(resolved, SystemSpec)
        assert resolved == build_scenario("two_phase_commit", n=2).system

    def test_side_and_faults_are_honoured(self):
        document = {
            "name": "quorum_voting",
            "n": 3,
            "faults": [{"kind": "crash", "role": "validator", "index": 0}],
        }
        from repro.protocols import Crash, apply_fault

        scenario = build_scenario("quorum_voting", n=3)
        assert protocol.resolve_operand(scenario_ref(document)) == apply_fault(
            scenario.system, Crash("validator", 0)
        )
        assert (
            protocol.resolve_operand(
                scenario_ref({"name": "quorum_voting", "n": 3, "side": "spec"})
            )
            == scenario.spec
        )

    def test_bad_scenario_documents_are_invalid_process(self):
        for document in ("three_phase_commit", {"name": "quorum_voting", "n": 2, "f": 1}):
            with pytest.raises(protocol.ServiceError) as info:
                protocol.resolve_operand(scenario_ref(document))
            assert info.value.code == protocol.INVALID_PROCESS

    def test_process_ref_passes_scenario_references_through(self):
        ref = scenario_ref({"name": "token_passing", "n": 3})
        assert protocol.process_ref(ref) is ref


class TestWorkerRoute:
    def test_scenario_operands_ride_the_lazy_route(self, worker):
        spec_side = scenario_ref({"name": "two_phase_commit", "n": 2, "side": "spec"})
        good = scenario_ref({"name": "two_phase_commit", "n": 2})
        result = _worker_check(check_spec(spec_side, good))
        assert result["equivalent"] is True
        assert result["route"].startswith("on-the-fly")

    def test_mutant_side_is_distinguished_with_a_witness(self, worker):
        spec_side = scenario_ref({"name": "two_phase_commit", "n": 2, "side": "spec"})
        mutant = scenario_ref({"name": "two_phase_commit", "n": 2, "side": "mutant"})
        result = _worker_check(check_spec(spec_side, mutant, witness=True))
        assert result["equivalent"] is False
        assert "defect0" in (result["witness"] or "")

    def test_reduction_request_is_honoured_on_the_lazy_route(self, worker):
        spec_side = scenario_ref({"name": "quorum_voting", "n": 5, "f": 2, "side": "spec"})
        impl = scenario_ref({"name": "quorum_voting", "n": 5, "f": 2})
        plain = _worker_check(check_spec(spec_side, impl))
        reduced = _worker_check(check_spec(spec_side, impl, reduction="full"))
        assert plain["equivalent"] is True and reduced["equivalent"] is True
        assert plain["reduction"] == "none"
        assert reduced["reduction"] == "full"
        assert reduced["pairs_visited"] < plain["pairs_visited"]


class TestRouting:
    def test_scenario_references_route_shard_sticky(self):
        pool = ShardPool.__new__(ShardPool)
        pool.num_shards = 8
        ref = scenario_ref({"name": "quorum_voting", "n": 5})
        first = pool.route_check({"left": ref})
        assert first == pool.route_check({"left": ref})
        assert 0 <= first < 8
        # a different document may land elsewhere, but stays deterministic
        other = pool.route_check({"left": scenario_ref({"name": "quorum_voting", "n": 3})})
        assert other == pool.route_check(
            {"left": scenario_ref({"name": "quorum_voting", "n": 3})}
        )


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    store_root = str(tmp_path_factory.mktemp("scenario-store"))
    holder: dict = {}
    started = threading.Event()

    def run() -> None:
        async def main() -> None:
            server = EquivalenceServer(
                port=0, store_root=store_root, num_shards=2, max_processes=16, max_verdicts=64
            )
            await server.start()
            holder["server"] = server
            holder["port"] = server.port
            holder["loop"] = asyncio.get_running_loop()
            started.set()
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await server.stop()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=30), "server failed to start"
    yield holder
    loop = holder["loop"]
    loop.call_soon_threadsafe(lambda: [t.cancel() for t in asyncio.all_tasks(loop)])
    thread.join(timeout=30)


class TestEndToEnd:
    def test_scenario_check_over_a_real_socket(self, service):
        with ServiceClient(port=service["port"]) as client:
            good = client.check(
                scenario_ref({"name": "quorum_voting", "n": 3, "side": "spec"}),
                scenario_ref({"name": "quorum_voting", "n": 3}),
                witness=True,
            )
            assert good["equivalent"] is True
            assert good["route"].startswith("on-the-fly")
            broken = client.check(
                scenario_ref({"name": "quorum_voting", "n": 3, "side": "spec"}),
                scenario_ref(
                    {
                        "name": "quorum_voting",
                        "n": 3,
                        "faults": [
                            {"kind": "crash", "role": "validator", "index": 0},
                            {"kind": "crash", "role": "validator", "index": 1},
                        ],
                    }
                ),
                witness=True,
            )
            assert broken["equivalent"] is False

    def test_bad_scenario_is_rejected_with_invalid_process(self, service):
        with ServiceClient(port=service["port"]) as client:
            with pytest.raises(protocol.ServiceError) as info:
                client.check(
                    scenario_ref("three_phase_commit"),
                    scenario_ref("three_phase_commit"),
                )
            assert info.value.code == protocol.INVALID_PROCESS

    def test_reduction_rides_the_wire_and_bad_modes_are_bad_request(self, service):
        spec_side = scenario_ref({"name": "quorum_voting", "n": 5, "f": 2, "side": "spec"})
        impl = scenario_ref({"name": "quorum_voting", "n": 5, "f": 2})
        with ServiceClient(port=service["port"]) as client:
            plain = client.check(spec_side, impl)
            reduced = client.check(spec_side, impl, reduction="full")
            assert plain["equivalent"] is True and reduced["equivalent"] is True
            assert plain["reduction"] == "none"
            assert reduced["reduction"] == "full"
            assert reduced["pairs_visited"] < plain["pairs_visited"]
            with pytest.raises(protocol.ServiceError) as info:
                client.check(spec_side, impl, reduction="bogus")
            assert info.value.code == protocol.BAD_REQUEST
