"""RetryPolicy tests: the exact backoff schedule, budgets, predicate gating."""

import random

import pytest

from repro.service.protocol import OVERLOADED, ServiceError
from repro.service.retry import RetryPolicy
from repro.service.client import _overload_hint


def no_jitter_policy(**kwargs) -> tuple[RetryPolicy, list[float]]:
    slept: list[float] = []
    policy = RetryPolicy(jitter=0.0, sleep=slept.append, **kwargs)
    return policy, slept


def overloaded(hint=None) -> ServiceError:
    data = {"retry_after_ms": hint} if hint is not None else {}
    return ServiceError(OVERLOADED, "busy", data)


# ----------------------------------------------------------------------
# the schedule itself
# ----------------------------------------------------------------------
def test_exponential_schedule_without_hint():
    policy, _ = no_jitter_policy(base_delay_ms=50.0, multiplier=2.0)
    assert [policy.delay_ms(n, None) for n in range(4)] == [50.0, 100.0, 200.0, 400.0]


def test_server_hint_is_a_floor_not_a_ceiling():
    policy, _ = no_jitter_policy(base_delay_ms=50.0, multiplier=2.0)
    # Hint above base: schedule grows from the hint.
    assert policy.delay_ms(0, 300.0) == 300.0
    assert policy.delay_ms(1, 300.0) == 600.0
    # Hint below base: the base wins (retrying sooner than base is pointless).
    assert policy.delay_ms(0, 10.0) == 50.0


def test_single_delay_cap_applies_pre_jitter():
    policy, _ = no_jitter_policy(base_delay_ms=50.0, max_delay_ms=150.0)
    assert policy.delay_ms(5, None) == 150.0
    assert policy.delay_ms(0, 10_000.0) == 150.0


def test_jitter_stays_within_the_documented_band():
    policy = RetryPolicy(jitter=0.25, rng=random.Random(7), sleep=lambda s: None)
    for attempt in range(6):
        delay = policy.delay_ms(attempt, None)
        nominal = min(50.0 * 2.0**attempt, policy.max_delay_ms)
        assert 0.75 * nominal <= delay <= 1.25 * nominal


def test_seeded_rng_makes_the_schedule_reproducible():
    a = RetryPolicy(jitter=0.25, rng=random.Random(11))
    b = RetryPolicy(jitter=0.25, rng=random.Random(11))
    assert [a.delay_ms(n, None) for n in range(5)] == [b.delay_ms(n, None) for n in range(5)]


# ----------------------------------------------------------------------
# run(): retrying, budgets, predicate
# ----------------------------------------------------------------------
def test_run_retries_until_success_and_sleeps_the_schedule():
    policy, slept = no_jitter_policy(retries=3)
    attempts = {"n": 0}

    def flaky():
        attempts["n"] += 1
        if attempts["n"] <= 2:
            raise overloaded(100.0)
        return "done"

    assert policy.run(flaky, is_overloaded=_overload_hint) == "done"
    assert attempts["n"] == 3
    assert slept == [0.1, 0.2]  # seconds: hint 100ms, then doubled


def test_run_reraises_after_the_attempt_budget():
    policy, slept = no_jitter_policy(retries=2)
    calls = {"n": 0}

    def always_busy():
        calls["n"] += 1
        raise overloaded()

    with pytest.raises(ServiceError) as excinfo:
        policy.run(always_busy, is_overloaded=_overload_hint)
    assert excinfo.value.code == OVERLOADED
    assert calls["n"] == 3  # first try + 2 retries
    assert len(slept) == 2


def test_run_respects_the_total_sleep_budget():
    # Budget admits the first retry (1000ms) but not the second (2000ms).
    policy, slept = no_jitter_policy(retries=5, base_delay_ms=1_000.0, max_total_ms=1_500.0)
    with pytest.raises(ServiceError):
        policy.run(lambda: (_ for _ in ()).throw(overloaded()), is_overloaded=_overload_hint)
    assert slept == [1.0]


def test_zero_retries_means_one_attempt_and_no_sleep():
    policy, slept = no_jitter_policy(retries=0)
    calls = {"n": 0}

    def busy():
        calls["n"] += 1
        raise overloaded()

    with pytest.raises(ServiceError):
        policy.run(busy, is_overloaded=_overload_hint)
    assert calls["n"] == 1 and slept == []


def test_non_overloaded_errors_propagate_immediately():
    policy, slept = no_jitter_policy(retries=5)
    calls = {"n": 0}

    def broken():
        calls["n"] += 1
        raise ServiceError("bad_request", "no")

    with pytest.raises(ServiceError, match="no"):
        policy.run(broken, is_overloaded=_overload_hint)
    assert calls["n"] == 1 and slept == []


def test_plain_exceptions_are_never_retried():
    policy, slept = no_jitter_policy(retries=5)
    with pytest.raises(RuntimeError):
        policy.run(lambda: (_ for _ in ()).throw(RuntimeError("boom")), is_overloaded=_overload_hint)
    assert slept == []


# ----------------------------------------------------------------------
# the client-side predicate
# ----------------------------------------------------------------------
def test_overload_hint_extracts_retry_after_ms():
    assert _overload_hint(overloaded(250.0)) == 250.0
    assert _overload_hint(overloaded()) is None
    assert _overload_hint(ServiceError("internal", "x")) is False
    assert _overload_hint(RuntimeError("x")) is False


# ----------------------------------------------------------------------
# constructor validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"retries": -1},
        {"base_delay_ms": 0},
        {"max_delay_ms": 0},
        {"max_total_ms": 0},
        {"multiplier": 0.5},
        {"jitter": 1.0},
        {"jitter": -0.1},
    ],
)
def test_invalid_parameters_are_rejected(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)
