"""ProcessStore tests: content addressing, eviction/reload, corruption."""

import pytest

from repro.core.errors import InvalidProcessError
from repro.core.fsp import FSP
from repro.generators.random_fsp import random_fsp
from repro.service.store import ProcessStore
from repro.utils.serialization import content_digest


def build(seed: int) -> FSP:
    return random_fsp(8, tau_probability=0.2, all_accepting=True, seed=seed)


def test_put_get_round_trip(tmp_path):
    store = ProcessStore(tmp_path)
    fsp = build(1)
    digest = store.put(fsp)
    assert digest == content_digest(fsp)
    assert digest in store
    assert store.get(digest) == fsp


def test_put_is_idempotent(tmp_path):
    store = ProcessStore(tmp_path)
    fsp = build(2)
    assert store.put(fsp) == store.put(fsp)
    assert sum(1 for _ in store.digests()) == 1


def test_get_unknown_digest_raises_keyerror(tmp_path):
    store = ProcessStore(tmp_path)
    with pytest.raises(KeyError):
        store.get("sha256:" + "0" * 64)
    with pytest.raises(KeyError):
        store.get("not-even-a-digest")
    assert "not-even-a-digest" not in store


def test_eviction_and_reload_from_disk(tmp_path):
    store = ProcessStore(tmp_path, max_cached=2)
    processes = [build(seed) for seed in range(5)]
    digests = [store.put(fsp) for fsp in processes]
    assert store.cache_info()["cached"] == 2  # LRU bound respected

    # Every entry -- evicted or not -- reloads correctly from disk.
    for digest, fsp in zip(digests, processes):
        assert store.get(digest) == fsp

    info = store.cache_info()
    assert info["on_disk"] == 5
    assert info["misses"] >= 3  # the evicted ones had to come from disk


def test_second_store_sees_existing_entries(tmp_path):
    # Workers open the same root independently; entries must be shared.
    writer = ProcessStore(tmp_path)
    fsp = build(3)
    digest = writer.put(fsp)
    reader = ProcessStore(tmp_path)
    assert digest in reader
    assert reader.get(digest) == fsp
    assert list(reader.digests()) == [digest]


def test_corrupt_entry_is_rejected(tmp_path):
    store = ProcessStore(tmp_path)
    fsp = build(4)
    digest = store.put(fsp)
    path = store.path_for(digest)
    other = build(5)
    from repro.utils.serialization import canonical_bytes

    path.write_bytes(canonical_bytes(other))  # valid FSP, wrong address
    fresh = ProcessStore(tmp_path)
    with pytest.raises(InvalidProcessError, match="corrupt"):
        fresh.get(digest)


def test_no_temp_residue_after_put(tmp_path):
    store = ProcessStore(tmp_path)
    store.put(build(6))
    assert not list(tmp_path.rglob("*.tmp"))


def test_max_cached_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        ProcessStore(tmp_path, max_cached=0)
