"""Unit tests for the flow-control primitives: deadlines and token buckets."""

import threading
import time

import pytest

from repro.service.flow import (
    DeadlineExceeded,
    TokenBucket,
    check_deadline,
    deadline_scope,
    remaining_seconds,
)


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
def test_remaining_seconds():
    assert remaining_seconds(None) is None
    assert remaining_seconds(time.monotonic() + 10) == pytest.approx(10, abs=0.5)
    assert remaining_seconds(time.monotonic() - 10) < 0


def test_check_deadline():
    check_deadline(None)
    check_deadline(time.monotonic() + 60)
    with pytest.raises(DeadlineExceeded):
        check_deadline(time.monotonic() - 0.001)


def test_deadline_scope_without_deadline_is_a_no_op():
    with deadline_scope(None):
        pass


def test_deadline_scope_rejects_an_already_expired_deadline_up_front():
    ran = False
    with pytest.raises(DeadlineExceeded):
        with deadline_scope(time.monotonic() - 1.0):
            ran = True
    assert ran is False


def test_deadline_scope_preempts_a_sleeping_block_on_the_main_thread():
    # SIGALRM interrupts time.sleep, so the block aborts near the deadline,
    # not after the full ten seconds.
    started = time.monotonic()
    with pytest.raises(DeadlineExceeded):
        with deadline_scope(time.monotonic() + 0.2):
            time.sleep(10.0)
    assert time.monotonic() - started < 5.0


def test_deadline_scope_restores_state_for_the_next_scope():
    with pytest.raises(DeadlineExceeded):
        with deadline_scope(time.monotonic() + 0.05):
            time.sleep(2.0)
    # A follow-up scope with a comfortable deadline runs undisturbed, and no
    # stray timer fires after it exits.
    with deadline_scope(time.monotonic() + 60.0):
        pass
    time.sleep(0.1)


def test_deadline_scope_off_the_main_thread_checks_at_the_edges():
    outcome: dict = {}

    def run() -> None:
        try:
            with deadline_scope(time.monotonic() + 0.05):
                time.sleep(0.2)  # past the deadline; caught by the exit check
        except DeadlineExceeded:
            outcome["raised"] = True

    thread = threading.Thread(target=run)
    thread.start()
    thread.join(timeout=10)
    assert outcome.get("raised") is True


# ----------------------------------------------------------------------
# token buckets
# ----------------------------------------------------------------------
def test_token_bucket_validates_its_parameters():
    with pytest.raises(ValueError):
        TokenBucket(0, 1)
    with pytest.raises(ValueError):
        TokenBucket(1, 0)


def test_token_bucket_drains_and_refills_against_a_fake_clock():
    now = [0.0]
    bucket = TokenBucket(rate=2.0, burst=4.0, clock=lambda: now[0])
    # The burst drains token by token...
    for _ in range(4):
        assert bucket.try_acquire() == 0.0
    # ...then the next acquire reports a finite positive wait.
    wait = bucket.try_acquire()
    assert wait == pytest.approx(0.5)
    # Advancing the clock refills at `rate` tokens per second.
    now[0] = 1.0  # +2 tokens
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() > 0.0


def test_token_bucket_never_exceeds_burst():
    now = [0.0]
    bucket = TokenBucket(rate=10.0, burst=3.0, clock=lambda: now[0])
    now[0] = 100.0  # a long idle period must not bank more than `burst`
    assert bucket.available == pytest.approx(3.0)
    for _ in range(3):
        assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() > 0.0


def test_token_bucket_bulk_acquire_hint_is_bounded_by_burst():
    now = [0.0]
    bucket = TokenBucket(rate=1.0, burst=5.0, clock=lambda: now[0])
    # Asking for more than the burst can never fully succeed; the hint is
    # still finite (the shortfall against capacity, not against the ask).
    wait = bucket.try_acquire(100.0)
    assert 0.0 < wait <= 5.0
    # The failed acquire left the bucket untouched.
    assert bucket.available == pytest.approx(5.0)


def test_token_bucket_check_many_style_cost():
    now = [0.0]
    bucket = TokenBucket(rate=1.0, burst=10.0, clock=lambda: now[0])
    assert bucket.try_acquire(8.0) == 0.0
    assert bucket.try_acquire(8.0) > 0.0  # only 2 tokens left
    assert bucket.try_acquire(2.0) == 0.0
