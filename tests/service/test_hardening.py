"""Hardening tests: deadlines, backpressure, work-stealing, crash semantics.

The slow checks these tests need come from two throwaway notions registered
in the parent process before any pool forks its workers (fork carries the
notion registry across), so no sleeps are hidden inside real algorithms:

* ``sleepy`` blocks long enough that only a deadline can end it;
* ``napping`` blocks briefly, to hold a shard busy while another request
  is planned against it.
"""

import asyncio
import io
import json
import threading
import time
import urllib.request

import pytest

from repro.engine import Notion, NotionResult, register_notion, unregister_notion
from repro.generators.random_fsp import random_equivalent_copy, random_fsp
from repro.service import EquivalenceServer, ServiceClient, protocol
from repro.service.shards import _MP_CONTEXT, ShardPool, _worker_stats
from repro.service.store import ProcessStore

pytestmark = pytest.mark.skipif(
    _MP_CONTEXT.get_start_method() != "fork",
    reason="slow-notion fixtures reach the workers via fork",
)


class _SleepNotion(Notion):
    supports_expressions = False
    provides_witness = False
    seconds = 30.0

    def check(self, left, right, want_witness, **params):
        time.sleep(self.seconds)
        return NotionResult(True)


class Sleepy(_SleepNotion):
    name = "sleepy"


class Napping(_SleepNotion):
    name = "napping"
    seconds = 1.5


@pytest.fixture(scope="module", autouse=True)
def slow_notions():
    register_notion(Sleepy())
    register_notion(Napping())
    yield
    unregister_notion("sleepy")
    unregister_notion("napping")


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A store of distinct processes, with at least two routed to one shard
    of a two-shard pool (what the stealing tests need)."""
    root = tmp_path_factory.mktemp("hardening-store")
    store = ProcessStore(root)
    digests = []
    for seed in range(40, 52):
        fsp = random_fsp(6, tau_probability=0.1, all_accepting=True, seed=seed)
        digests.append((store.put(fsp), fsp))
    return {"root": root, "digests": digests}


def spec_for(left_ref, right, notion="observational"):
    return {
        "left": left_ref,
        "right": protocol.process_ref(right),
        "notion": notion,
        "align": True,
        "witness": False,
        "params": {},
    }


def colocated_pair(pool, corpus):
    """Two distinct stored digests that route to the same shard."""
    by_shard: dict = {}
    for digest, fsp in corpus["digests"]:
        by_shard.setdefault(pool.shard_of(digest), []).append((digest, fsp))
    for entries in by_shard.values():
        if len(entries) >= 2:
            return entries[0], entries[1]
    raise AssertionError("corpus has no two digests sharing a shard")


# ----------------------------------------------------------------------
# deadlines (pool level)
# ----------------------------------------------------------------------
def test_deadline_aborts_a_long_check_without_wedging_the_shard(corpus):
    digest, fsp = corpus["digests"][0]
    with ShardPool(1, corpus["root"]) as pool:
        pool.warm_up()
        before = pool.run(0, _worker_stats)
        started = time.monotonic()
        with pytest.raises(protocol.ServiceError) as info:
            pool.check(spec_for({"digest": digest}, fsp, "sleepy"), deadline=started + 0.3)
        assert info.value.code == protocol.DEADLINE_EXCEEDED
        assert info.value.data == {"shard": 0}
        assert time.monotonic() - started < 10.0  # nowhere near the 30s sleep
        # The shard is alive, same worker, no revival burned.
        result = pool.check(spec_for({"digest": digest}, fsp))
        assert result["equivalent"] is True
        assert result["pid"] == before["pid"]
        assert pool.revivals == 0


def test_an_already_expired_deadline_aborts_before_computing(corpus):
    digest, fsp = corpus["digests"][0]
    with ShardPool(1, corpus["root"]) as pool:
        with pytest.raises(protocol.ServiceError) as info:
            pool.check(spec_for({"digest": digest}, fsp, "sleepy"), deadline=time.monotonic() - 1)
        assert info.value.code == protocol.DEADLINE_EXCEEDED


def test_run_async_check_backstops_the_deadline_server_side(corpus):
    digest, fsp = corpus["digests"][0]

    async def scenario(pool):
        with pytest.raises(protocol.ServiceError) as info:
            await pool.run_async_check(
                spec_for({"digest": digest}, fsp, "sleepy"),
                deadline=time.monotonic() + 0.2,
            )
        return info.value

    with ShardPool(1, corpus["root"]) as pool:
        pool.warm_up()
        error = asyncio.run(scenario(pool))
        assert error.code == protocol.DEADLINE_EXCEEDED


# ----------------------------------------------------------------------
# backpressure (pool level)
# ----------------------------------------------------------------------
def test_full_shard_queue_answers_overloaded(corpus):
    digest, fsp = corpus["digests"][0]
    with ShardPool(1, corpus["root"], max_queue=1) as pool:
        pool.warm_up()
        _home, _shard, _job, occupying = pool.submit_check(
            spec_for({"digest": digest}, fsp, "napping")
        )
        with pytest.raises(protocol.ServiceError) as info:
            pool.plan_check(spec_for({"digest": digest}, fsp))
        assert info.value.code == protocol.OVERLOADED
        assert info.value.data["retry_after_ms"] > 0
        assert info.value.data["queue_depth"] == 1
        assert pool.overloads == 1
        assert occupying.result(timeout=30)["equivalent"] is True
        # Once the queue drains, the same check is accepted again.
        assert pool.check(spec_for({"digest": digest}, fsp))["equivalent"] is True


# ----------------------------------------------------------------------
# work-stealing (pool level)
# ----------------------------------------------------------------------
def test_cold_digest_checks_migrate_off_a_busy_shard(corpus):
    with ShardPool(2, corpus["root"], steal_threshold=1) as pool:
        pool.warm_up()
        (digest_a, fsp_a), (digest_b, fsp_b) = colocated_pair(pool, corpus)
        home = pool.shard_of(digest_a)
        # Hold the home shard busy with a check keyed by digest_a.
        _h, _s, _job, occupying = pool.submit_check(
            spec_for({"digest": digest_a}, fsp_a, "napping")
        )
        # Cache-hot work (digest_a was just dispatched home) stays home...
        assert pool.plan_check(spec_for({"digest": digest_a}, fsp_a)) == (home, home)
        steals_before = pool.steals
        # ...while a cache-cold store-referenced check migrates to the idle
        # shard and actually runs there.
        result = pool.check(spec_for({"digest": digest_b}, fsp_b))
        assert result["equivalent"] is True
        assert result["shard"] == 1 - home
        assert pool.steals == steals_before + 1
        occupying.result(timeout=30)


def test_inline_checks_are_never_stolen(corpus):
    # An inline process is not store-referenced; even with the home shard
    # backed up it must stay home (any other worker would recompute it cold
    # *and* break the affinity story for later digest uploads of it).
    with ShardPool(2, corpus["root"], steal_threshold=1) as pool:
        _digest_a, fsp_a = corpus["digests"][0]
        inline = spec_for(protocol.process_ref(fsp_a), fsp_a)
        home = pool.route_check(inline)
        with pool._lock:
            pool._depths[home] = 5  # simulate a backlog without real sleeps
        assert pool.plan_check(inline) == (home, home)


# ----------------------------------------------------------------------
# crash semantics: job errors are not worker death
# ----------------------------------------------------------------------
class UnpicklableError(Exception):
    """An exception whose pickle round-trip fails in the parent.

    ``__reduce__`` drops an argument, so unpickling raises TypeError -- the
    shape of many real-world third-party exceptions.  Before the `_guarded`
    wrapper, returning this from a job killed the executor's result-handler
    thread (BrokenProcessPool) and the pool then replayed the deterministic
    poison job on a fresh worker.
    """

    def __init__(self, a, b):
        super().__init__(f"{a}:{b}")
        self.a = a
        self.b = b

    def __reduce__(self):
        return (UnpicklableError, (self.a,))


def _raise_unpicklable():
    raise UnpicklableError("poison", "job")


def test_job_error_that_cannot_unpickle_does_not_break_the_worker(tmp_path):
    with ShardPool(1, tmp_path) as pool:
        pool.warm_up()
        before = pool.run(0, _worker_stats)
        with pytest.raises(protocol.ServiceError) as info:
            pool.submit(0, _raise_unpicklable).result(timeout=30)
        assert info.value.code == protocol.INTERNAL
        assert "UnpicklableError" in info.value.message
        # The worker survived: same pid, no revival, and it still answers.
        after = pool.run(0, _worker_stats)
        assert after["pid"] == before["pid"]
        assert pool.revivals == 0


def test_deterministic_job_error_is_not_retried(tmp_path):
    # The error comes back exactly once per submission (no hidden replay):
    # a second, identical submission also answers -- from the same live
    # worker -- rather than burning a fresh executor each time.
    with ShardPool(1, tmp_path) as pool:
        pool.warm_up()
        pids = set()
        for _ in range(3):
            with pytest.raises(protocol.ServiceError):
                pool.submit(0, _raise_unpicklable).result(timeout=30)
            pids.add(pool.run(0, _worker_stats)["pid"])
        assert len(pids) == 1
        assert pool.revivals == 0


# ----------------------------------------------------------------------
# the wire: deadlines, quotas, metrics, traces end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def hardened_service(tmp_path_factory, slow_notions):
    """A server with every hardening knob on (except quotas; see below)."""
    store_root = str(tmp_path_factory.mktemp("hardened-store"))
    holder: dict = {"trace": io.StringIO()}
    started = threading.Event()

    def run() -> None:
        async def main() -> None:
            server = EquivalenceServer(
                port=0,
                store_root=store_root,
                num_shards=2,
                max_processes=16,
                max_verdicts=64,
                max_queue=64,
                steal_threshold=8,
                metrics_port=0,
                trace_stream=holder["trace"],
            )
            await server.start()
            holder["server"] = server
            holder["port"] = server.port
            holder["metrics_port"] = server.metrics_port
            holder["loop"] = asyncio.get_running_loop()
            started.set()
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await server.stop()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=30), "server failed to start"
    yield holder
    loop = holder["loop"]
    loop.call_soon_threadsafe(lambda: [t.cancel() for t in asyncio.all_tasks(loop)])
    thread.join(timeout=30)


def client_for(service) -> ServiceClient:
    return ServiceClient(port=service["port"])


def test_deadline_exceeded_over_the_wire(hardened_service):
    left = random_fsp(6, all_accepting=True, seed=91)
    right = random_equivalent_copy(left, seed=92)
    with client_for(hardened_service) as client:
        started = time.monotonic()
        with pytest.raises(protocol.ServiceError) as info:
            client.check(left, right, "sleepy", deadline_ms=250)
        assert info.value.code == protocol.DEADLINE_EXCEEDED
        assert time.monotonic() - started < 10.0
        # The batch form reports the timeout inline, per check.
        batch = client.check_many([(left, right)], notion="sleepy", deadline_ms=250)
        assert batch["summary"]["failed"] == 1
        assert batch["results"][0]["error"]["code"] == protocol.DEADLINE_EXCEEDED


def test_bad_deadline_is_rejected(hardened_service):
    left = random_fsp(4, all_accepting=True, seed=93)
    with client_for(hardened_service) as client:
        with pytest.raises(protocol.ServiceError) as info:
            client.check(left, left, "strong", deadline_ms=-5)
        assert info.value.code == protocol.BAD_REQUEST


def test_metrics_rpc_counts_requests_and_is_monotonic(hardened_service):
    left = random_fsp(5, all_accepting=True, seed=94)
    right = random_equivalent_copy(left, seed=95)

    def check_count(snapshot) -> float:
        for series in snapshot["repro_service_requests_total"]["series"]:
            if series["labels"] == {"op": "check"}:
                return series["value"]
        return 0.0

    with client_for(hardened_service) as client:
        client.check(left, right, "strong")
        first = client.metrics()
        client.check(left, right, "strong")
        second = client.metrics()
    assert check_count(second) == check_count(first) + 1
    # Engine time and queue wait were histogrammed for the checks.
    assert second["repro_service_engine_seconds"]["series"][0]["count"] >= 1
    assert second["repro_service_queue_wait_seconds"]["series"][0]["count"] >= 1
    # Cache provenance: second identical check hits the verdict cache.
    outcomes = {
        s["labels"]["outcome"]: s["value"]
        for s in second["repro_service_check_cache_total"]["series"]
    }
    assert outcomes.get("hit", 0) >= 1 and outcomes.get("miss", 0) >= 1


def test_metrics_counters_stay_monotonic_under_concurrent_clients(hardened_service):
    left = random_fsp(5, all_accepting=True, seed=96)
    right = random_equivalent_copy(left, seed=97)
    threads, per_thread = 4, 10
    failures: list = []

    def hammer() -> None:
        try:
            with client_for(hardened_service) as client:
                for _ in range(per_thread):
                    client.check(left, right, "strong")
        except Exception as error:  # pragma: no cover - surfaced via assert
            failures.append(error)

    with client_for(hardened_service) as observer:
        before = observer.metrics()
        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        snapshots = []
        while any(worker.is_alive() for worker in workers):
            snapshots.append(observer.metrics())
        for worker in workers:
            worker.join(timeout=30)
        after = observer.metrics()

    def check_count(snapshot) -> float:
        for series in snapshot["repro_service_requests_total"]["series"]:
            if series["labels"] == {"op": "check"}:
                return series["value"]
        return 0.0

    assert not failures
    counts = [check_count(s) for s in [before, *snapshots, after]]
    assert counts == sorted(counts)
    assert check_count(after) - check_count(before) == threads * per_thread


def test_prometheus_http_endpoint(hardened_service):
    url = f"http://127.0.0.1:{hardened_service['metrics_port']}/metrics"
    with urllib.request.urlopen(url, timeout=10) as response:
        assert response.status == 200
        assert "text/plain" in response.headers["Content-Type"]
        body = response.read().decode("utf-8")
    assert "# TYPE repro_service_requests_total counter" in body
    assert "# TYPE repro_service_request_seconds histogram" in body
    assert 'repro_service_shard_queue_depth{shard="0"}' in body


def test_trace_records_carry_request_anatomy(hardened_service):
    left = random_fsp(5, all_accepting=True, seed=98)
    right = random_equivalent_copy(left, seed=99)
    with client_for(hardened_service) as client:
        client.check(left, right, "strong")
    lines = [
        json.loads(line)
        for line in hardened_service["trace"].getvalue().splitlines()
        if line.strip()
    ]
    checks = [r for r in lines if r["op"] == "check" and r["status"] == "ok"]
    assert checks, "no check trace records were written"
    record = checks[-1]
    assert {"id", "peer", "seconds", "shard", "queue_wait", "engine_seconds", "cache"} <= set(
        record
    )


def test_stats_reports_flow_control_counters(hardened_service):
    with client_for(hardened_service) as client:
        server = client.stats()["server"]
    assert server["steals"] >= 0
    assert server["overloads"] >= 0
    assert server["queue_depths"] == [0, 0]
    assert "quota_clients" in server


# ----------------------------------------------------------------------
# quotas (a dedicated tiny server: buckets persist per client address)
# ----------------------------------------------------------------------
def test_quota_rejection_carries_the_overloaded_shape(tmp_path):
    holder: dict = {}
    started = threading.Event()

    def run() -> None:
        async def main() -> None:
            server = EquivalenceServer(
                port=0,
                store_root=str(tmp_path),
                num_shards=1,
                quota_rps=1.0,
                quota_burst=3.0,
            )
            await server.start()
            holder["port"] = server.port
            holder["loop"] = asyncio.get_running_loop()
            started.set()
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await server.stop()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=30), "server failed to start"
    try:
        left = random_fsp(4, all_accepting=True, seed=71)
        # Retries off: this test pins the raw rejection shape, and a
        # retrying client would absorb the fourth check after backoff.
        with ServiceClient(port=holder["port"], overload_retries=0) as client:
            # Exempt ops never charge the bucket.
            for _ in range(5):
                client.ping()
            # The burst admits three checks; the fourth is shed with a hint.
            for _ in range(3):
                client.check(left, left, "strong")
            with pytest.raises(protocol.ServiceError) as info:
                client.check(left, left, "strong")
            assert info.value.code == protocol.OVERLOADED
            assert info.value.data["retry_after_ms"] >= 1
            # Throttled clients can still observe the server.
            assert client.stats()["server"]["quota_clients"] == 1
    finally:
        loop = holder["loop"]
        loop.call_soon_threadsafe(lambda: [t.cancel() for t in asyncio.all_tasks(loop)])
        thread.join(timeout=30)
