"""Protocol-layer tests: framing, request/response round-trips, references."""

import json

import pytest

from repro.core.fsp import FSP
from repro.service import protocol
from repro.utils.serialization import to_dict


def small_fsp() -> FSP:
    return FSP(
        states=["a", "b"],
        start="a",
        alphabet=["go"],
        transitions=[("a", "go", "b")],
        extensions=[("b", "x")],
    )


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def test_frame_round_trip():
    document = {"id": 7, "op": "ping", "params": {}}
    line = protocol.encode_frame(document)
    assert line.endswith(b"\n")
    assert protocol.decode_frame(line) == document


def test_frame_rejects_oversize(monkeypatch):
    monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 16)
    with pytest.raises(protocol.ProtocolError, match="exceeds"):
        protocol.decode_frame(b'{"id": 1, "op": "ping", "params": {}}\n')


def test_frame_rejects_bad_json_and_non_objects():
    with pytest.raises(protocol.ProtocolError, match="not valid JSON"):
        protocol.decode_frame(b"{nope}\n")
    with pytest.raises(protocol.ProtocolError, match="must be a JSON object"):
        protocol.decode_frame(b"[1, 2]\n")


# ----------------------------------------------------------------------
# requests
# ----------------------------------------------------------------------
def test_parse_request_round_trip():
    line = protocol.request_frame("abc", "check", {"notion": "strong"})
    request_id, op, params = protocol.parse_request(line)
    assert (request_id, op, params) == ("abc", "check", {"notion": "strong"})


def test_parse_request_rejects_unknown_op():
    with pytest.raises(protocol.ServiceError) as info:
        protocol.parse_request(protocol.request_frame(1, "frobnicate"))
    assert info.value.code == protocol.UNKNOWN_OP


def test_parse_request_rejects_missing_op_and_bad_params():
    with pytest.raises(protocol.ServiceError) as info:
        protocol.parse_request(protocol.encode_frame({"id": 1}))
    assert info.value.code == protocol.BAD_REQUEST
    with pytest.raises(protocol.ServiceError) as info:
        protocol.parse_request(protocol.encode_frame({"id": 1, "op": "ping", "params": [1]}))
    assert info.value.code == protocol.BAD_REQUEST


# ----------------------------------------------------------------------
# responses
# ----------------------------------------------------------------------
def test_parse_response_success():
    line = protocol.ok_response(3, {"pong": True})
    response_id, result = protocol.parse_response(line)
    assert response_id == 3 and result == {"pong": True}


def test_parse_response_error_raises_with_code():
    line = protocol.error_response(4, protocol.UNKNOWN_DIGEST, "nothing stored")
    with pytest.raises(protocol.ServiceError) as info:
        protocol.parse_response(line)
    assert info.value.code == protocol.UNKNOWN_DIGEST
    assert "nothing stored" in info.value.message


def test_error_codes_are_distinct():
    assert len(set(protocol.ERROR_CODES)) == len(protocol.ERROR_CODES)


def test_service_error_survives_pickling():
    # Shard workers raise ServiceError across the process boundary.
    import pickle

    error = protocol.ServiceError(protocol.CHECK_FAILED, "boom")
    clone = pickle.loads(pickle.dumps(error))
    assert clone.code == protocol.CHECK_FAILED and clone.message == "boom"


# ----------------------------------------------------------------------
# process references
# ----------------------------------------------------------------------
def test_process_ref_shapes():
    fsp = small_fsp()
    assert protocol.process_ref(fsp) == {"process": to_dict(fsp)}
    assert protocol.process_ref("sha256:" + "0" * 64) == {"digest": "sha256:" + "0" * 64}
    assert protocol.process_ref(to_dict(fsp)) == {"process": to_dict(fsp)}
    with pytest.raises(ValueError, match="sha256"):
        protocol.process_ref("not-a-digest")
    with pytest.raises(TypeError):
        protocol.process_ref(42)


def test_process_ref_passes_wire_shaped_dicts_through():
    # Entries built directly in the documented wire shape must not be
    # double-wrapped into {"process": {"digest": ...}}.
    digest_ref = {"digest": "sha256:" + "0" * 64}
    inline_ref = {"process": to_dict(small_fsp())}
    assert protocol.process_ref(digest_ref) == digest_ref
    assert protocol.process_ref(inline_ref) == inline_ref


def test_resolve_ref_inline_round_trip():
    fsp = small_fsp()
    assert protocol.resolve_ref(protocol.process_ref(fsp)) == fsp


def test_resolve_ref_rejects_malformed():
    with pytest.raises(protocol.ServiceError) as info:
        protocol.resolve_ref({"process": {"format": "nope"}})
    assert info.value.code == protocol.INVALID_PROCESS
    with pytest.raises(protocol.ServiceError) as info:
        protocol.resolve_ref("just-a-string")
    assert info.value.code == protocol.INVALID_PROCESS
    with pytest.raises(protocol.ServiceError) as info:
        protocol.resolve_ref({})
    assert info.value.code == protocol.INVALID_PROCESS


def test_resolve_ref_digest_without_store_is_unknown():
    with pytest.raises(protocol.ServiceError) as info:
        protocol.resolve_ref({"digest": "sha256:" + "0" * 64})
    assert info.value.code == protocol.UNKNOWN_DIGEST


def test_frames_are_single_lines():
    # Embedded newlines would break the framing; json.dumps must not emit any.
    fsp = small_fsp()
    line = protocol.request_frame(1, "check", {"left": protocol.process_ref(fsp)})
    assert line.count(b"\n") == 1 and line.endswith(b"\n")
    assert json.loads(line.decode("utf-8"))["op"] == "check"
