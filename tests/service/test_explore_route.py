"""The service's lazy path: composed-system references and the on_the_fly flag.

These run the worker job functions in-process (``_init_worker`` installs the
per-worker engine/store into the module globals), so the routing and
resolution logic is exercised without forking executors.
"""

from __future__ import annotations

import pytest

from repro.explore import compose_eager, spec_to_document
from repro.generators.families import interleaved_cycles_pair, token_ring_system
from repro.service import protocol
from repro.service.shards import ShardPool, _init_worker, _worker_check
from repro.service.store import ProcessStore
from repro.utils.serialization import to_dict


@pytest.fixture()
def worker():
    _init_worker(0, None, max_processes=16, max_verdicts=64)


def system_ref(spec) -> dict:
    return {"system": spec_to_document(spec)}


def check_spec(left, right, **overrides) -> dict:
    spec = {
        "left": left,
        "right": right,
        "notion": "observational",
        "align": True,
        "witness": False,
        "on_the_fly": None,
        "params": {},
    }
    spec.update(overrides)
    return spec


class TestResolveOperand:
    def test_system_reference_parses_to_a_spec(self):
        from repro.explore.system import SystemSpec

        spec = token_ring_system(3)
        resolved = protocol.resolve_operand(system_ref(spec))
        assert isinstance(resolved, SystemSpec)
        assert compose_eager(resolved) == compose_eager(spec)

    def test_system_leaves_resolve_through_the_store(self, tmp_path):
        store = ProcessStore(tmp_path)
        component = compose_eager(token_ring_system(3))
        digest = store.put(component)
        document = {"op": "interleave", "left": {"digest": digest}, "right": {"digest": digest}}
        resolved = protocol.resolve_operand({"system": document}, store)
        assert compose_eager(resolved.left) == component

    def test_unknown_digest_in_a_leaf_is_reported(self, tmp_path):
        store = ProcessStore(tmp_path)
        document = {
            "op": "interleave",
            "left": {"digest": "sha256:" + "0" * 64},
            "right": {"digest": "sha256:" + "0" * 64},
        }
        with pytest.raises(protocol.ServiceError) as info:
            protocol.resolve_operand({"system": document}, store)
        assert info.value.code == protocol.UNKNOWN_DIGEST

    def test_malformed_system_is_invalid_process(self):
        with pytest.raises(protocol.ServiceError) as info:
            protocol.resolve_operand({"system": {"op": "tensor", "of": {}}})
        assert info.value.code == protocol.INVALID_PROCESS

    def test_plain_references_still_resolve(self):
        component = compose_eager(token_ring_system(3))
        assert protocol.resolve_operand({"process": to_dict(component)}) == component


class TestWorkerLazyRoute:
    def test_system_operands_default_to_the_lazy_route(self, worker):
        ok, bad = interleaved_cycles_pair([4, 4, 4])
        result = _worker_check(check_spec(system_ref(ok), system_ref(bad), witness=True))
        assert result["equivalent"] is False
        assert result["route"].startswith("on-the-fly")
        assert result["pairs_visited"] < 64  # 4^3 product states, visited locally
        assert "snag" in (result["witness"] or "")

    def test_on_the_fly_false_composes_eagerly(self, worker):
        ok, bad = interleaved_cycles_pair([3, 3])
        result = _worker_check(check_spec(system_ref(ok), system_ref(bad), on_the_fly=False))
        assert result["equivalent"] is False
        assert "route" not in result

    def test_flag_routes_plain_processes_lazily(self, worker):
        component = compose_eager(token_ring_system(3))
        result = _worker_check(
            check_spec(
                {"process": to_dict(component)},
                {"process": to_dict(component)},
                on_the_fly=True,
            )
        )
        assert result["equivalent"] is True
        assert result["route"].startswith("on-the-fly")

    def test_bad_notion_on_the_lazy_route_is_check_failed(self, worker):
        ok, _bad = interleaved_cycles_pair([3, 3])
        with pytest.raises(protocol.ServiceError) as info:
            _worker_check(check_spec(system_ref(ok), system_ref(ok), notion="failure"))
        assert info.value.code == protocol.CHECK_FAILED


class TestRouting:
    def test_system_references_route_deterministically(self):
        pool = ShardPool.__new__(ShardPool)
        pool.num_shards = 8
        ref = system_ref(token_ring_system(3))
        first = pool.route_check({"left": ref})
        assert first == pool.route_check({"left": ref})
        assert 0 <= first < 8


class TestOperandErrorCodes:
    def test_unparsable_term_leaf_is_invalid_process(self):
        with pytest.raises(protocol.ServiceError) as info:
            protocol.resolve_operand({"system": {"term": "((("}})
        assert info.value.code == protocol.INVALID_PROCESS

    def test_runaway_term_system_fails_the_check_instead_of_hanging(self, worker):
        document = {"term": "A", "definitions": "A := a.(A | A)", "max_states": 40}
        with pytest.raises(protocol.ServiceError) as info:
            _worker_check(check_spec({"system": document}, {"system": document}))
        assert info.value.code == protocol.CHECK_FAILED
        assert "exceeded 40" in info.value.message

    def test_non_integer_max_states_is_invalid_process(self):
        document = {"term": "a.0", "max_states": "lots"}
        with pytest.raises(protocol.ServiceError) as info:
            protocol.resolve_operand({"system": document})
        assert info.value.code == protocol.INVALID_PROCESS
        assert "max_states" in info.value.message
