"""ProcessStore scale behaviour: startup index, corruption isolation, writers.

The store's startup index (built by scanning the root once) is what keeps
``__contains__`` and ``digests()`` off the disk on the hot path; these tests
pin the properties the cluster layer leans on: the index rebuilds faithfully
after a restart, one damaged entry never poisons the rest, and concurrent
writers racing on the same digest all land on one correct entry.
"""

import threading

import pytest

from repro.core.errors import InvalidProcessError
from repro.core.fsp import FSP
from repro.generators.random_fsp import random_fsp
from repro.service.store import ProcessStore


def build(seed: int) -> FSP:
    return random_fsp(8, tau_probability=0.2, all_accepting=True, seed=seed)


# ----------------------------------------------------------------------
# startup index rebuild
# ----------------------------------------------------------------------
def test_index_rebuilds_after_restart(tmp_path):
    writer = ProcessStore(tmp_path)
    digests = sorted(writer.put(build(seed)) for seed in range(20))

    restarted = ProcessStore(tmp_path)  # fresh instance, cold cache
    assert sorted(restarted.digests()) == digests
    assert restarted.cache_info()["on_disk"] == 20
    assert restarted.cache_info()["cached"] == 0  # index != loaded
    for digest in digests:
        assert digest in restarted


def test_reindex_picks_up_entries_written_behind_the_stores_back(tmp_path):
    ours = ProcessStore(tmp_path)
    ours.put(build(1))
    theirs = ProcessStore(tmp_path)  # another process writing the same root
    foreign = theirs.put(build(2))
    assert ours.reindex() == 2
    assert foreign in ours


def test_contains_falls_back_to_disk_for_unindexed_entries(tmp_path):
    ours = ProcessStore(tmp_path)
    foreign = ProcessStore(tmp_path).put(build(3))
    # Not in our index (written after our scan), but on disk: one probe
    # answers yes and folds the entry into the index for next time.
    assert foreign in ours
    assert foreign in set(ours.digests())


def test_index_ignores_junk_files_in_the_tree(tmp_path):
    store = ProcessStore(tmp_path)
    good = store.put(build(4))
    (tmp_path / "ab").mkdir(exist_ok=True)
    (tmp_path / "ab" / "not-a-digest.json").write_text("{}")
    (tmp_path / "ab" / ("c" * 64 + ".json")).write_text("{}")  # wrong fan-out dir
    (tmp_path / "README.txt").write_text("ignore me")
    fresh = ProcessStore(tmp_path)
    assert list(fresh.digests()) == [good]


# ----------------------------------------------------------------------
# corruption isolation
# ----------------------------------------------------------------------
def test_one_corrupt_entry_does_not_poison_the_index(tmp_path):
    store = ProcessStore(tmp_path)
    victim = store.put(build(5))
    healthy = [store.put(build(seed)) for seed in range(6, 16)]
    store.path_for(victim).write_text("this is not json")

    fresh = ProcessStore(tmp_path)
    # The index still lists every entry (it scans names, not contents)...
    assert fresh.cache_info()["on_disk"] == 11
    # ...the damaged one fails loudly on read...
    with pytest.raises(InvalidProcessError):
        fresh.get(victim)
    # ...and every other entry still round-trips.
    for digest in healthy:
        assert fresh.get(digest) is not None


def test_rewriting_a_corrupt_entry_heals_it(tmp_path):
    store = ProcessStore(tmp_path)
    fsp = build(17)
    digest = store.put(fsp)
    store.path_for(digest).write_text("garbage")
    fresh = ProcessStore(tmp_path)
    with pytest.raises(InvalidProcessError):
        fresh.get(digest)
    assert fresh.put(fsp) == digest  # put overwrites the damage
    assert fresh.get(digest) == fsp


# ----------------------------------------------------------------------
# concurrent writers
# ----------------------------------------------------------------------
def test_concurrent_writers_on_the_same_digest(tmp_path):
    fsp = build(18)
    results: list[str] = []
    errors: list[Exception] = []
    barrier = threading.Barrier(8)

    def writer() -> None:
        try:
            store = ProcessStore(tmp_path)  # each writer opens its own handle
            barrier.wait(timeout=30)
            results.append(store.put(fsp))
        except Exception as error:  # pragma: no cover - surfaced via assert
            errors.append(error)

    threads = [threading.Thread(target=writer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors
    assert len(set(results)) == 1  # everyone computed the same address

    reader = ProcessStore(tmp_path)
    assert reader.get(results[0]) == fsp  # and the entry is intact
    assert list(reader.digests()) == [results[0]]
    assert not list(tmp_path.rglob("*.tmp"))  # no temp residue from the race


def test_concurrent_distinct_writers_all_land(tmp_path):
    processes = [build(seed) for seed in range(30, 42)]
    barrier = threading.Barrier(len(processes))
    digests: list[str] = []
    lock = threading.Lock()

    def writer(fsp: FSP) -> None:
        store = ProcessStore(tmp_path)
        barrier.wait(timeout=30)
        digest = store.put(fsp)
        with lock:
            digests.append(digest)

    threads = [threading.Thread(target=writer, args=(fsp,)) for fsp in processes]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    reader = ProcessStore(tmp_path)
    assert sorted(reader.digests()) == sorted(digests)
    assert len(set(digests)) == len(processes)
