"""Metrics registry tests: semantics, export formats, thread safety."""

import io
import json
import threading

import pytest

from repro.service.metrics import DEFAULT_BUCKETS, MetricsRegistry, TraceLog


# ----------------------------------------------------------------------
# counter / gauge / histogram semantics
# ----------------------------------------------------------------------
def test_counter_counts_and_refuses_to_go_down():
    registry = MetricsRegistry()
    requests = registry.counter("requests_total", "requests", ("op",))
    requests.labels("check").inc()
    requests.labels("check").inc(2.5)
    requests.labels("ping").inc()
    assert requests.labels("check").value == pytest.approx(3.5)
    assert requests.labels("ping").value == 1.0
    with pytest.raises(ValueError):
        requests.labels("check").inc(-1)


def test_label_arity_is_enforced():
    registry = MetricsRegistry()
    errors = registry.counter("errors_total", "errors", ("op", "code"))
    with pytest.raises(ValueError):
        errors.labels("check")


def test_gauge_set_inc_dec_and_callback():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth", "queue depth", ("shard",))
    gauge.labels("0").set(7)
    gauge.labels("0").inc()
    gauge.labels("0").dec(3)
    assert gauge.labels("0").value == 5.0
    backing = {"value": 11}
    gauge.labels("1").set_function(lambda: backing["value"])
    assert gauge.labels("1").value == 11.0
    backing["value"] = 13
    assert gauge.labels("1").value == 13.0  # read at scrape time, not set time


def test_histogram_buckets_are_cumulative():
    registry = MetricsRegistry()
    latency = registry.histogram("seconds", "latency", (), buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        latency.labels().observe(value)
    snap = latency.labels().snapshot()
    assert snap["buckets"] == {"0.1": 1, "1.0": 3, "10.0": 4, "+Inf": 5}
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(56.05)
    assert latency.labels().quantile(0.5) == 1.0
    assert latency.labels().quantile(0.99) == float("inf")


def test_registry_rejects_conflicting_redefinition():
    registry = MetricsRegistry()
    registry.counter("thing_total", "things", ("op",))
    # Same definition: fine (idempotent lookup).
    registry.counter("thing_total", "things", ("op",))
    with pytest.raises(ValueError):
        registry.gauge("thing_total", "things", ("op",))
    with pytest.raises(ValueError):
        registry.counter("thing_total", "things", ("other",))


# ----------------------------------------------------------------------
# export surfaces
# ----------------------------------------------------------------------
def test_snapshot_shape():
    registry = MetricsRegistry()
    registry.counter("requests_total", "requests", ("op",)).labels("check").inc(3)
    registry.histogram("seconds", "latency").labels().observe(0.02)
    snap = registry.snapshot()
    assert snap["requests_total"]["type"] == "counter"
    assert snap["requests_total"]["series"] == [{"labels": {"op": "check"}, "value": 3.0}]
    histogram = snap["seconds"]["series"][0]
    assert histogram["count"] == 1 and histogram["sum"] == pytest.approx(0.02)
    assert histogram["buckets"]["+Inf"] == 1
    # The snapshot is JSON-clean (the metrics RPC returns it verbatim).
    json.dumps(snap)


def test_prometheus_rendering():
    registry = MetricsRegistry()
    registry.counter("repro_requests_total", "Requests by op", ("op",)).labels("check").inc(2)
    registry.gauge("repro_depth", "Depth", ("shard",)).labels("0").set(4)
    registry.histogram("repro_seconds", "Latency", (), buckets=(0.5,)).labels().observe(0.1)
    text = registry.render()
    assert "# HELP repro_requests_total Requests by op" in text
    assert "# TYPE repro_requests_total counter" in text
    assert 'repro_requests_total{op="check"} 2' in text
    assert 'repro_depth{shard="0"} 4' in text
    assert 'repro_seconds_bucket{le="0.5"} 1' in text
    assert 'repro_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_seconds_sum 0.1" in text
    assert "repro_seconds_count 1" in text
    assert text.endswith("\n")


def test_prometheus_label_escaping():
    registry = MetricsRegistry()
    registry.counter("odd_total", "odd", ("msg",)).labels('a"b\\c\nd').inc()
    assert 'odd_total{msg="a\\"b\\\\c\\nd"} 1' in registry.render()


def test_default_buckets_are_sorted_and_span_the_latency_range():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    assert DEFAULT_BUCKETS[0] <= 0.001 and DEFAULT_BUCKETS[-1] >= 10.0


# ----------------------------------------------------------------------
# thread safety: the monotonicity contract
# ----------------------------------------------------------------------
def test_counter_monotonicity_under_concurrent_writers_and_readers():
    registry = MetricsRegistry()
    requests = registry.counter("requests_total", "requests", ("op",))
    threads, increments = 8, 500
    stop_reading = threading.Event()
    observed: list[float] = []

    def writer() -> None:
        child = requests.labels("check")
        for _ in range(increments):
            child.inc()

    def reader() -> None:
        while not stop_reading.is_set():
            snap = registry.snapshot()
            series = snap["requests_total"]["series"]
            observed.append(series[0]["value"] if series else 0.0)

    reader_thread = threading.Thread(target=reader)
    reader_thread.start()
    workers = [threading.Thread(target=writer) for _ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=30)
    stop_reading.set()
    reader_thread.join(timeout=30)
    # No lost updates, and every mid-flight snapshot was non-decreasing.
    assert requests.labels("check").value == threads * increments
    assert observed == sorted(observed)


# ----------------------------------------------------------------------
# trace records
# ----------------------------------------------------------------------
def test_trace_log_writes_one_json_object_per_line():
    stream = io.StringIO()
    log = TraceLog(stream)
    log.record(id=1, op="check", status="ok", seconds=0.01)
    log.record(id=2, op="ping", status="ok")
    lines = stream.getvalue().strip().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["id"] == 1 and first["op"] == "check" and "ts" in first
