"""ShardPool tests: sticky routing, cache affinity, crash recovery."""

import os
import pickle

import pytest

from repro.engine import Engine, Process
from repro.generators.random_fsp import perturb, random_equivalent_copy, random_fsp
from repro.service import protocol
from repro.service.shards import ShardPool, _worker_stats
from repro.service.store import ProcessStore
from repro.utils.serialization import content_digest


def _crash_worker():
    os._exit(17)


@pytest.fixture(scope="module")
def workload():
    base = random_fsp(10, tau_probability=0.2, all_accepting=True, seed=11)
    copy = random_equivalent_copy(base, duplicates=2, seed=12)
    near = perturb(base, seed=13)
    return base, copy, near


def spec_for(left_ref, right, notion="observational"):
    return {
        "left": left_ref,
        "right": protocol.process_ref(right),
        "notion": notion,
        "align": True,
        "witness": False,
        "params": {},
    }


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
def test_shard_of_is_stable_and_in_range():
    pool = ShardPool.__new__(ShardPool)  # routing needs no executors
    pool.num_shards = 4
    digest = "sha256:" + "ab" * 32
    assert pool.shard_of(digest) == pool.shard_of(digest)
    assert 0 <= pool.shard_of(digest) < 4
    assert 0 <= pool.shard_of("arbitrary-string") < 4


def test_route_check_follows_left_digest(workload):
    base, copy, _near = workload
    pool = ShardPool.__new__(ShardPool)
    pool.num_shards = 8
    digest = content_digest(base)
    by_digest = pool.route_check(spec_for({"digest": digest}, copy))
    assert by_digest == pool.shard_of(digest)
    # An inline copy of the same process routes to the same shard as its
    # digest reference -- that is the cache-affinity promise.
    inline = pool.route_check(spec_for(protocol.process_ref(base), copy))
    assert inline == by_digest


# ----------------------------------------------------------------------
# checks through real workers
# ----------------------------------------------------------------------
def test_check_and_affinity_through_store(tmp_path, workload):
    base, copy, near = workload
    store = ProcessStore(tmp_path)
    digest = store.put(base)
    with ShardPool(2, tmp_path, max_processes=8, max_verdicts=32) as pool:
        expected_shard = pool.shard_of(digest)
        specs = [
            spec_for({"digest": digest}, copy, "observational"),
            spec_for({"digest": digest}, near, "strong"),
            spec_for({"digest": digest}, copy, "strong"),
        ]
        results = pool.check_many(specs)
        # Reference answers from an in-process engine.
        engine = Engine()
        for spec, result in zip(specs, results):
            right = protocol.resolve_ref(spec["right"])
            want = engine.check(base, right, spec["notion"], align=True).equivalent
            assert result["equivalent"] is want
            # Shard affinity: everything keyed by this digest lands together.
            assert result["shard"] == expected_shard
        stats = pool.stats()
        assert [s["shard"] for s in stats] == [0, 1]
        assert stats[expected_shard]["checks"] == len(specs)
        assert stats[1 - expected_shard]["checks"] == 0
        # The hot shard's engine actually cached the routed processes.
        assert stats[expected_shard]["engine"]["processes"] >= 2


def test_check_failed_error_crosses_process_boundary(tmp_path, workload):
    base, copy, _near = workload
    with ShardPool(1, tmp_path) as pool:
        with pytest.raises(protocol.ServiceError) as info:
            pool.check(spec_for(protocol.process_ref(base), copy, "no-such-notion"))
        assert info.value.code == protocol.CHECK_FAILED
        with pytest.raises(protocol.ServiceError) as info:
            pool.check(spec_for({"digest": "sha256:" + "0" * 64}, copy))
        assert info.value.code == protocol.UNKNOWN_DIGEST


# ----------------------------------------------------------------------
# crash recovery
# ----------------------------------------------------------------------
def test_crashed_worker_is_revived(tmp_path, workload):
    from concurrent.futures.process import BrokenProcessPool

    base, copy, _near = workload
    store = ProcessStore(tmp_path)
    digest = store.put(base)
    with ShardPool(1, tmp_path) as pool:
        before = pool.run(0, _worker_stats)
        with pytest.raises(BrokenProcessPool):
            pool.submit(0, _crash_worker).result()
        # The next routed job transparently revives the shard and succeeds;
        # the replacement worker still resolves digests (the store is disk-
        # backed), it just starts with cold caches.
        result = pool.check(spec_for({"digest": digest}, copy))
        assert result["equivalent"] is True
        assert result["pid"] != before["pid"]
        assert pool.revivals == 1
        after = pool.run(0, _worker_stats)
        assert after["checks"] == 1  # fresh worker, fresh counters


def test_one_crash_revives_once_despite_pending_specs(tmp_path, workload):
    # A crash breaks every future still queued on the shard; recovery must
    # restart the worker once per crash, not once per affected spec.
    base, copy, near = workload
    store = ProcessStore(tmp_path)
    digest = store.put(base)
    with ShardPool(1, tmp_path) as pool:
        pool.submit(0, _crash_worker)  # queued first; kills the worker
        specs = [
            spec_for({"digest": digest}, copy),
            spec_for({"digest": digest}, near),
            spec_for({"digest": digest}, copy, "strong"),
        ]
        results = pool.check_many(specs)
        assert [r["equivalent"] for r in results] == [
            pool.check(spec)["equivalent"] for spec in specs
        ]
        assert pool.revivals == 1


def test_shard_of_tolerates_malformed_digests():
    # A client-supplied digest that is not valid hex must still route (the
    # worker's store lookup then rejects it with unknown_digest) rather than
    # blow up routing in the server process.
    pool = ShardPool.__new__(ShardPool)
    pool.num_shards = 4
    for key in ("sha256:nothex", "sha256:", "sha256:XYZ" + "0" * 61, ""):
        assert 0 <= pool.shard_of(key) < 4


def test_persistently_crashing_job_still_raises(tmp_path):
    from concurrent.futures.process import BrokenProcessPool

    with ShardPool(1, tmp_path) as pool:
        with pytest.raises(BrokenProcessPool):
            pool.run(0, _crash_worker)  # crashes, revives, crashes again
        assert pool.revivals == 1
        # ... and the pool is still usable afterwards.
        assert pool.run(0, _worker_stats)["shard"] == 0


# ----------------------------------------------------------------------
# worker-shipping support in the engine layer
# ----------------------------------------------------------------------
def test_process_pickles_lean(workload):
    base, _copy, _near = workload
    handle = Process(base)
    handle.lts()
    handle.weak_kernel()
    handle.minimized_observational()
    clone = pickle.loads(pickle.dumps(handle))
    assert clone.fsp == base
    # Snapshots ship only the FSP; artifacts rebuild lazily on arrival.
    summary = clone.artifact_summary()
    assert not summary["lts"] and not summary["weak_kernel"]
    assert clone.minimized_observational() == handle.minimized_observational()
    # And the pickle really is smaller than one carrying the caches would be.
    assert len(pickle.dumps(handle)) == len(pickle.dumps(Process(base)))


def test_engine_export_stats(workload):
    base, copy, _near = workload
    engine = Engine(max_processes=4, max_verdicts=8)
    engine.check(base, copy, "strong", align=True)
    stats = engine.export_stats()
    assert stats["max_processes"] == 4 and stats["max_verdicts"] == 8
    assert stats["processes"] == len(stats["process_artifacts"])
    assert all(row["artifacts"]["lts"] for row in stats["process_artifacts"])
    import json

    json.dumps(stats)  # must be JSON-compatible for the stats RPC
