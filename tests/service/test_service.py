"""End-to-end service tests: asyncio server + sync clients over real sockets."""

import asyncio
import json
import socket
import threading

import pytest

from repro.engine import Engine
from repro.generators.random_fsp import perturb, random_equivalent_copy, random_fsp
from repro.service import EquivalenceServer, ServiceClient, ServiceError
from repro.utils.serialization import content_digest, to_dict


@pytest.fixture(scope="module")
def pool_processes():
    bases = [random_fsp(8, tau_probability=0.2, all_accepting=True, seed=s) for s in (21, 22)]
    copies = [random_equivalent_copy(b, duplicates=2, seed=s + 50) for s, b in zip((21, 22), bases)]
    return {
        "bases": bases,
        "copies": copies,
        "nears": [perturb(b, seed=s + 80) for s, b in zip((21, 22), bases)],
    }


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """One running server (2 shards) shared by the module's tests."""
    store_root = str(tmp_path_factory.mktemp("service-store"))
    holder: dict = {}
    started = threading.Event()

    def run() -> None:
        async def main() -> None:
            server = EquivalenceServer(
                port=0, store_root=store_root, num_shards=2, max_processes=16, max_verdicts=64
            )
            await server.start()
            holder["server"] = server
            holder["port"] = server.port
            holder["loop"] = asyncio.get_running_loop()
            started.set()
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await server.stop()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(timeout=30), "server failed to start"
    yield holder
    loop = holder["loop"]
    loop.call_soon_threadsafe(lambda: [t.cancel() for t in asyncio.all_tasks(loop)])
    thread.join(timeout=30)


def client_for(service) -> ServiceClient:
    return ServiceClient(port=service["port"])


# ----------------------------------------------------------------------
# basic round trips
# ----------------------------------------------------------------------
def test_ping(service):
    with client_for(service) as client:
        info = client.ping()
    assert info["pong"] is True and info["shards"] == 2


def test_store_then_check_by_digest(service, pool_processes):
    base = pool_processes["bases"][0]
    copy = pool_processes["copies"][0]
    near = pool_processes["nears"][0]
    engine = Engine()
    with client_for(service) as client:
        digest = client.store(base)
        assert digest == content_digest(base)
        for other, notion in ((copy, "observational"), (near, "strong"), (copy, "language")):
            got = client.check(digest, other, notion)
            want = engine.check(base, other, notion, align=True).equivalent
            assert got["equivalent"] is want
            assert got["notion"] == notion


def test_check_inline_with_witness(service, pool_processes):
    base = pool_processes["bases"][1]
    near = pool_processes["nears"][1]
    engine = Engine()
    want = engine.check(base, near, "strong", align=True, witness=True)
    with client_for(service) as client:
        got = client.check(base, near, "strong", witness=True)
    assert got["equivalent"] is want.equivalent
    if not want.equivalent:
        assert got["witness"]  # the serialised describe() string


def test_check_many_mixed_manifest(service, pool_processes):
    base0, base1 = pool_processes["bases"]
    copy0 = pool_processes["copies"][0]
    near1 = pool_processes["nears"][1]
    engine = Engine()
    manifest = [
        (base0, copy0, "observational"),
        (base0, near1, "language"),
        {"left": base1, "right": near1, "notion": "k-observational", "params": {"k": 2}},
    ]
    with client_for(service) as client:
        digest = client.store(base0)  # digest references mix into manifests too
        result = client.check_many([(digest, copy0, "strong"), *manifest])
        # Wire-shaped dict entries (docs/service-protocol.md) work verbatim.
        wire = client.check_many(
            [{"left": {"digest": digest}, "right": copy0, "notion": "strong"}]
        )
        assert wire["results"][0]["equivalent"] == result["results"][0]["equivalent"]
    assert result["summary"]["checks"] == 4
    assert result["summary"]["failed"] == 0
    wants = [
        engine.check(base0, copy0, "strong", align=True).equivalent,
        engine.check(base0, copy0, "observational", align=True).equivalent,
        engine.check(base0, near1, "language", align=True).equivalent,
        engine.check(base1, near1, "k-observational", align=True, k=2).equivalent,
    ]
    assert [r["equivalent"] for r in result["results"]] == wants


def test_check_many_reports_per_check_errors(service, pool_processes):
    base = pool_processes["bases"][0]
    copy = pool_processes["copies"][0]
    with client_for(service) as client:
        result = client.check_many(
            [
                (base, copy, "observational"),
                ("sha256:" + "f" * 64, copy, "observational"),  # unknown digest
            ]
        )
    assert result["summary"]["checks"] == 2 and result["summary"]["failed"] == 1
    assert result["results"][0]["equivalent"] is True
    assert result["results"][1]["error"]["code"] == "unknown_digest"


def test_minimize_and_classify(service, pool_processes):
    base = pool_processes["bases"][0]
    engine = Engine()
    with client_for(service) as client:
        minimal = client.minimize(base, "observational")
        classes = client.classify(base)
    assert minimal == engine.minimize(base, "observational")
    from repro.core.classify import classify

    assert classes == sorted(str(model) for model in classify(base))


# ----------------------------------------------------------------------
# shard affinity and stats
# ----------------------------------------------------------------------
def test_shard_affinity_and_stats(service, pool_processes):
    base = pool_processes["bases"][0]
    copy = pool_processes["copies"][0]
    near = pool_processes["nears"][0]
    with client_for(service) as client:
        digest = client.store(base)
        shards = {client.check(digest, other)["shard"] for other in (copy, near, copy)}
        assert len(shards) == 1  # digest-sticky: one shard serves this process
        stats = client.stats()
    server_stats = stats["server"]
    assert server_stats["shards"] == 2
    assert server_stats["store"]["on_disk"] >= 1
    assert {row["shard"] for row in stats["shards"]} == {0, 1}
    hot = stats["shards"][shards.pop()]
    assert hot["checks"] >= 3
    assert hot["engine"]["processes"] >= 1
    assert isinstance(hot["engine"]["process_artifacts"], list)


# ----------------------------------------------------------------------
# concurrency
# ----------------------------------------------------------------------
def test_concurrent_clients_agree_with_reference(service, pool_processes):
    engine = Engine()
    jobs = []
    for index in range(4):
        base = pool_processes["bases"][index % 2]
        other = (pool_processes["copies"] + pool_processes["nears"])[index % 4]
        notion = ("observational", "strong")[index % 2]
        jobs.append((base, other, notion, engine.check(base, other, notion, align=True).equivalent))

    failures: list[str] = []

    def worker(job_index: int) -> None:
        base, other, notion, want = jobs[job_index]
        try:
            with client_for(service) as client:
                for _ in range(5):
                    got = client.check(base, other, notion)
                    if got["equivalent"] is not want:
                        failures.append(f"job {job_index}: {got['equivalent']} != {want}")
        except Exception as error:  # surface thread failures in the main thread
            failures.append(f"job {job_index}: {error!r}")

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(len(jobs))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not failures, failures


def test_pipelined_requests_answered_in_order(service, pool_processes):
    # Raw socket: three requests written back-to-back, three responses in order.
    base = pool_processes["bases"][0]
    with socket.create_connection(("127.0.0.1", service["port"]), timeout=30) as sock:
        payload = b""
        for request_id in (1, 2, 3):
            payload += json.dumps(
                {"id": request_id, "op": "ping", "params": {}}
            ).encode() + b"\n"
        sock.sendall(payload)
        reader = sock.makefile("rb")
        ids = [json.loads(reader.readline())["id"] for _ in range(3)]
    assert ids == [1, 2, 3]
    del base


# ----------------------------------------------------------------------
# protocol errors over the wire
# ----------------------------------------------------------------------
def test_malformed_json_gets_bad_request(service):
    with socket.create_connection(("127.0.0.1", service["port"]), timeout=30) as sock:
        sock.sendall(b"this is not json\n")
        response = json.loads(sock.makefile("rb").readline())
    assert response["ok"] is False
    assert response["error"]["code"] == "bad_request"


def test_unknown_op_is_reported(service):
    with socket.create_connection(("127.0.0.1", service["port"]), timeout=30) as sock:
        sock.sendall(b'{"id": 9, "op": "frobnicate", "params": {}}\n')
        response = json.loads(sock.makefile("rb").readline())
    assert response["ok"] is False
    assert response["error"]["code"] == "unknown_op"
    assert response["id"] == 9


def test_store_requires_inline_process(service):
    with client_for(service) as client:
        with pytest.raises(ServiceError) as info:
            client.request("store", {})
    assert info.value.code == "bad_request"


def test_invalid_inline_process_is_rejected(service):
    with client_for(service) as client:
        with pytest.raises(ServiceError) as info:
            client.request(
                "check",
                {"left": {"process": {"format": "wrong"}}, "right": {"process": {}}},
            )
    assert info.value.code == "invalid_process"


def test_unsupported_notion_parameter_fails_cleanly(service, pool_processes):
    base = pool_processes["bases"][0]
    copy = pool_processes["copies"][0]
    with client_for(service) as client:
        with pytest.raises(ServiceError) as info:
            client.check(base, copy, "strong", nonsense_bound=3)
    assert info.value.code == "check_failed"


def test_malformed_digest_reference_is_unknown_not_internal(service, pool_processes):
    copy = pool_processes["copies"][0]
    with client_for(service) as client:
        with pytest.raises(ServiceError) as info:
            client.check("sha256:nothex", copy)
    assert info.value.code == "unknown_digest"


def test_client_cli_reports_non_ndjson_peer_as_error(tmp_path):
    # A peer that does not speak the protocol must yield `error: ...` and
    # exit 2, not a traceback (exit 2 is the documented usage/input code).
    import socketserver
    import threading as _threading

    class GarbageHandler(socketserver.StreamRequestHandler):
        def handle(self):
            self.rfile.readline()
            self.wfile.write(b"HTTP/1.1 400 Bad Request\r\n")

    with socketserver.TCPServer(("127.0.0.1", 0), GarbageHandler) as garbage:
        port = garbage.server_address[1]
        thread = _threading.Thread(target=garbage.handle_request, daemon=True)
        thread.start()
        from repro.cli import main
        from repro.utils.serialization import save_process_file

        process_file = tmp_path / "p.json"
        save_process_file(random_fsp(4, all_accepting=True, seed=1), process_file)
        exit_code = main(
            ["client", "--port", str(port), "check", str(process_file), str(process_file)]
        )
        thread.join(timeout=10)
    assert exit_code == 2


def test_digest_survives_server_store_round_trip(service, pool_processes):
    # The store digest is computed over the canonical encoding, so a process
    # rebuilt from its own serialisation stores to the same address.
    base = pool_processes["bases"][1]
    from repro.utils.serialization import from_dict

    with client_for(service) as client:
        first = client.store(base)
        second = client.store(from_dict(json.loads(json.dumps(to_dict(base)))))
    assert first == second


def test_composed_system_checks_take_the_lazy_route(service):
    """A manifest carrying {"system": ...} operands runs on-the-fly server-side."""
    from repro.explore import spec_to_document
    from repro.generators.families import interleaved_cycles_pair

    ok, bad = interleaved_cycles_pair([4, 4, 4])
    ok_ref = {"system": spec_to_document(ok)}
    bad_ref = {"system": spec_to_document(bad)}
    with client_for(service) as client:
        unequal = client.check(ok_ref, bad_ref, "strong", witness=True)
        equal = client.check(ok_ref, ok_ref, "strong")
        batch = client.check_many([(ok_ref, bad_ref), (ok_ref, ok_ref)], notion="strong")
    assert unequal["equivalent"] is False
    assert unequal["route"].startswith("on-the-fly") and unequal["pairs_visited"] > 0
    assert "snag" in unequal["witness"]
    assert equal["equivalent"] is True
    assert [r["equivalent"] for r in batch["results"]] == [False, True]
