"""Public-API snapshot test: accidental surface breaks fail the build.

The committed ``public_api_contract.json`` records the public surface the
library promises: the top-level ``repro.__all__``, the engine facade's
exports, the registered built-in notions, and the public methods of the
:class:`Engine` / :class:`Process` / :class:`Verdict` types.  Any drift --
a removed export, a renamed method, a notion that silently disappears --
fails this test with the exact difference.

Intentional changes regenerate the contract::

    PYTHONPATH=src python tests/api/test_public_api.py --update

and the diff is reviewed like any other API change.
"""

from __future__ import annotations

import json
from dataclasses import fields
from pathlib import Path

CONTRACT_PATH = Path(__file__).with_name("public_api_contract.json")

#: notions shipped by the library itself; test-registered notions are
#: excluded so registry round-trip tests cannot poison the snapshot.
BUILTIN_NOTIONS = ("failure", "k-observational", "language", "observational", "strong")


def _public_methods(cls: type) -> list[str]:
    return sorted(
        name
        for name, value in vars(cls).items()
        if not name.startswith("_")
        and (callable(value) or isinstance(value, (property, classmethod)))
    )


def current_snapshot() -> dict:
    import repro
    import repro.engine
    from repro.engine import Engine, Process, Verdict, available_notions

    return {
        "repro_all": sorted(repro.__all__),
        "engine_all": sorted(repro.engine.__all__),
        "notions": sorted(set(available_notions()) & set(BUILTIN_NOTIONS) | set(BUILTIN_NOTIONS)),
        "engine_methods": _public_methods(Engine),
        "process_methods": _public_methods(Process),
        "verdict_fields": sorted(field.name for field in fields(Verdict)),
    }


def test_public_api_matches_contract():
    assert CONTRACT_PATH.exists(), (
        f"missing {CONTRACT_PATH}; regenerate with "
        "`PYTHONPATH=src python tests/api/test_public_api.py --update`"
    )
    contract = json.loads(CONTRACT_PATH.read_text(encoding="utf-8"))
    snapshot = current_snapshot()
    for key in sorted(set(contract) | set(snapshot)):
        expected = set(contract.get(key, []))
        actual = set(snapshot.get(key, []))
        missing = sorted(expected - actual)
        added = sorted(actual - expected)
        assert not missing and not added, (
            f"public API drift in {key!r}: removed {missing}, added {added}; if this is "
            "intentional, regenerate the contract with "
            "`PYTHONPATH=src python tests/api/test_public_api.py --update` and review the diff"
        )


def test_builtin_notions_are_registered():
    from repro.engine import available_notions

    assert set(BUILTIN_NOTIONS) <= set(available_notions())


if __name__ == "__main__":
    import sys

    if "--update" in sys.argv:
        CONTRACT_PATH.write_text(json.dumps(current_snapshot(), indent=2) + "\n", encoding="utf-8")
        print(f"wrote {CONTRACT_PATH}")
    else:
        print(json.dumps(current_snapshot(), indent=2))
