"""ClusterStore tests: artifact keying, atomicity, corruption tolerance."""

import json
import threading

import pytest

from repro.cluster.store import ClusterStore
from repro.generators.random_fsp import random_fsp
from repro.utils.serialization import content_digest


def digest_of(seed: int) -> str:
    return content_digest(random_fsp(6, seed=seed))


def test_artifact_round_trip(tmp_path):
    store = ClusterStore(tmp_path)
    digest = digest_of(1)
    document = {"process": {"states": 3}, "notion": "observational"}
    store.put_artifact(digest, "observational", document)
    assert store.get_artifact(digest, "observational") == document
    assert store.artifact_keys() == [(digest, "observational")]


def test_notions_key_independently(tmp_path):
    store = ClusterStore(tmp_path)
    digest = digest_of(2)
    store.put_artifact(digest, "strong", {"kind": "strong"})
    store.put_artifact(digest, "observational", {"kind": "obs"})
    assert store.get_artifact(digest, "strong") == {"kind": "strong"}
    assert store.get_artifact(digest, "observational") == {"kind": "obs"}
    assert len(store.artifact_keys()) == 2


def test_missing_artifact_is_a_miss_not_an_error(tmp_path):
    store = ClusterStore(tmp_path)
    assert store.get_artifact(digest_of(3), "strong") is None
    info = store.cache_info()
    assert info["artifacts"] == 0


def test_malformed_keys_are_rejected(tmp_path):
    store = ClusterStore(tmp_path)
    with pytest.raises(KeyError):
        store.put_artifact("sha256:nothex", "strong", {})
    with pytest.raises(KeyError):
        store.put_artifact(digest_of(4), "Not A Notion!", {})
    # get_artifact on a malformed digest degrades to a miss.
    assert store.get_artifact("garbage", "strong") is None


def test_index_rebuilds_after_restart(tmp_path):
    writer = ClusterStore(tmp_path)
    keys = []
    for seed in range(5):
        digest = digest_of(10 + seed)
        writer.put_artifact(digest, "strong", {"seed": seed})
        keys.append((digest, "strong"))
    restarted = ClusterStore(tmp_path)
    assert restarted.artifact_keys() == sorted(keys)
    for digest, notion in keys:
        assert restarted.get_artifact(digest, notion) is not None


def test_corrupt_artifact_reads_as_miss_and_leaves_the_rest(tmp_path):
    store = ClusterStore(tmp_path)
    victim, survivor = digest_of(20), digest_of(21)
    store.put_artifact(victim, "strong", {"v": 1})
    store.put_artifact(survivor, "strong", {"v": 2})
    store.artifact_path(victim, "strong").write_text("{not json")

    fresh = ClusterStore(tmp_path)
    assert fresh.get_artifact(victim, "strong") is None  # miss, not an error
    assert fresh.get_artifact(survivor, "strong") == {"v": 2}
    # The damaged key is dropped from the index so repeat lookups stay cheap.
    assert (victim, "strong") not in fresh.artifact_keys()


def test_rewrite_heals_a_corrupt_artifact(tmp_path):
    store = ClusterStore(tmp_path)
    digest = digest_of(22)
    store.put_artifact(digest, "strong", {"v": 1})
    store.artifact_path(digest, "strong").write_text("junk")
    assert store.get_artifact(digest, "strong") is None
    store.artifact_path(digest, "strong").unlink()
    store.put_artifact(digest, "strong", {"v": 2})
    assert store.get_artifact(digest, "strong") == {"v": 2}


def test_scan_skips_foreign_files(tmp_path):
    store = ClusterStore(tmp_path)
    digest = digest_of(23)
    store.put_artifact(digest, "strong", {})
    artifact_dir = store.artifact_path(digest, "strong").parent
    (artifact_dir / "README.json").write_text("{}")
    (artifact_dir / ("f" * 64 + ".json")).write_text("{}")  # digest, no notion
    fresh = ClusterStore(tmp_path)
    assert fresh.artifact_keys() == [(digest, "strong")]


def test_put_is_idempotent_and_leaves_no_temp_files(tmp_path):
    store = ClusterStore(tmp_path)
    digest = digest_of(24)
    store.put_artifact(digest, "strong", {"first": True})
    store.put_artifact(digest, "strong", {"second": True})  # write-once wins
    assert store.get_artifact(digest, "strong") == {"first": True}
    assert not list(tmp_path.rglob("*.tmp"))


def test_concurrent_artifact_writers_same_key(tmp_path):
    digest = digest_of(25)
    barrier = threading.Barrier(6)
    errors: list[Exception] = []

    def writer(value: int) -> None:
        try:
            store = ClusterStore(tmp_path)
            barrier.wait(timeout=30)
            store.put_artifact(digest, "strong", {"writer": value})
        except Exception as error:  # pragma: no cover
            errors.append(error)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors
    reader = ClusterStore(tmp_path)
    document = reader.get_artifact(digest, "strong")
    assert isinstance(document, dict) and "writer" in document  # one intact winner
    raw = json.loads(reader.artifact_path(digest, "strong").read_text())
    assert raw == document


def test_process_layer_is_a_real_process_store(tmp_path):
    store = ClusterStore(tmp_path)
    fsp = random_fsp(6, seed=30)
    digest = store.processes.put(fsp)
    assert store.processes.get(digest) == fsp
    info = store.cache_info()
    assert info["processes"]["on_disk"] == 1
    assert info["artifacts"] == 0
