"""End-to-end cluster tests: real nodes, real gateway, real HTTP.

Module-scoped fixtures boot two full ``EquivalenceServer`` nodes and one
gateway (see ``conftest.py``); the tests drive them exclusively through
:class:`~repro.cluster.client.ClusterClient` and raw HTTP, exactly as an
external caller would.  The failure-injection tests run last in the module
(they kill a node the earlier tests rely on).
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.cluster.client import ClusterClient
from repro.service.protocol import ServiceError
from repro.utils.serialization import content_digest


def client_for(cluster) -> ClusterClient:
    return ClusterClient(port=cluster["gateway"].port)


def raw_request(cluster, method: str, path: str, body: bytes | None = None):
    connection = http.client.HTTPConnection("127.0.0.1", cluster["gateway"].port, timeout=30)
    try:
        connection.request(method, path, body=body, headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
def test_ping_reports_membership(cluster):
    with client_for(cluster) as client:
        info = client.ping()
    assert info["healthy_nodes"] == 2
    assert set(info["nodes"]) == {"alpha", "beta"}
    assert info["replication_factor"] == 2


def test_healthz_is_green_with_live_nodes(cluster):
    with client_for(cluster) as client:
        health = client.healthz()
    assert health["ok"] is True and health["healthy_nodes"] == 2


def test_store_replicates_to_both_nodes(cluster, processes):
    base = processes["bases"][0]
    with client_for(cluster) as client:
        result = client.store(base)
    assert result["digest"] == content_digest(base)
    assert sorted(result["replicas"]) == ["alpha", "beta"]
    assert result["states"] == base.num_states


def test_check_by_digest_and_inline(cluster, processes):
    base, copy, near = (
        processes["bases"][0],
        processes["copies"][0],
        processes["nears"][0],
    )
    with client_for(cluster) as client:
        digest = client.store(base)["digest"]
        equivalent = client.check(digest, copy)
        different = client.check(digest, near)
        inline = client.check(base, copy, "strong")
    assert equivalent["equivalent"] is True
    assert equivalent["node"] in {"alpha", "beta"}
    assert different["equivalent"] is False
    assert inline["notion"] == "strong"


def test_digest_affinity_is_sticky_across_requests(cluster, processes):
    base, copy = processes["bases"][1], processes["copies"][1]
    with client_for(cluster) as client:
        digest = client.store(base)["digest"]
        answered_by = {client.check(digest, copy)["node"] for _ in range(5)}
    assert len(answered_by) == 1  # one home node per digest


def test_check_many_mixed_manifest(cluster, processes):
    base, copy, near = (
        processes["bases"][0],
        processes["copies"][0],
        processes["nears"][0],
    )
    with client_for(cluster) as client:
        result = client.check_many(
            [(base, copy), (base, near), (base, copy, "strong")]
        )
    summary = result["summary"]
    assert summary["checks"] == 3
    assert summary["equivalent"] >= 1
    assert summary["failed"] == 0
    assert all("node" in r for r in result["results"] if "error" not in r)


def test_minimize_round_trip_and_artifact_cache(cluster, processes):
    base = processes["bases"][0]
    with client_for(cluster) as client:
        digest = client.store(base)["digest"]
        first = client.minimize_info(digest)
        again = client.minimize_info(digest)
        quotient = client.minimize(digest)
    assert first.get("from_artifact_cache") is None  # computed on a node
    assert again.get("from_artifact_cache") is True  # served from the store
    assert quotient.num_states <= base.num_states
    assert again["process"] == first["process"]


def test_classify_routes_through_the_cluster(cluster, processes):
    with client_for(cluster) as client:
        classes = client.classify(processes["bases"][0])
    assert isinstance(classes, list) and classes


def test_stats_aggregates_coordinator_and_nodes(cluster):
    with client_for(cluster) as client:
        stats = client.stats()
    coordinator = stats["coordinator"]
    assert coordinator["nodes"] == 2
    assert coordinator["replications"] >= 2  # the earlier stores replicated
    assert coordinator["store"] is not None  # the fixture attached a ClusterStore
    reported = {entry["node"] for entry in stats["nodes"]}
    assert reported == {"alpha", "beta"}
    for entry in stats["nodes"]:
        assert entry["server"]["node"] == entry["node"]  # nodes self-identify


def test_metrics_namespaces_engine_counters_per_node(cluster, processes):
    # Satellite: Engine.export_stats counters must carry a node label all
    # the way into the gateway's Prometheus output.
    with client_for(cluster) as client:
        client.check(processes["bases"][0], processes["copies"][0])
        text = client.metrics_text()
    engine_lines = [
        line for line in text.splitlines() if line.startswith("repro_cluster_engine_stat{")
    ]
    labelled = {line.split("node=")[1].split('"')[1] for line in engine_lines if "node=" in line}
    assert {"alpha", "beta"} <= labelled
    assert "repro_gateway_requests_total" in text
    assert 'repro_cluster_node_healthy{node="alpha"} 1' in text


def test_client_context_manager_reconnects_after_close(cluster):
    client = ClusterClient(port=cluster["gateway"].port)
    assert client.ping()["pong"] is True
    client.close()
    assert client.ping()["pong"] is True  # transparent reopen
    client.close()


# ----------------------------------------------------------------------
# HTTP semantics (raw, no client)
# ----------------------------------------------------------------------
def test_unknown_route_is_404(cluster):
    status, _, body = raw_request(cluster, "GET", "/nope")
    assert status == 404
    assert json.loads(body)["ok"] is False


def test_wrong_method_is_405(cluster):
    status, _, _ = raw_request(cluster, "GET", "/v1/check")
    assert status == 405
    status, _, _ = raw_request(cluster, "POST", "/healthz")
    assert status == 405


def test_malformed_json_body_is_400(cluster):
    status, _, body = raw_request(cluster, "POST", "/v1/check", b"{not json")
    assert status == 400
    assert json.loads(body)["error"]["code"] == "bad_request"


def test_unknown_digest_is_404(cluster):
    with client_for(cluster) as client:
        with pytest.raises(ServiceError) as excinfo:
            client.minimize_info("sha256:" + "0" * 64)
    assert excinfo.value.code == "unknown_digest"
    payload = json.dumps({"process": {"digest": "sha256:" + "0" * 64}}).encode()
    status, _, _ = raw_request(cluster, "POST", "/v1/minimize", payload)
    assert status == 404


def test_invalid_check_body_maps_to_400(cluster):
    status, _, body = raw_request(cluster, "POST", "/v1/check", json.dumps({}).encode())
    assert status == 400
    assert json.loads(body)["error"]["code"] == "bad_request"


# ----------------------------------------------------------------------
# failure injection -- keep these LAST in the module (they kill alpha/beta)
# ----------------------------------------------------------------------
def test_failover_and_artifacts_survive_node_loss(cluster, processes):
    base, copy = processes["bases"][0], processes["copies"][0]
    with client_for(cluster) as client:
        digest = client.store(base)["digest"]
        client.minimize_info(digest)  # ensure the artifact exists
        victim = client.check(digest, copy)["node"]
        cluster["nodes"][victim].kill()

        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            verdict = client.check(digest, copy)
            if verdict["node"] != victim:
                break
            time.sleep(0.2)  # pragma: no cover - probe not yet fired
        assert verdict["equivalent"] is True
        assert verdict["node"] != victim  # the replica took over

        # Minimisation survives the node's death via the artifact store.
        assert client.minimize_info(digest).get("from_artifact_cache") is True

        health = client.healthz()
        assert health["ok"] is True and health["healthy_nodes"] == 1
        assert health["nodes"][victim] is False


def test_all_nodes_down_answers_503_and_overloaded(cluster, processes):
    for handle in cluster["nodes"].values():
        handle.kill()
    deadline = time.monotonic() + 15
    with client_for(cluster) as client:
        while time.monotonic() < deadline:
            if client.healthz()["healthy_nodes"] == 0:
                break
            time.sleep(0.2)
        status, headers, body = raw_request(cluster, "GET", "/healthz")
        assert status == 503
        # Work requests answer a structured, retryable overload...
        payload = json.dumps({"process": {"digest": "sha256:" + "1" * 64}}).encode()
        status, headers, body = raw_request(cluster, "POST", "/v1/classify", payload)
        assert status == 429
        error = json.loads(body)["error"]
        assert error["code"] == "overloaded"
        assert error["data"]["retry_after_ms"] > 0
        assert "Retry-After" in headers
        # ...which the client retries and then surfaces unchanged.
        fast = ClusterClient(port=cluster["gateway"].port, overload_retries=0)
        with pytest.raises(ServiceError) as excinfo:
            fast.classify("sha256:" + "1" * 64)
        assert excinfo.value.code == "overloaded"
