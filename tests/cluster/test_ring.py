"""HashRing tests: placement, stability under churn, replica selection."""

import hashlib
from collections import Counter

import pytest

from repro.cluster.ring import DEFAULT_POINTS_PER_NODE, HashRing, _key_point


def digest_keys(count: int) -> list[str]:
    return ["sha256:" + hashlib.sha256(str(i).encode()).hexdigest() for i in range(count)]


def test_empty_ring_routes_nothing():
    ring = HashRing()
    assert ring.replicas_for("sha256:" + "a" * 64, 2) == []
    assert ring.primary_for("anything") is None
    assert len(ring) == 0


def test_add_and_remove_are_idempotent():
    ring = HashRing(["a"])
    ring.add("a")
    assert len(ring) == 1
    ring.remove("a")
    ring.remove("a")
    assert len(ring) == 0 and "a" not in ring


def test_every_key_routes_to_a_live_node():
    ring = HashRing(["a", "b", "c"])
    for key in digest_keys(100):
        assert ring.primary_for(key) in {"a", "b", "c"}


def test_placement_is_deterministic_across_instances():
    keys = digest_keys(50)
    one = HashRing(["n1", "n2", "n3"])
    two = HashRing(["n3", "n1", "n2"])  # insertion order must not matter
    assert [one.primary_for(k) for k in keys] == [two.primary_for(k) for k in keys]


def test_load_spreads_across_nodes():
    ring = HashRing(["a", "b", "c", "d"])
    spread = Counter(ring.primary_for(k) for k in digest_keys(2000))
    assert set(spread) == {"a", "b", "c", "d"}
    # With 64 points per node the arcs are uneven but no node may be
    # starved or dominant.
    assert min(spread.values()) > 2000 * 0.05
    assert max(spread.values()) < 2000 * 0.60


def test_removing_a_node_only_moves_its_own_keys():
    keys = digest_keys(500)
    ring = HashRing(["a", "b", "c"])
    before = {k: ring.primary_for(k) for k in keys}
    ring.remove("b")
    after = {k: ring.primary_for(k) for k in keys}
    for key in keys:
        if before[key] != "b":
            assert after[key] == before[key]  # unaffected arcs stay put
        else:
            assert after[key] in {"a", "c"}


def test_replicas_are_distinct_and_primary_first():
    ring = HashRing(["a", "b", "c"])
    for key in digest_keys(50):
        replicas = ring.replicas_for(key, 2)
        assert len(replicas) == 2 and len(set(replicas)) == 2
        assert replicas[0] == ring.primary_for(key)


def test_exclude_promotes_the_next_replica():
    ring = HashRing(["a", "b", "c"])
    for key in digest_keys(50):
        primary, backup = ring.replicas_for(key, 2)
        assert ring.replicas_for(key, 1, exclude={primary}) == [backup]


def test_replica_count_is_bounded_by_live_nodes():
    ring = HashRing(["a", "b"])
    key = digest_keys(1)[0]
    assert len(ring.replicas_for(key, 5)) == 2
    assert ring.replicas_for(key, 2, exclude={"a", "b"}) == []


def test_count_must_be_positive():
    with pytest.raises(ValueError):
        HashRing(["a"]).replicas_for("x", 0)
    with pytest.raises(ValueError):
        HashRing(points_per_node=0)


def test_key_point_mirrors_shard_of():
    """Digest keys take the same hex-prefix path as ``ShardPool.shard_of``:
    the first 16 hex characters *are* the hash, with no double hashing."""
    for key in digest_keys(20):
        assert _key_point(key) == int(key[len("sha256:") :][:16], 16)


def test_non_digest_keys_hash_rather_than_crash():
    ring = HashRing(["a", "b"])
    assert ring.primary_for("scenario:leader-election") in {"a", "b"}
    assert _key_point("plain") == _key_point("plain")


def test_default_points_per_node_is_applied():
    ring = HashRing(["solo"])
    assert len(ring._points) == DEFAULT_POINTS_PER_NODE
