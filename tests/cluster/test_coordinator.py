"""Coordinator unit tests: routing, stealing, failover -- with scripted nodes.

These tests run against *fake* nodes (tiny asyncio NDJSON servers whose
answers the test scripts), so every distributed failure mode -- a dead
primary, a replica missing an upload, a saturated node -- can be staged
deterministically without booting real shard pools.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster.coordinator import (
    ClusterCoordinator,
    NodeState,
    RECENT_KEYS_PER_NODE,
)
from repro.cluster.store import ClusterStore
from repro.generators.random_fsp import random_fsp
from repro.service import protocol
from repro.service.shards import routing_key_of
from repro.utils.serialization import content_digest, from_dict

DIGEST_A = "sha256:" + "a" * 64
DIGEST_B = "sha256:" + "b" * 64


class FakeNode:
    """A scripted NDJSON node: answers every op via the provided handler."""

    def __init__(self, handler=None):
        self.handler = handler or (lambda op, params: {"pong": True})
        self.server: asyncio.AbstractServer | None = None
        self.port = 0
        self.requests: list[tuple[str, dict]] = []

    async def start(self) -> None:
        async def handle(reader, writer):
            try:
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    request_id, op, params = protocol.parse_request(line)
                    self.requests.append((op, params))
                    try:
                        result = self.handler(op, params)
                    except protocol.ServiceError as error:
                        writer.write(
                            protocol.error_response(
                                request_id, error.code, error.message, error.data
                            )
                        )
                    else:
                        writer.write(protocol.ok_response(request_id, result))
                    await writer.drain()
            except (ConnectionError, asyncio.IncompleteReadError):
                pass
            finally:
                writer.close()

        self.server = await asyncio.start_server(handle, "127.0.0.1", 0)
        self.port = self.server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
            self.server = None


async def dead_port() -> int:
    """A port with nothing listening (connections are refused)."""
    probe = await asyncio.start_server(lambda r, w: None, "127.0.0.1", 0)
    port = probe.sockets[0].getsockname()[1]
    probe.close()
    await probe.wait_closed()
    return port


# ----------------------------------------------------------------------
# construction and routing (no I/O)
# ----------------------------------------------------------------------
def make_coordinator(node_ids, **kwargs) -> ClusterCoordinator:
    return ClusterCoordinator(
        {node_id: ("127.0.0.1", 1) for node_id in node_ids}, **kwargs
    )


def test_constructor_validation():
    with pytest.raises(ValueError):
        ClusterCoordinator({})
    with pytest.raises(ValueError):
        make_coordinator(["a"], replication_factor=0)
    with pytest.raises(ValueError):
        make_coordinator(["a"], steal_threshold=0)


def test_replication_factor_is_clamped_to_the_node_count():
    coordinator = make_coordinator(["a", "b"], replication_factor=5)
    assert coordinator.replication_factor == 2


def test_replicas_skip_unhealthy_nodes():
    coordinator = make_coordinator(["a", "b", "c"], replication_factor=2)
    full = coordinator.replicas_for(DIGEST_A)
    assert len(full) == 2
    coordinator.nodes[full[0].node_id].healthy = False
    reduced = coordinator.replicas_for(DIGEST_A)
    assert full[0].node_id not in {node.node_id for node in reduced}
    assert reduced[0].node_id == full[1].node_id  # the backup is promoted


def test_plan_check_routes_by_digest_affinity():
    coordinator = make_coordinator(["a", "b", "c"])
    spec = {"left": {"digest": DIGEST_A}, "right": {"digest": DIGEST_B}}
    first = coordinator.plan_check(spec)[0]
    for _ in range(5):
        assert coordinator.plan_check(spec)[0] is first  # sticky


def test_plan_check_raises_overloaded_when_no_node_is_healthy():
    coordinator = make_coordinator(["a", "b"])
    for node in coordinator.nodes.values():
        node.healthy = False
    with pytest.raises(protocol.ServiceError) as excinfo:
        coordinator.plan_check({"left": {"digest": DIGEST_A}})
    assert excinfo.value.code == protocol.OVERLOADED
    assert excinfo.value.data["retry_after_ms"] > 0


# ----------------------------------------------------------------------
# work-stealing (plan_check is pure given node state)
# ----------------------------------------------------------------------
def busy_primary_setup(**kwargs):
    coordinator = make_coordinator(["a", "b", "c"], steal_threshold=2, **kwargs)
    spec = {"left": {"digest": DIGEST_A}, "right": {"digest": DIGEST_B}}
    primary = coordinator.replicas_for(routing_key_of(spec))[0]
    return coordinator, spec, primary


def test_cold_check_steals_from_a_busy_primary():
    coordinator, spec, primary = busy_primary_setup()
    primary.inflight = 5
    plan = coordinator.plan_check(spec)
    assert plan[0] is not primary
    assert primary in plan  # the primary stays in the failover list
    assert coordinator.steals == 1


def test_hot_keys_stay_home_despite_load():
    coordinator, spec, primary = busy_primary_setup()
    coordinator.plan_check(spec)  # warms the primary's recent-key LRU
    primary.inflight = 5
    assert coordinator.plan_check(spec)[0] is primary
    assert coordinator.steals == 0


def test_idle_primary_is_never_stolen_from():
    coordinator, spec, primary = busy_primary_setup()
    assert coordinator.plan_check(spec)[0] is primary
    assert coordinator.steals == 0


def test_inline_checks_are_never_stolen():
    coordinator = make_coordinator(["a", "b", "c"], steal_threshold=1)
    spec = {"left": {"process": {"start": "P"}}}
    primary = coordinator.replicas_for(routing_key_of(spec))[0]
    primary.inflight = 50
    assert coordinator.plan_check(spec)[0] is primary
    assert coordinator.steals == 0


def test_stealing_disabled_without_a_threshold():
    coordinator = make_coordinator(["a", "b", "c"])
    spec = {"left": {"digest": DIGEST_A}}
    primary = coordinator.replicas_for(routing_key_of(spec))[0]
    primary.inflight = 100
    assert coordinator.plan_check(spec)[0] is primary


def test_steal_picks_the_least_loaded_replica():
    coordinator = make_coordinator(["a", "b", "c"], replication_factor=3, steal_threshold=2)
    spec = {"left": {"digest": DIGEST_A}}
    replicas = coordinator.replicas_for(routing_key_of(spec))
    replicas[0].inflight = 9
    replicas[1].inflight = 4
    replicas[2].inflight = 1
    assert coordinator.plan_check(spec)[0] is replicas[2]


def test_recent_key_lru_is_bounded():
    state = NodeState("n", "127.0.0.1", 1)
    for i in range(RECENT_KEYS_PER_NODE + 50):
        state.remember(f"key-{i}")
    assert len(state.recent) == RECENT_KEYS_PER_NODE
    assert "key-0" not in state.recent  # oldest evicted
    state.remember(None)  # unroutable specs are not remembered
    assert len(state.recent) == RECENT_KEYS_PER_NODE


# ----------------------------------------------------------------------
# dispatch: failover and error propagation (scripted I/O)
# ----------------------------------------------------------------------
def test_dispatch_fails_over_to_the_next_replica():
    async def scenario():
        live = FakeNode(lambda op, params: {"answered_by": "live"})
        await live.start()
        refused = await dead_port()
        coordinator = ClusterCoordinator(
            {"dead": ("127.0.0.1", refused), "live": ("127.0.0.1", live.port)},
            request_timeout=10.0,
        )
        candidates = [coordinator.nodes["dead"], coordinator.nodes["live"]]
        try:
            result = await coordinator._dispatch(candidates, "ping", {})
        finally:
            await coordinator.stop()
            await live.stop()
        return coordinator, result

    coordinator, result = asyncio.run(scenario())
    assert result["answered_by"] == "live"
    assert result["node"] == "live"
    assert coordinator.failovers == 1
    assert coordinator.nodes["dead"].healthy is False
    assert coordinator.nodes["live"].healthy is True


def test_dispatch_raises_when_every_candidate_is_dead():
    async def scenario():
        ports = [await dead_port(), await dead_port()]
        coordinator = ClusterCoordinator(
            {"d1": ("127.0.0.1", ports[0]), "d2": ("127.0.0.1", ports[1])},
            request_timeout=10.0,
        )
        try:
            with pytest.raises(protocol.ServiceError) as excinfo:
                await coordinator._dispatch(list(coordinator.nodes.values()), "ping", {})
        finally:
            await coordinator.stop()
        return excinfo.value

    error = asyncio.run(scenario())
    assert error.code == protocol.INTERNAL
    assert "candidate" in error.message


def test_app_level_errors_do_not_fail_over():
    async def scenario():
        def reject(op, params):
            raise protocol.ServiceError(protocol.CHECK_FAILED, "left start state missing")

        first, second = FakeNode(reject), FakeNode(lambda op, params: {"ok": True})
        await first.start()
        await second.start()
        coordinator = ClusterCoordinator(
            {"first": ("127.0.0.1", first.port), "second": ("127.0.0.1", second.port)}
        )
        try:
            with pytest.raises(protocol.ServiceError) as excinfo:
                await coordinator._dispatch(
                    [coordinator.nodes["first"], coordinator.nodes["second"]], "check", {}
                )
        finally:
            await coordinator.stop()
            await first.stop()
            await second.stop()
        return excinfo.value, second.requests

    error, second_requests = asyncio.run(scenario())
    assert error.code == protocol.CHECK_FAILED
    assert second_requests == []  # the error propagated, no retry elsewhere


def test_unknown_digest_on_a_stolen_node_falls_back():
    # A replica that missed the upload answers unknown_digest; the dispatch
    # walks on to the next candidate instead of surfacing the miss.
    async def scenario():
        def missing(op, params):
            raise protocol.ServiceError(protocol.UNKNOWN_DIGEST, "no such digest")

        thief, primary = FakeNode(missing), FakeNode(lambda op, params: {"equivalent": True})
        await thief.start()
        await primary.start()
        coordinator = ClusterCoordinator(
            {"thief": ("127.0.0.1", thief.port), "primary": ("127.0.0.1", primary.port)}
        )
        try:
            result = await coordinator._dispatch(
                [coordinator.nodes["thief"], coordinator.nodes["primary"]], "check", {}
            )
        finally:
            await coordinator.stop()
            await thief.stop()
            await primary.stop()
        return result

    result = asyncio.run(scenario())
    assert result["equivalent"] is True
    assert result["node"] == "primary"


def test_unknown_digest_triggers_read_repair_from_the_store(tmp_path):
    # The routed node never saw the right operand's upload (it replicates
    # under its own digest, possibly elsewhere); the coordinator pushes the
    # process from its durable store and retries the *same* node.
    async def scenario():
        store = ClusterStore(tmp_path)
        right_digest = store.processes.put(random_fsp(6, seed=77))
        seen: set[str] = set()

        def handler(op, params):
            if op == "store":
                digest = content_digest(from_dict(params["process"]))
                seen.add(digest)
                return {"digest": digest}
            if params["right"]["digest"] not in seen:
                raise protocol.ServiceError(protocol.UNKNOWN_DIGEST, "right operand missing")
            return {"equivalent": True}

        node = FakeNode(handler)
        await node.start()
        coordinator = ClusterCoordinator({"solo": ("127.0.0.1", node.port)}, store=store)
        try:
            result = await coordinator._dispatch(
                [coordinator.nodes["solo"]],
                "check",
                {"left": {"digest": DIGEST_A}, "right": {"digest": right_digest}},
            )
        finally:
            await coordinator.stop()
            await node.stop()
        return result, coordinator.repairs, [op for op, _ in node.requests]

    result, repairs, ops = asyncio.run(scenario())
    assert result["equivalent"] is True
    assert repairs == 1  # DIGEST_A is not in the store, so only right repaired
    assert ops == ["check", "store", "check"]


def test_unrepairable_unknown_digest_propagates(tmp_path):
    # Nothing in the coordinator store and no other replica: the miss is real.
    async def scenario():
        def missing(op, params):
            raise protocol.ServiceError(protocol.UNKNOWN_DIGEST, "no such digest")

        node = FakeNode(missing)
        await node.start()
        coordinator = ClusterCoordinator(
            {"solo": ("127.0.0.1", node.port)}, store=ClusterStore(tmp_path)
        )
        try:
            with pytest.raises(protocol.ServiceError) as excinfo:
                await coordinator._dispatch(
                    [coordinator.nodes["solo"]], "check", {"left": {"digest": DIGEST_A}}
                )
        finally:
            await coordinator.stop()
            await node.stop()
        return excinfo.value, len(node.requests)

    error, request_count = asyncio.run(scenario())
    assert error.code == protocol.UNKNOWN_DIGEST
    assert request_count == 1  # no store entry, so no repair round trip


def test_probe_once_flips_health_both_ways():
    async def scenario():
        live = FakeNode()
        await live.start()
        refused = await dead_port()
        coordinator = ClusterCoordinator(
            {"live": ("127.0.0.1", live.port), "dead": ("127.0.0.1", refused)}
        )
        try:
            health = await coordinator.probe_once()
            assert health == {"live": True, "dead": False}
            # A node coming back is noticed by the next probe.
            revived = FakeNode()
            await revived.start()
            coordinator.nodes["dead"].link.port = revived.port
            health = await coordinator.probe_once()
            await revived.stop()
            return health
        finally:
            await coordinator.stop()
            await live.stop()

    assert asyncio.run(scenario()) == {"live": True, "dead": True}


def test_store_replicates_and_tolerates_one_replica_loss():
    from repro.generators.random_fsp import random_fsp
    from repro.utils.serialization import to_dict

    fsp = random_fsp(6, seed=5)
    serialised = to_dict(fsp)

    async def scenario():
        def accept(op, params):
            return {"digest": "ignored", "states": 6}

        def explode(op, params):
            raise protocol.ServiceError(protocol.INTERNAL, "disk full")

        good, bad = FakeNode(accept), FakeNode(explode)
        await good.start()
        await bad.start()
        coordinator = ClusterCoordinator(
            {"good": ("127.0.0.1", good.port), "bad": ("127.0.0.1", bad.port)},
            replication_factor=2,
        )
        try:
            result = await coordinator.store_process({"process": serialised})
        finally:
            await coordinator.stop()
            await good.stop()
            await bad.stop()
        return coordinator, result

    coordinator, result = asyncio.run(scenario())
    assert result["replicas"] == ["good"]
    assert result["states"] == fsp.num_states
    assert coordinator.replications == 1
    assert coordinator.replication_failures == 1


def test_check_many_requires_a_checks_list():
    async def scenario():
        node = FakeNode()
        await node.start()
        coordinator = ClusterCoordinator({"n": ("127.0.0.1", node.port)})
        try:
            with pytest.raises(protocol.ServiceError) as excinfo:
                await coordinator.check_many({"checks": "not-a-list"})
        finally:
            await coordinator.stop()
            await node.stop()
        return excinfo.value

    assert asyncio.run(scenario()).code == protocol.BAD_REQUEST
