"""Shared fixtures: real nodes in threads, a gateway, and kill switches."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.gateway import ClusterGateway
from repro.cluster.store import ClusterStore
from repro.generators.random_fsp import perturb, random_equivalent_copy, random_fsp
from repro.service.server import EquivalenceServer


class NodeHandle:
    """One EquivalenceServer running in its own thread + event loop."""

    def __init__(self, name: str, store_root: str) -> None:
        self.name = name
        self.port: int = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        started = threading.Event()

        def run() -> None:
            async def main() -> None:
                server = EquivalenceServer(
                    port=0,
                    store_root=store_root,
                    num_shards=1,
                    max_processes=16,
                    max_verdicts=64,
                    node_name=name,
                )
                await server.start()
                self.port = server.port
                self._loop = asyncio.get_running_loop()
                started.set()
                try:
                    await server.serve_forever()
                except asyncio.CancelledError:
                    pass
                finally:
                    await server.stop()

            asyncio.run(main())

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        assert started.wait(timeout=30), f"node {name} failed to start"
        self.alive = True

    def kill(self) -> None:
        """Hard-stop the node (the cluster sees a connection loss)."""
        if not self.alive:
            return
        self.alive = False
        loop = self._loop
        assert loop is not None
        loop.call_soon_threadsafe(lambda: [t.cancel() for t in asyncio.all_tasks(loop)])
        assert self._thread is not None
        self._thread.join(timeout=30)


class GatewayHandle:
    """A coordinator + gateway pair running in its own thread + event loop."""

    def __init__(
        self,
        nodes: dict[str, NodeHandle],
        *,
        store_root: str | None = None,
        replication_factor: int = 2,
        steal_threshold: int | None = None,
        probe_interval: float = 0.2,
    ) -> None:
        self.port: int = 0
        self.coordinator: ClusterCoordinator | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        started = threading.Event()

        def run() -> None:
            async def main() -> None:
                coordinator = ClusterCoordinator(
                    {name: ("127.0.0.1", handle.port) for name, handle in nodes.items()},
                    replication_factor=replication_factor,
                    steal_threshold=steal_threshold,
                    store=ClusterStore(store_root) if store_root else None,
                    probe_interval=probe_interval,
                )
                gateway = ClusterGateway(coordinator, port=0)
                await gateway.start()
                self.port = gateway.port
                self.coordinator = coordinator
                self._loop = asyncio.get_running_loop()
                started.set()
                try:
                    await gateway.serve_forever()
                except asyncio.CancelledError:
                    pass
                finally:
                    await gateway.stop()

            asyncio.run(main())

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        assert started.wait(timeout=30), "gateway failed to start"

    def stop(self) -> None:
        loop = self._loop
        assert loop is not None
        loop.call_soon_threadsafe(lambda: [t.cancel() for t in asyncio.all_tasks(loop)])
        self._thread.join(timeout=30)


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    """Two live nodes behind a gateway with a persistent coordinator store."""
    root = tmp_path_factory.mktemp("cluster")
    nodes = {
        name: NodeHandle(name, str(root / name)) for name in ("alpha", "beta")
    }
    gateway = GatewayHandle(nodes, store_root=str(root / "coordinator"))
    yield {"nodes": nodes, "gateway": gateway, "root": root}
    gateway.stop()
    for handle in nodes.values():
        handle.kill()


@pytest.fixture(scope="module")
def processes():
    bases = [random_fsp(8, tau_probability=0.2, all_accepting=True, seed=s) for s in (31, 32)]
    return {
        "bases": bases,
        "copies": [
            random_equivalent_copy(b, duplicates=2, seed=s + 40)
            for s, b in zip((31, 32), bases)
        ],
        "nears": [perturb(b, seed=s + 70) for s, b in zip((31, 32), bases)],
    }
