"""Tests for weak derivatives, tau-closure and the Theorem 4.1(a) saturation."""

from __future__ import annotations

import pytest

from repro.core.derivatives import (
    WeakTransitionView,
    closure_of_set,
    saturate,
    string_derivatives,
    tau_closure,
    weak_initials,
    weak_successors,
    weak_successors_of_set,
)
from repro.core.errors import InvalidProcessError
from repro.core.fsp import EPSILON, TAU, from_transitions


@pytest.fixture
def tau_chain():
    """p0 =tau=> p1 =tau=> p2 --a--> p3, p3 --b--> p0."""
    return from_transitions(
        [
            ("p0", TAU, "p1"),
            ("p1", TAU, "p2"),
            ("p2", "a", "p3"),
            ("p3", "b", "p0"),
        ],
        start="p0",
        all_accepting=True,
    )


class TestTauClosure:
    def test_closure_is_reflexive(self, tau_chain):
        closure = tau_closure(tau_chain)
        for state in tau_chain.states:
            assert state in closure[state]

    def test_closure_follows_chains(self, tau_chain):
        closure = tau_closure(tau_chain)
        assert closure["p0"] == frozenset({"p0", "p1", "p2"})
        assert closure["p3"] == frozenset({"p3"})

    def test_closure_handles_cycles(self):
        cyclic = from_transitions([("a", TAU, "b"), ("b", TAU, "a")], start="a", all_accepting=True)
        closure = tau_closure(cyclic)
        assert closure["a"] == frozenset({"a", "b"})
        assert closure["b"] == frozenset({"a", "b"})

    def test_closure_of_set(self, tau_chain):
        assert closure_of_set(tau_chain, {"p0", "p3"}) == frozenset({"p0", "p1", "p2", "p3"})


class TestWeakSuccessors:
    def test_weak_successor_through_tau(self, tau_chain):
        assert weak_successors(tau_chain, "p0", "a") == frozenset({"p3"})

    def test_weak_successor_direct(self, tau_chain):
        assert weak_successors(tau_chain, "p3", "b") == frozenset({"p0", "p1", "p2"})

    def test_weak_successor_missing_action(self, tau_chain):
        assert weak_successors(tau_chain, "p3", "a") == frozenset()

    def test_epsilon_returns_closure(self, tau_chain):
        assert weak_successors(tau_chain, "p0", EPSILON) == frozenset({"p0", "p1", "p2"})

    def test_tau_is_rejected_as_query_action(self, tau_chain):
        with pytest.raises(InvalidProcessError):
            weak_successors(tau_chain, "p0", TAU)

    def test_successors_of_set(self, tau_chain):
        result = weak_successors_of_set(tau_chain, {"p0", "p3"}, "a")
        assert result == frozenset({"p3"})

    def test_string_derivatives(self, tau_chain):
        assert string_derivatives(tau_chain, "p0", ["a", "b"]) == frozenset({"p0", "p1", "p2"})
        assert string_derivatives(tau_chain, "p0", []) == frozenset({"p0", "p1", "p2"})
        assert string_derivatives(tau_chain, "p0", ["b"]) == frozenset()

    def test_weak_initials(self, tau_chain):
        assert weak_initials(tau_chain, "p0") == frozenset({"a"})
        assert weak_initials(tau_chain, "p3") == frozenset({"b"})


class TestSaturate:
    def test_saturated_has_epsilon_self_loops(self, tau_chain):
        saturated = saturate(tau_chain)
        for state in tau_chain.states:
            assert (state, EPSILON, state) in saturated.transitions

    def test_saturated_has_no_tau(self, tau_chain):
        saturated = saturate(tau_chain)
        assert not saturated.has_tau()

    def test_saturated_alphabet_includes_marker(self, tau_chain):
        saturated = saturate(tau_chain)
        assert EPSILON in saturated.alphabet
        assert saturated.alphabet - {EPSILON} == tau_chain.alphabet

    def test_saturated_weak_moves_become_strong(self, tau_chain):
        saturated = saturate(tau_chain)
        assert "p3" in saturated.successors("p0", "a")

    def test_marker_collision_rejected(self):
        process = from_transitions([("p", "ε", "q")], start="p", all_accepting=True)
        with pytest.raises(InvalidProcessError):
            saturate(process)

    def test_custom_marker(self, tau_chain):
        saturated = saturate(tau_chain, epsilon_action="eps")
        assert "eps" in saturated.alphabet

    def test_saturation_preserves_extensions(self, tau_chain):
        saturated = saturate(tau_chain)
        for state in tau_chain.states:
            assert saturated.extension(state) == tau_chain.extension(state)


class TestWeakTransitionView:
    def test_view_matches_free_functions(self, tau_chain):
        view = WeakTransitionView(tau_chain)
        for state in tau_chain.states:
            assert view.epsilon_closure(state) == tau_closure(tau_chain)[state]
            for action in tau_chain.alphabet:
                assert view.weak_successors(state, action) == weak_successors(
                    tau_chain, state, action
                )
            assert view.weak_initials(state) == weak_initials(tau_chain, state)

    def test_view_string_derivatives(self, tau_chain):
        view = WeakTransitionView(tau_chain)
        assert view.string_derivatives("p0", ["a"]) == frozenset({"p3"})
        assert view.string_derivatives("p0", ["a", "a"]) == frozenset()

    def test_view_caches_are_transparent(self, tau_chain):
        view = WeakTransitionView(tau_chain)
        first = view.weak_successors("p0", "a")
        second = view.weak_successors("p0", "a")
        assert first == second
