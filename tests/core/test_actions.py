"""The shared co-action convention (repro.core.actions)."""

from __future__ import annotations

import pytest

from repro.core.actions import CO_SUFFIX, channel_closure, channel_of, co_action, is_co_action
from repro.core.errors import ExpressionError


def test_co_action_toggles_the_suffix():
    assert co_action("a") == "a!"
    assert co_action("a!") == "a"
    assert co_action(co_action("chan")) == "chan"


def test_channel_and_co_action_predicates():
    assert channel_of("a!") == "a" and channel_of("a") == "a"
    assert is_co_action("a!") and not is_co_action("a")
    assert CO_SUFFIX == "!"


def test_channel_closure_includes_both_polarities():
    assert channel_closure(["a", "b!"]) == frozenset({"a", "a!", "b", "b!"})
    assert channel_closure([]) == frozenset()


def test_term_layer_delegates_but_keeps_its_tau_check():
    from repro.ccs import syntax

    assert syntax.co("a") == "a!"
    assert syntax.CO_SUFFIX is CO_SUFFIX
    with pytest.raises(ExpressionError, match="complement"):
        syntax.co("tau")


def test_state_machine_layer_shares_the_convention():
    from repro.core import composition

    assert composition.CO_SUFFIX is CO_SUFFIX
