"""Unit tests for the FSP value object and builder (Definition 2.1.1)."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidProcessError
from repro.core.fsp import (
    ACCEPT,
    FSP,
    TAU,
    FSPBuilder,
    from_transitions,
    single_state_process,
)


class TestConstruction:
    def test_minimal_process(self):
        process = single_state_process()
        assert process.num_states == 1
        assert process.num_transitions == 0
        assert process.is_accepting(process.start)

    def test_non_accepting_single_state(self):
        process = single_state_process(accepting=False)
        assert not process.is_accepting(process.start)
        assert process.accepting_states() == frozenset()

    def test_builder_adds_states_from_transitions(self):
        builder = FSPBuilder()
        builder.add_transition("p", "a", "q")
        process = builder.build(start="p")
        assert process.states == frozenset({"p", "q"})
        assert process.alphabet == frozenset({"a"})

    def test_builder_tau_not_in_alphabet(self):
        builder = FSPBuilder()
        builder.add_transition("p", TAU, "q")
        process = builder.build(start="p")
        assert TAU not in process.alphabet
        assert process.has_tau()

    def test_builder_mark_all_accepting(self):
        builder = FSPBuilder()
        builder.add_transition("p", "a", "q")
        builder.mark_all_accepting()
        process = builder.build(start="p")
        assert process.accepting_states() == frozenset({"p", "q"})

    def test_start_must_be_state(self):
        with pytest.raises(InvalidProcessError):
            FSP(states=["p"], start="q", alphabet=["a"], transitions=[])

    def test_transition_action_must_be_known(self):
        with pytest.raises(InvalidProcessError):
            FSP(states=["p", "q"], start="p", alphabet=["a"], transitions=[("p", "b", "q")])

    def test_transition_states_must_exist(self):
        with pytest.raises(InvalidProcessError):
            FSP(states=["p"], start="p", alphabet=["a"], transitions=[("p", "a", "missing")])

    def test_alphabet_cannot_contain_tau(self):
        with pytest.raises(InvalidProcessError):
            FSP(states=["p"], start="p", alphabet=[TAU], transitions=[])

    def test_variables_disjoint_from_actions(self):
        with pytest.raises(InvalidProcessError):
            FSP(states=["p"], start="p", alphabet=["a"], transitions=[], variables=["a"])

    def test_extension_variable_must_be_declared(self):
        with pytest.raises(InvalidProcessError):
            FSP(
                states=["p"],
                start="p",
                alphabet=[],
                transitions=[],
                variables=["x"],
                extensions=[("p", "y")],
            )

    def test_empty_state_set_rejected(self):
        with pytest.raises(InvalidProcessError):
            FSP(states=[], start="p", alphabet=[], transitions=[])


class TestAccessors:
    def test_successors_and_predecessors(self, branching_process):
        assert branching_process.successors("s", "a") == frozenset({"l", "r"})
        assert branching_process.predecessors("t", "b") == frozenset({"l"})
        assert branching_process.successors("s", "b") == frozenset()

    def test_transitions_from(self, branching_process):
        assert branching_process.transitions_from("s") == frozenset({("a", "l"), ("a", "r")})

    def test_enabled_actions(self, branching_process):
        assert branching_process.enabled_actions("s") == frozenset({"a"})
        assert branching_process.enabled_actions("t") == frozenset()

    def test_extension_unknown_state(self, branching_process):
        with pytest.raises(InvalidProcessError):
            branching_process.extension("nope")

    def test_accepting_states(self, branching_process):
        assert branching_process.accepting_states() == frozenset({"t"})

    def test_counts(self, branching_process):
        assert branching_process.num_states == 4
        assert branching_process.num_transitions == 4

    def test_has_tau(self, tau_process, branching_process):
        assert tau_process.has_tau()
        assert not branching_process.has_tau()


class TestGraphOperations:
    def test_reachable_states(self):
        process = from_transitions(
            [("a", "go", "b"), ("c", "go", "d")], start="a", all_accepting=True
        )
        assert process.reachable_states() == frozenset({"a", "b"})
        assert process.reachable_states("c") == frozenset({"c", "d"})

    def test_restrict_to_reachable(self):
        process = from_transitions(
            [("a", "go", "b"), ("c", "go", "d")], start="a", all_accepting=True
        )
        reachable = process.restrict_to_reachable()
        assert reachable.states == frozenset({"a", "b"})
        assert reachable.num_transitions == 1

    def test_rename_states_prefix(self, simple_chain):
        renamed = simple_chain.rename_states(prefix="X")
        assert renamed.states == frozenset({"Xc0", "Xc1", "Xc2"})
        assert renamed.start == "Xc0"
        assert renamed.num_transitions == simple_chain.num_transitions

    def test_rename_states_mapping_must_be_bijection(self, simple_chain):
        with pytest.raises(InvalidProcessError):
            simple_chain.rename_states({"c0": "x", "c1": "x", "c2": "y"})

    def test_rename_states_must_cover(self, simple_chain):
        with pytest.raises(InvalidProcessError):
            simple_chain.rename_states({"c0": "x"})

    def test_with_start(self, simple_chain):
        rerooted = simple_chain.with_start("c1")
        assert rerooted.start == "c1"
        assert rerooted.states == simple_chain.states

    def test_with_start_unknown(self, simple_chain):
        with pytest.raises(InvalidProcessError):
            simple_chain.with_start("zz")

    def test_with_alphabet_superset(self, simple_chain):
        extended = simple_chain.with_alphabet({"a", "b"})
        assert extended.alphabet == frozenset({"a", "b"})

    def test_with_alphabet_must_cover_used_actions(self, simple_chain):
        with pytest.raises(InvalidProcessError):
            simple_chain.with_alphabet({"b"})

    def test_disjoint_union(self, simple_chain, branching_process):
        combined = simple_chain.with_alphabet({"a", "b", "c"}).disjoint_union(
            branching_process.with_alphabet({"a", "b", "c"})
        )
        assert combined.num_states == simple_chain.num_states + branching_process.num_states
        assert combined.start == "L:c0"
        assert "R:s" in combined.states


class TestEqualityAndRepr:
    def test_equality_is_structural(self, simple_chain):
        clone = from_transitions(
            [("c0", "a", "c1"), ("c1", "a", "c2")],
            start="c0",
            all_accepting=True,
        )
        assert clone == simple_chain
        assert hash(clone) == hash(simple_chain)

    def test_inequality(self, simple_chain, branching_process):
        assert simple_chain != branching_process

    def test_equality_with_other_type(self, simple_chain):
        assert simple_chain != "not a process"

    def test_repr_mentions_sizes(self, simple_chain):
        text = repr(simple_chain)
        assert "states=3" in text
        assert "transitions=2" in text

    def test_describe_lists_states(self, simple_chain):
        description = simple_chain.describe()
        assert "c0" in description and "--a-->" in description


class TestFromTransitions:
    def test_all_accepting_overrides_accepting(self):
        process = from_transitions(
            [("p", "a", "q")], start="p", accepting=["q"], all_accepting=True
        )
        assert process.accepting_states() == frozenset({"p", "q"})

    def test_explicit_alphabet_extension(self):
        process = from_transitions([("p", "a", "q")], start="p", alphabet={"b"})
        assert process.alphabet == frozenset({"a", "b"})

    def test_accept_marker_is_standard_variable(self):
        process = from_transitions([("p", "a", "q")], start="p", accepting=["q"])
        assert process.extension("q") == frozenset({ACCEPT})
        assert process.extension("p") == frozenset()
