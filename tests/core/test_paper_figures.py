"""Tests that the reconstructed figure processes have the advertised properties (E2, E3)."""

from __future__ import annotations

from repro.core.classify import ModelClass, classify
from repro.core.paper_figures import (
    chaos,
    fig1b_examples,
    fig2_examples,
    fig2_failure_pair,
    fig2_language_pair,
    trivial_nfa,
)
from repro.equivalence.failure import failure_equivalent_processes, failures_upto
from repro.equivalence.language import language_equivalent_processes
from repro.equivalence.observational import observationally_equivalent_processes


class TestFig1bClassMembership:
    def test_each_example_belongs_to_its_class(self):
        expectations = {
            "general": ModelClass.GENERAL,
            "observable": ModelClass.OBSERVABLE,
            "standard": ModelClass.STANDARD,
            "deterministic": ModelClass.DETERMINISTIC,
            "restricted": ModelClass.RESTRICTED,
            "restricted observable unary": ModelClass.ROU,
            "finite tree": ModelClass.FINITE_TREE,
        }
        examples = fig1b_examples()
        for label, model in expectations.items():
            assert model in classify(examples[label]), label

    def test_general_example_is_not_observable(self):
        classes = classify(fig1b_examples()["general"])
        assert ModelClass.OBSERVABLE not in classes

    def test_observable_example_is_not_standard(self):
        classes = classify(fig1b_examples()["observable"])
        assert ModelClass.STANDARD not in classes

    def test_deterministic_example_is_standard_observable(self):
        classes = classify(fig1b_examples()["deterministic"])
        assert ModelClass.STANDARD_OBSERVABLE in classes

    def test_finite_tree_failures_match_section_21(self):
        """The failure set computed in Section 2.1 for the finite-tree example."""
        tree = fig1b_examples()["finite tree"]
        failures = failures_upto(tree, tree.start, max_length=3)
        strings = {string for string, _refusal in failures}
        assert strings == {(), ("a",), ("a", "b"), ("a", "c")}
        # at the root, only subsets of {b, c} may be refused
        root_refusals = {refusal for string, refusal in failures if string == ()}
        assert frozenset({"b", "c"}) in root_refusals
        assert all("a" not in refusal for refusal in root_refusals)
        # after `a`, only {a} may be refused
        after_a = {refusal for string, refusal in failures if string == ("a",)}
        assert after_a == {frozenset(), frozenset({"a"})}
        # after `ab` and `ac`, everything may be refused
        after_ab = {refusal for string, refusal in failures if string == ("a", "b")}
        assert frozenset({"a", "b", "c"}) in after_ab


class TestFig2Separations:
    def test_language_pair_separates_language_from_failures(self):
        first, second = fig2_language_pair()
        assert language_equivalent_processes(first, second)
        assert not failure_equivalent_processes(first, second)
        assert not observationally_equivalent_processes(first, second)

    def test_failure_pair_separates_failures_from_bisimulation(self):
        first, second = fig2_failure_pair()
        assert language_equivalent_processes(first, second)
        assert failure_equivalent_processes(first, second)
        assert not observationally_equivalent_processes(first, second)

    def test_pairs_are_rou(self):
        for first, second in fig2_examples().values():
            assert ModelClass.ROU in classify(first)
            assert ModelClass.ROU in classify(second)


class TestGadgets:
    def test_chaos_is_rou(self):
        assert ModelClass.ROU in classify(chaos())

    def test_chaos_shape(self):
        process = chaos()
        assert process.num_states == 2
        assert process.successors("chaos", "a") == frozenset({"chaos", "halt"})
        assert process.enabled_actions("halt") == frozenset()

    def test_trivial_nfa_accepts_everything_locally(self):
        process = trivial_nfa({"a", "b"})
        assert process.num_states == 1
        assert process.enabled_actions(process.start) == frozenset({"a", "b"})
        assert process.is_accepting(process.start)

    def test_trivial_nfa_custom_alphabet(self):
        process = trivial_nfa({"u", "v", "w"})
        assert process.alphabet == frozenset({"u", "v", "w"})
