"""Tests for the model hierarchy of Fig. 1a / Appendix A Table I (experiment E1)."""

from __future__ import annotations

import pytest

from repro.core.classify import (
    HIERARCHY,
    ModelClass,
    belongs_to,
    classify,
    dead_states,
    has_dead_states,
    hierarchy_table,
    is_deterministic,
    is_finite_tree,
    is_observable,
    is_restricted,
    is_restricted_observable,
    is_rou,
    is_sou,
    is_standard,
    is_standard_observable,
    require,
    require_same_signature,
)
from repro.core.errors import ModelClassError
from repro.core.fsp import TAU, FSPBuilder, from_transitions


def _restricted_chain():
    return from_transitions([("p", "a", "q")], start="p", all_accepting=True)


class TestPredicates:
    def test_observable(self, branching_process, tau_process):
        assert is_observable(branching_process)
        assert not is_observable(tau_process)

    def test_standard(self, branching_process):
        assert is_standard(branching_process)
        builder = FSPBuilder(variables={"x", "y"})
        builder.add_transition("p", "a", "q")
        builder.add_extension("p", "y")
        assert not is_standard(builder.build(start="p"))

    def test_deterministic_requires_exactly_one_transition(self):
        deterministic = from_transitions(
            [("p", "a", "q"), ("p", "b", "p"), ("q", "a", "p"), ("q", "b", "q")],
            start="p",
            accepting=["q"],
        )
        assert is_deterministic(deterministic)
        missing = from_transitions([("p", "a", "q")], start="p", alphabet={"a", "b"})
        assert not is_deterministic(missing)
        double = from_transitions(
            [("p", "a", "q"), ("p", "a", "p"), ("q", "a", "q"), ("q", "a", "p")],
            start="p",
        )
        assert not is_deterministic(double)

    def test_deterministic_excludes_tau(self, tau_process):
        assert not is_deterministic(tau_process)

    def test_restricted(self, simple_chain, branching_process):
        assert is_restricted(simple_chain)
        assert not is_restricted(branching_process)

    def test_restricted_observable(self, simple_chain):
        assert is_restricted_observable(simple_chain)
        with_tau = from_transitions([("p", TAU, "q")], start="p", all_accepting=True)
        assert not is_restricted_observable(with_tau)

    def test_rou_requires_unary_alphabet(self, simple_chain):
        assert is_rou(simple_chain)
        binary = from_transitions([("p", "a", "q"), ("p", "b", "q")], start="p", all_accepting=True)
        assert not is_rou(binary)

    def test_sou(self):
        sou = from_transitions([("p", "a", "q")], start="p", accepting=["q"])
        assert is_sou(sou)
        assert not is_rou(sou)

    def test_standard_observable(self, branching_process, tau_process):
        assert is_standard_observable(branching_process)
        assert not is_standard_observable(tau_process)

    def test_finite_tree_positive(self):
        tree = from_transitions(
            [("r", "a", "l"), ("r", "b", "s"), ("l", "a", "t")],
            start="r",
            all_accepting=True,
        )
        assert is_finite_tree(tree)

    def test_finite_tree_rejects_cycles(self):
        looped = from_transitions([("r", "a", "r")], start="r", all_accepting=True)
        assert not is_finite_tree(looped)

    def test_finite_tree_rejects_shared_children(self):
        dag = from_transitions(
            [("r", "a", "x"), ("r", "b", "y"), ("x", "a", "z"), ("y", "a", "z")],
            start="r",
            all_accepting=True,
        )
        assert not is_finite_tree(dag)

    def test_finite_tree_requires_restricted(self):
        tree = from_transitions([("r", "a", "l")], start="r", accepting=["l"])
        assert not is_finite_tree(tree)

    def test_dead_states(self, branching_process):
        assert has_dead_states(branching_process)
        assert dead_states(branching_process) == frozenset({"t"})
        loop = from_transitions([("p", "a", "p")], start="p", all_accepting=True)
        assert not has_dead_states(loop)


class TestClassify:
    def test_rou_chain_has_all_expected_classes(self, simple_chain):
        classes = classify(simple_chain)
        assert ModelClass.ROU in classes
        assert ModelClass.RESTRICTED_OBSERVABLE in classes
        assert ModelClass.RESTRICTED in classes
        assert ModelClass.STANDARD in classes
        assert ModelClass.OBSERVABLE in classes
        assert ModelClass.GENERAL in classes
        assert ModelClass.FINITE_TREE in classes  # a chain is a tree

    def test_general_only_for_tau_with_rich_extensions(self):
        builder = FSPBuilder(variables={"x", "y"})
        builder.add_transition("p", TAU, "q")
        builder.add_extension("q", "y")
        process = builder.build(start="p")
        assert classify(process) == frozenset({ModelClass.GENERAL})

    def test_belongs_to_matches_classify(self, simple_chain):
        for model in ModelClass:
            assert belongs_to(simple_chain, model) == (model in classify(simple_chain))

    def test_hierarchy_is_consistent_with_predicates(self):
        # membership in a class implies membership in every ancestor class
        examples = [
            _restricted_chain(),
            from_transitions([("p", "a", "q")], start="p", accepting=["q"]),
            from_transitions([("p", TAU, "q")], start="p"),
        ]
        for process in examples:
            classes = classify(process)
            for model in classes:
                for parent in HIERARCHY[model]:
                    assert parent in classes

    def test_hierarchy_table_lists_every_class(self):
        table = hierarchy_table()
        for model in ModelClass:
            assert model.value in table


class TestRequire:
    def test_require_passes(self, simple_chain):
        require(simple_chain, ModelClass.RESTRICTED)

    def test_require_raises_with_context(self, branching_process):
        with pytest.raises(ModelClassError, match="failure equivalence"):
            require(branching_process, ModelClass.RESTRICTED, context="failure equivalence")

    def test_require_same_signature_alphabet(self, simple_chain):
        other = from_transitions([("p", "b", "q")], start="p", all_accepting=True)
        with pytest.raises(ModelClassError, match="Sigma"):
            require_same_signature(simple_chain, other)

    def test_require_same_signature_variables(self, simple_chain):
        builder = FSPBuilder(alphabet={"a"}, variables={"x", "y"})
        builder.add_transition("p", "a", "q")
        builder.add_extension("p", "y")
        other = builder.build(start="p")
        with pytest.raises(ModelClassError, match="variable"):
            require_same_signature(simple_chain, other)

    def test_require_same_signature_accepts_matching(self, simple_chain):
        require_same_signature(simple_chain, _restricted_chain())
