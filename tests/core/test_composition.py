"""Tests for the process-level composition operators (Section 6 extensions)."""

from __future__ import annotations

import pytest

from repro.ccs.parser import parse_process
from repro.ccs.semantics import compile_to_fsp
from repro.core.composition import (
    ccs_composition,
    hide,
    interleaving_product,
    relabel,
    restrict,
    synchronous_product,
)
from repro.core.errors import InvalidProcessError
from repro.core.fsp import TAU, from_transitions
from repro.equivalence.language import accepted_strings_upto
from repro.equivalence.observational import observationally_equivalent_processes
from repro.reductions.theorem41c import make_restricted


def _ab_chain():
    return from_transitions([("p0", "a", "p1"), ("p1", "b", "p2")], start="p0", all_accepting=True)


def _ba_chain():
    return from_transitions([("q0", "b", "q1"), ("q1", "a", "q2")], start="q0", all_accepting=True)


class TestSynchronousProduct:
    def test_intersection_of_languages(self):
        over_ab = from_transitions(
            [("p", "a", "p"), ("p", "b", "p")], start="p", all_accepting=True
        )
        only_a = from_transitions(
            [("q", "a", "q")], start="q", all_accepting=True, alphabet={"a", "b"}
        )
        product = synchronous_product(over_ab, only_a)
        assert accepted_strings_upto(product, 3) == accepted_strings_upto(only_a, 3)

    def test_mismatched_chains_deadlock_immediately(self):
        product = synchronous_product(_ab_chain(), _ba_chain())
        assert accepted_strings_upto(product, 3) == frozenset({()})

    def test_tau_moves_are_local(self):
        noisy = from_transitions(
            [("p", TAU, "p1"), ("p1", "a", "p2")], start="p", all_accepting=True
        )
        plain = from_transitions([("q", "a", "q1")], start="q", all_accepting=True)
        product = synchronous_product(noisy, plain)
        assert ("a",) in accepted_strings_upto(product, 2)

    def test_extension_mode_validation(self):
        with pytest.raises(InvalidProcessError):
            synchronous_product(_ab_chain(), _ab_chain(), extension_mode="bogus")


class TestInterleavingProduct:
    def test_shuffle_of_languages(self):
        product = interleaving_product(_ab_chain(), _ba_chain())
        strings = accepted_strings_upto(product, 4)
        assert ("a", "b", "b", "a") in strings
        assert ("b", "a", "a", "b") in strings
        # both components start differently, so a doubled first action is impossible
        assert ("a", "a") not in strings
        assert ("b", "b") not in strings

    def test_size_is_bounded_by_the_product(self):
        product = interleaving_product(_ab_chain(), _ba_chain())
        assert product.num_states <= _ab_chain().num_states * _ba_chain().num_states


class TestCcsComposition:
    def test_matches_term_level_semantics(self):
        """Composing compiled components equals compiling the composed term."""
        left = compile_to_fsp(parse_process("a.c!.0"))
        right = compile_to_fsp(parse_process("c.b.0"))
        composed = ccs_composition(
            left.with_alphabet({"a", "b", "c", "c!"}), right.with_alphabet({"a", "b", "c", "c!"})
        )
        direct = compile_to_fsp(parse_process("a.c!.0 | c.b.0"))
        aligned = direct.with_alphabet(composed.alphabet)
        assert observationally_equivalent_processes(
            make_restricted(composed), make_restricted(aligned)
        )

    def test_synchronisation_appears_as_tau(self):
        sender = from_transitions([("s", "c!", "s1")], start="s", all_accepting=True)
        receiver = from_transitions([("r", "c", "r1")], start="r", all_accepting=True)
        composed = ccs_composition(
            sender.with_alphabet({"c", "c!"}), receiver.with_alphabet({"c", "c!"})
        )
        assert composed.has_tau()

    def test_restriction_after_composition_hides_the_channel(self):
        sender = from_transitions([("s", "c!", "s1")], start="s", all_accepting=True)
        receiver = from_transitions([("r", "c", "r1")], start="r", all_accepting=True)
        composed = ccs_composition(
            sender.with_alphabet({"c", "c!"}), receiver.with_alphabet({"c", "c!"})
        )
        restricted = restrict(composed, ["c"])
        assert restricted.alphabet == frozenset()
        # only the synchronised tau remains
        assert all(action == TAU for _s, action, _t in restricted.transitions)


class TestUnaryOperators:
    def test_restrict_removes_channel_and_co_action(self):
        process = from_transitions(
            [("p", "a", "q"), ("p", "a!", "r"), ("p", "b", "s")],
            start="p",
            all_accepting=True,
        )
        restricted = restrict(process, ["a"])
        assert restricted.alphabet == frozenset({"b"})
        assert accepted_strings_upto(restricted, 2) == frozenset({(), ("b",)})

    def test_hide_turns_actions_into_tau(self):
        process = _ab_chain()
        hidden = hide(process, ["a"])
        assert hidden.has_tau()
        assert accepted_strings_upto(hidden, 2) == frozenset({(), ("b",)})

    def test_hide_then_weak_equivalence(self):
        """Hiding the internal action makes the chain weakly equivalent to b.0."""
        hidden = hide(_ab_chain(), ["a"])
        spec = from_transitions([("q", "b", "q1")], start="q", all_accepting=True, alphabet={"b"})
        assert observationally_equivalent_processes(hidden, spec)

    def test_relabel_renames_channel_and_co_action(self):
        process = from_transitions(
            [("p", "a", "q"), ("q", "a!", "r")], start="p", all_accepting=True
        )
        renamed = relabel(process, {"a": "z"})
        assert renamed.alphabet == frozenset({"z", "z!"})
        assert ("z", "z!") in accepted_strings_upto(renamed, 2)

    def test_relabel_rejects_tau(self):
        with pytest.raises(InvalidProcessError):
            relabel(_ab_chain(), {TAU: "a"})


class TestAsciiPairNames:
    """Regression: composed state names must survive every serialisation path."""

    def test_pair_names_are_plain_ascii(self):
        from repro.core.composition import pair_name

        product = ccs_composition(_ab_chain(), _ba_chain())
        for state in product.states:
            state.encode("ascii")  # raises on any non-ASCII separator
        assert pair_name("p0", "q0") == "(p0|q0)"
        assert pair_name("p0", "q0") in product.states

    def test_composed_process_round_trips_through_aut(self, tmp_path):
        from repro.engine import default_engine
        from repro.utils.serialization import load_process_file, save_process_file

        product = ccs_composition(_ab_chain(), _ba_chain())
        path = tmp_path / "composed.aut"
        save_process_file(product, path)
        path.read_text(encoding="ascii")  # the file itself is ASCII-clean
        reloaded = load_process_file(path)
        verdict = default_engine().check(product, reloaded, "strong", align=True, witness=False)
        assert verdict.equivalent

    def test_composed_process_round_trips_through_json(self, tmp_path):
        from repro.utils import serialization

        product = interleaving_product(_ab_chain(), _ba_chain())
        path = tmp_path / "composed.json"
        serialization.dump(product, path)
        assert serialization.load(path) == product

    def test_colliding_pair_names_are_rejected_not_merged(self):
        # component names containing the separator could alias two distinct
        # product states to one name; both routes must refuse, not merge.
        left = from_transitions(
            [("a|b", "go", "a")], start="a|b", all_accepting=True, alphabet={"go", "hop"}
        )
        right = from_transitions(
            [("c", "hop", "b|c")], start="c", all_accepting=True, alphabet={"go", "hop"}
        )
        with pytest.raises(InvalidProcessError, match="collision"):
            interleaving_product(left, right)
        from repro.explore import LazyInterleavingProduct, materialize

        with pytest.raises(InvalidProcessError, match="collision"):
            materialize(LazyInterleavingProduct(left, right))
