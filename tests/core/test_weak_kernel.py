"""Tests for the kernel weak-transition engine (tau-SCC + bitset saturation).

The dict-of-frozensets implementations retained in
:mod:`repro.core.derivatives` (``tau_closure_reference``,
``saturate_reference``) are the oracles here: the kernel must agree with them
arc for arc on random tau-dense processes and on the structured tau families,
and the full weak pipeline must reproduce the fixed-point reference partition
of Definition 2.2.2.
"""

from __future__ import annotations

import pytest

from repro.core.derivatives import (
    WeakTransitionView,
    saturate,
    saturate_reference,
    tau_closure,
    tau_closure_reference,
    weak_initials,
    weak_successors,
)
from repro.core.errors import InvalidProcessError
from repro.core.fsp import EPSILON, TAU, from_transitions
from repro.core.lts import LTS
from repro.core.weak import (
    WeakKernel,
    bits_to_indices,
    saturate_lts,
    tau_closure_bits,
    tau_scc,
)
from repro.equivalence.observational import (
    limited_observational_partition_reference,
    observational_partition,
)
from repro.generators.families import tau_diamond_tower, tau_ladder, tau_mesh
from repro.generators.random_fsp import random_fsp
from repro.partition.generalized import GeneralizedPartitioningInstance, Solver, solve


def tau_dense(seed: int, num_states: int = 10):
    return random_fsp(
        num_states=num_states,
        tau_probability=0.4,
        transition_density=2.0,
        seed=seed,
    )


class TestTauScc:
    def test_tau_cycle_is_one_component(self):
        process = from_transitions(
            [("p", TAU, "q"), ("q", TAU, "r"), ("r", TAU, "p"), ("p", "a", "s")],
            start="p",
            all_accepting=True,
        )
        lts = LTS.from_fsp(process, include_tau=True)
        scc_of, sccs = tau_scc(lts)
        cycle = {lts.state_names.index(name) for name in ("p", "q", "r")}
        assert len({scc_of[i] for i in cycle}) == 1
        assert len(sccs) == 2  # the cycle plus the singleton "s"

    def test_component_numbering_is_reverse_topological(self):
        """Every tau-arc between distinct components goes to a smaller id."""
        for seed in range(6):
            process = tau_dense(seed, num_states=14)
            lts = LTS.from_fsp(process, include_tau=True)
            scc_of, _ = tau_scc(lts)
            tau_name = TAU
            for src, act, dst in process.transitions:
                if act != tau_name:
                    continue
                a = scc_of[lts.state_names.index(src)]
                b = scc_of[lts.state_names.index(dst)]
                assert a == b or a > b

    def test_deep_tau_chain_does_not_recurse(self):
        """The iterative Tarjan survives chains far beyond the recursion limit."""
        deep = tau_ladder(3000)
        lts = LTS.from_fsp(deep, include_tau=True)
        scc_of, sccs = tau_scc(lts)
        assert len(scc_of) == lts.n
        assert sum(len(members) for members in sccs) == lts.n


class TestClosureAgainstReference:
    @pytest.mark.parametrize("seed", range(10))
    def test_bitset_closure_matches_bfs_reference(self, seed):
        process = tau_dense(seed)
        lts = LTS.from_fsp(process, include_tau=True)
        bits = tau_closure_bits(lts)
        names = lts.state_names
        from_bits = {
            names[i]: frozenset(names[j] for j in bits_to_indices(b))
            for i, b in enumerate(bits)
        }
        assert from_bits == tau_closure_reference(process)

    @pytest.mark.parametrize("seed", range(10))
    def test_public_tau_closure_matches_reference(self, seed):
        process = tau_dense(seed)
        assert tau_closure(process) == tau_closure_reference(process)

    def test_closure_is_reflexive_on_tau_free_processes(self):
        process = from_transitions([("p", "a", "q")], start="p", all_accepting=True)
        assert tau_closure(process) == {"p": frozenset({"p"}), "q": frozenset({"q"})}


class TestSaturationAgainstReference:
    @pytest.mark.parametrize("seed", range(10))
    def test_kernel_saturation_equals_reference_fsp(self, seed):
        process = tau_dense(seed)
        assert saturate(process) == saturate_reference(process)

    @pytest.mark.parametrize(
        "family", [lambda: tau_ladder(15), lambda: tau_mesh(36), lambda: tau_diamond_tower(6)]
    )
    def test_kernel_saturation_on_structured_families(self, family):
        process = family()
        lts = LTS.from_fsp(process, include_tau=True)
        assert saturate_lts(lts).to_fsp() == saturate_reference(process)

    def test_custom_epsilon_marker(self):
        process = tau_ladder(4)
        assert saturate(process, "eps") == saturate_reference(process, "eps")

    def test_epsilon_collision_raises(self):
        process = from_transitions([("p", "e", "q")], start="p", all_accepting=True)
        with pytest.raises(InvalidProcessError):
            saturate(process, "e")
        with pytest.raises(InvalidProcessError):
            saturate_lts(LTS.from_fsp(process, include_tau=True), "e")
        with pytest.raises(InvalidProcessError):
            saturate_lts(LTS.from_fsp(process, include_tau=True), TAU)

    def test_action_outside_observable_alphabet_raises(self):
        """A kernel whose observable_alphabet omits an arc-carrying action is rejected."""
        lts = LTS(
            state_names=["p", "q"],
            action_names=["a", "b"],
            edges=[(0, 0, 1), (0, 1, 1)],
            observable_alphabet=("a",),
        )
        with pytest.raises(InvalidProcessError):
            saturate_lts(lts)

    def test_from_csr_rejects_mismatched_arc_arrays(self):
        from array import array

        from repro.core.lts import INDEX_TYPECODE

        with pytest.raises(InvalidProcessError):
            LTS.from_csr(
                ["p", "q"],
                ["a"],
                array(INDEX_TYPECODE, [0, 2, 2]),
                array(INDEX_TYPECODE, [0]),  # one action for two targets
                array(INDEX_TYPECODE, [0, 1]),
            )

    def test_arc_free_action_outside_observable_alphabet_is_tolerated(self):
        """An unused label outside the observable alphabet has nothing to saturate."""
        lts = LTS(
            state_names=["p", "q"],
            action_names=["a", "b"],
            edges=[(0, 0, 1)],
            observable_alphabet=("a",),
        )
        saturated = saturate_lts(lts)
        assert "b" not in saturated.action_names

    def test_saturated_kernel_round_trips_through_csr(self):
        """from_csr adoption preserves the reverse index and determinism scan."""
        process = tau_mesh(25)
        saturated = saturate_lts(LTS.from_fsp(process, include_tau=True))
        rebuilt = LTS.from_fsp(saturated.to_fsp(), include_tau=True)
        assert list(saturated.fwd_offsets) == list(rebuilt.fwd_offsets)
        assert list(saturated.fwd_actions) == list(rebuilt.fwd_actions)
        assert list(saturated.fwd_targets) == list(rebuilt.fwd_targets)
        assert saturated.is_deterministic() == rebuilt.is_deterministic()


class TestWeakKernelQueries:
    @pytest.mark.parametrize("seed", range(6))
    def test_weak_successors_match_dict_path(self, seed):
        process = tau_dense(seed)
        kernel = WeakKernel.from_fsp(process)
        closure = tau_closure_reference(process)
        for state in process.states:
            assert kernel.epsilon_closure(state) == closure[state]
            for action in process.alphabet:
                assert kernel.weak_successors(state, action) == weak_successors(
                    process, state, action, closure
                )

    def test_weak_bits_rejects_tau(self):
        kernel = WeakKernel.from_fsp(tau_ladder(3))
        with pytest.raises(InvalidProcessError):
            kernel.weak_successors("u0", TAU)

    def test_unknown_state_raises(self):
        kernel = WeakKernel.from_fsp(tau_ladder(3))
        with pytest.raises(InvalidProcessError):
            kernel.weak_successors("nope", "a")


class TestWeakPipelinePartition:
    @pytest.mark.parametrize("seed", range(8))
    def test_kernel_route_matches_fixed_point_reference(self, seed):
        process = tau_dense(seed, num_states=9)
        assert observational_partition(process) == limited_observational_partition_reference(
            process
        )

    @pytest.mark.parametrize(
        "family", [lambda: tau_ladder(10), lambda: tau_mesh(25), lambda: tau_diamond_tower(4)]
    )
    def test_kernel_route_on_structured_families(self, family):
        process = family()
        assert observational_partition(process) == limited_observational_partition_reference(
            process
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_lts_to_saturated_to_partition_round_trip(self, seed):
        """FSP -> LTS -> saturated LTS -> instance -> partition, every solver."""
        process = tau_dense(seed, num_states=8)
        saturated = saturate_lts(LTS.from_fsp(process, include_tau=True))
        instance = GeneralizedPartitioningInstance.from_lts(saturated)
        reference = limited_observational_partition_reference(process)
        for method in (Solver.NAIVE, Solver.KANELLAKIS_SMOLKA, Solver.PAIGE_TARJAN):
            assert solve(instance, method=method) == reference


class TestWeakInitialsRegression:
    def test_weak_initials_skip_the_epsilon_marker(self):
        """Regression: on a saturated process EPSILON is not a weak initial.

        ``weak_initials`` used to loop over the full alphabet; on saturated
        processes (whose alphabet contains the EPSILON marker) it reported
        EPSILON as enabled at every state because ``=>^epsilon`` is reflexive.
        """
        process = tau_ladder(3)
        saturated = saturate(process)
        assert EPSILON in saturated.alphabet
        view = WeakTransitionView(saturated)
        for state in saturated.states:
            assert EPSILON not in view.weak_initials(state)
            assert EPSILON not in weak_initials(saturated, state)

    def test_weak_initials_still_report_observable_actions(self):
        process = tau_ladder(3)
        assert "a" in weak_initials(process, "u0")
        view = WeakTransitionView(process)
        assert view.weak_initials("u0") == frozenset({"a"})

    def test_weak_language_view_rejects_saturated_processes(self):
        """The EPSILON marker in an alphabet means mixed semantics -- refuse it.

        Mirrors the pre-kernel behaviour where the ``approx_k`` route raised
        via ``saturate``'s collision check when handed an already-saturated
        process.
        """
        from repro.equivalence.language import weak_language_nfa

        saturated = saturate(tau_ladder(3))
        with pytest.raises(InvalidProcessError):
            weak_language_nfa(saturated)

    def test_weak_successors_raise_cleanly_on_tau(self):
        process = tau_ladder(3)
        with pytest.raises(InvalidProcessError):
            weak_successors(process, "u0", TAU)
        view = WeakTransitionView(process)
        with pytest.raises(InvalidProcessError):
            view.weak_successors("u0", TAU)
