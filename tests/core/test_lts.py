"""Tests for the integer-indexed LTS kernel and its FSP bridges."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidProcessError
from repro.core.fsp import TAU, from_transitions
from repro.core.lts import LTS
from repro.generators.random_fsp import (
    random_deterministic_fsp,
    random_fsp,
    random_observable_fsp,
)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_fsp_round_trips_exactly(self, seed):
        process = random_fsp(12, tau_probability=0.3, seed=seed)
        assert LTS.from_fsp(process, include_tau=True).to_fsp() == process

    @pytest.mark.parametrize("seed", range(5))
    def test_observable_fsp_round_trips_without_tau_flag(self, seed):
        process = random_observable_fsp(10, seed=seed)
        assert LTS.from_fsp(process, include_tau=False).to_fsp() == process

    def test_round_trip_keeps_start_and_extensions(self, branching_process):
        back = LTS.from_fsp(branching_process).to_fsp()
        assert back.start == branching_process.start
        assert back.extensions == branching_process.extensions
        assert back.alphabet == branching_process.alphabet

    def test_include_tau_false_drops_tau_arcs(self, tau_process):
        lts = LTS.from_fsp(tau_process, include_tau=False)
        assert TAU not in lts.action_names
        assert lts.num_transitions == sum(1 for _, act, _ in tau_process.transitions if act != TAU)

    def test_empty_lts_has_no_fsp(self):
        lts = LTS([], [], [])
        assert lts.n == 0
        with pytest.raises(InvalidProcessError):
            lts.to_fsp()


class TestStructure:
    def test_interning_is_canonical(self, branching_process):
        lts = LTS.from_fsp(branching_process)
        assert list(lts.state_names) == sorted(branching_process.states)
        assert list(lts.action_names) == sorted(branching_process.alphabet)

    def test_csr_matches_transitions(self, branching_process):
        lts = LTS.from_fsp(branching_process)
        arcs = {
            (lts.state_names[s], lts.action_names[a], lts.state_names[d])
            for s, a, d in lts.arcs()
        }
        assert arcs == set(branching_process.transitions)

    @pytest.mark.parametrize("seed", range(8))
    def test_reverse_index_mirrors_forward(self, seed):
        lts = LTS.from_fsp(random_fsp(10, tau_probability=0.2, seed=seed))
        rev_offsets, rev_actions, rev_sources = lts.reverse_index()
        backward = set()
        for target in range(lts.n):
            for i in range(rev_offsets[target], rev_offsets[target + 1]):
                backward.add((rev_sources[i], rev_actions[i], target))
        assert backward == set(lts.arcs())

    @pytest.mark.parametrize("seed", range(8))
    def test_reverse_lists_mirror_forward(self, seed):
        lts = LTS.from_fsp(random_fsp(10, tau_probability=0.2, seed=seed))
        slots = lts.reverse_lists()
        backward = {
            (source, slot // lts.n, slot % lts.n)
            for slot, sources in enumerate(slots)
            for source in sources
        }
        assert backward == set(lts.arcs())

    def test_duplicate_edges_are_removed(self):
        lts = LTS(["p", "q"], ["a"], [(0, 0, 1), (0, 0, 1), (1, 0, 0)])
        assert lts.num_transitions == 2

    def test_out_of_range_edges_rejected(self):
        with pytest.raises(InvalidProcessError):
            LTS(["p"], ["a"], [(0, 0, 5)])
        with pytest.raises(InvalidProcessError):
            LTS(["p"], ["a"], [(0, 3, 0)])

    def test_determinism_detection(self):
        deterministic = LTS.from_fsp(random_deterministic_fsp(9, seed=3))
        assert deterministic.is_deterministic()
        assert deterministic.max_fanout() <= 1
        branching = LTS.from_fsp(
            from_transitions(
                [("s", "a", "p"), ("s", "a", "q")], start="s", all_accepting=True
            )
        )
        assert not branching.is_deterministic()
        assert branching.max_fanout() == 2

    def test_extension_block_ids_group_by_extension(self, branching_process):
        lts = LTS.from_fsp(branching_process)
        block_of, num_blocks = lts.extension_block_ids()
        assert num_blocks == 2  # accepting leaf vs everything else
        by_name = dict(zip(lts.state_names, block_of))
        assert by_name["s"] == by_name["l"] == by_name["r"]
        assert by_name["t"] != by_name["s"]
