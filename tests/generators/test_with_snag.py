"""Tests for the shared ``with_snag`` helper and its refactor regressions.

``interleaved_cycles_system`` and ``token_ring_system`` used to plant their
fault self-loops inline during construction; they now share
:func:`repro.generators.families.with_snag` (as does the crash rewriter of
:mod:`repro.protocols.faults`).  The regression tests rebuild the faulty
components exactly the way the pre-refactor code did and require the results
to be byte-identical, serialisation included.
"""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidProcessError
from repro.core.fsp import TAU, FSPBuilder
from repro.generators.families import (
    deterministic_cycle,
    interleaved_cycles_system,
    token_ring_system,
    with_snag,
)
from repro.utils.serialization import to_dict


class TestWithSnag:
    def test_adds_exactly_one_self_loop_and_its_action(self):
        clean = deterministic_cycle(4, "a")
        snagged = with_snag(clean, "k2")
        assert snagged.transitions - clean.transitions == {("k2", "snag", "k2")}
        assert set(snagged.alphabet) == set(clean.alphabet) | {"snag"}
        assert snagged.states == clean.states
        assert snagged.extensions == clean.extensions

    def test_tau_snag_leaves_the_alphabet_alone(self):
        clean = deterministic_cycle(3, "a")
        snagged = with_snag(clean, "k0", TAU)
        assert snagged.alphabet == clean.alphabet
        assert ("k0", TAU, "k0") in snagged.transitions

    def test_unknown_state_is_rejected(self):
        with pytest.raises(InvalidProcessError, match="cannot snag"):
            with_snag(deterministic_cycle(3, "a"), "k9")

    def test_snagging_is_idempotent(self):
        clean = deterministic_cycle(3, "a")
        once = with_snag(clean, "k1")
        assert with_snag(once, "k1") == once


class TestRefactorRegressions:
    def test_interleaved_cycles_match_the_inline_construction(self):
        lengths, fault_depth = (4, 3, 5), 2
        system = interleaved_cycles_system(lengths, fault_depth=fault_depth)
        leaves = [system.left.left, system.left.right, system.right]
        # the pre-refactor faulty component: the snag laid down during
        # construction via deterministic_cycle's `extra` hook
        expected_faulty = deterministic_cycle(
            lengths[0], "c0", extra=[(fault_depth, "snag", fault_depth)]
        )
        assert leaves[0].fsp == expected_faulty
        assert to_dict(leaves[0].fsp) == to_dict(expected_faulty)
        for index, leaf in enumerate(leaves[1:], start=1):
            assert leaf.fsp == deterministic_cycle(lengths[index], f"c{index}")

    def test_token_ring_matches_the_inline_construction(self):
        n, faulty = 4, 2
        system = token_ring_system(n, faulty_station=faulty)
        leaves = {}

        def collect(node):
            if hasattr(node, "label"):
                leaves[node.label] = node.fsp
            for attr in ("of", "left", "right"):
                if hasattr(node, attr):
                    collect(getattr(node, attr))

        collect(system)
        for i in range(n):
            succ = (i + 1) % n
            builder = FSPBuilder(alphabet={f"tok{i}", f"tok{succ}!", f"serve{i}"})
            builder.add_transition("wait", f"tok{i}", "holding")
            builder.add_transition("holding", f"serve{i}", "served")
            builder.add_transition("served", f"tok{succ}!", "wait")
            if i == faulty:
                builder.add_transition("holding", f"fault{i}", "holding")
            builder.mark_all_accepting()
            expected = builder.build(start="holding" if i == 0 else "wait")
            assert leaves[f"station{i}"] == expected
            assert to_dict(leaves[f"station{i}"]) == to_dict(expected)
