"""Tests for the parametric process families used by the benchmarks."""

from __future__ import annotations

import pytest

from repro.automata.dfa import determinize
from repro.core.classify import ModelClass, classify
from repro.equivalence.language import language_nfa
from repro.equivalence.minimize import minimize_strong
from repro.equivalence.strong import strongly_equivalent_processes
from repro.generators.expressions import (
    alternating_expression,
    left_deep_concat,
    random_star_expression,
    starred_unions,
)
from repro.generators.families import (
    binary_tree,
    chain,
    comb,
    cycle,
    duplicated_chain,
    kanellakis_inequivalent_pair,
    kanellakis_pair,
    nondeterministic_counter,
    restricted_counter,
    tau_diamond_tower,
    tau_ladder,
    tau_mesh,
)
from repro.expressions.syntax import length_of


class TestBasicFamilies:
    def test_chain_size(self):
        process = chain(5)
        assert process.num_states == 6
        assert process.num_transitions == 5

    def test_cycle_size_and_validation(self):
        assert cycle(4).num_states == 4
        with pytest.raises(ValueError):
            cycle(0)

    def test_binary_tree_is_a_finite_tree(self):
        tree = binary_tree(3)
        assert ModelClass.FINITE_TREE in classify(tree)
        assert tree.num_states == 2 ** 4 - 1

    def test_comb_structure(self):
        process = comb(4)
        assert ModelClass.RESTRICTED_OBSERVABLE in classify(process)
        assert process.num_states == 9  # 5 spine + 4 teeth

    def test_tau_ladder_has_tau(self):
        assert tau_ladder(3).has_tau()

    def test_duplicated_chain_minimises_to_plain_chain(self):
        bloated = duplicated_chain(4, 3)
        assert minimize_strong(bloated).num_states == 5

    def test_tau_mesh_shape_and_density(self):
        process = tau_mesh(16)
        assert process.num_states == 16  # 4x4 grid
        assert process.has_tau()
        # closure of the corner reaches the whole grid, so saturation is dense
        from repro.core.derivatives import tau_closure

        assert tau_closure(process)["g0_0"] == process.states

    def test_tau_mesh_rounds_the_side_up(self):
        assert tau_mesh(2000).num_states == 45 * 45
        assert tau_mesh(2).num_states == 4  # side is at least 2

    def test_tau_diamond_tower_structure(self):
        process = tau_diamond_tower(3)
        assert process.num_states == 3 * 3 + 1
        assert process.has_tau()
        with pytest.raises(ValueError):
            tau_diamond_tower(0)


class TestHardInstances:
    def test_nondeterministic_counter_blows_up_under_determinisation(self):
        process = nondeterministic_counter(6)
        dfa = determinize(language_nfa(process))
        assert len(dfa.states) >= 2 ** 6

    def test_restricted_counter_is_restricted(self):
        assert ModelClass.RESTRICTED in classify(restricted_counter(4))

    def test_counter_validation(self):
        with pytest.raises(ValueError):
            nondeterministic_counter(0)

    def test_kanellakis_pair_is_equivalent(self):
        left, right = kanellakis_pair(4)
        assert strongly_equivalent_processes(left, right)

    def test_kanellakis_inequivalent_pair_is_inequivalent(self):
        left, right = kanellakis_inequivalent_pair(4)
        assert not strongly_equivalent_processes(left, right)


class TestExpressionFamilies:
    def test_random_expression_reproducible(self):
        assert str(random_star_expression(8, seed=1)) == str(random_star_expression(8, seed=1))

    def test_alternating_expression_grows_linearly(self):
        small = length_of(alternating_expression(2))
        large = length_of(alternating_expression(4))
        assert large > small

    def test_left_deep_concat_length(self):
        assert length_of(left_deep_concat(5)) == 9  # 5 actions + 4 concat operators

    def test_starred_unions_width(self):
        expression = starred_unions(4)
        assert length_of(expression) == 8  # 4 actions + 3 unions + 1 star


class TestComposedScenarioFamilies:
    def test_interleaved_cycles_product_size_is_exact(self):
        from repro.explore import build_implicit, reachable_stats
        from repro.generators.families import (
            interleaved_cycles_product_size,
            interleaved_cycles_system,
        )

        lengths = [3, 4, 2]
        stats = reachable_stats(build_implicit(interleaved_cycles_system(lengths)))
        assert stats.states == interleaved_cycles_product_size(lengths) == 24

    def test_fault_adds_behaviour_but_no_states(self):
        from repro.explore import build_implicit, reachable_stats
        from repro.generators.families import interleaved_cycles_pair

        ok, bad = interleaved_cycles_pair([3, 3])
        ok_stats = reachable_stats(build_implicit(ok))
        bad_stats = reachable_stats(build_implicit(bad))
        assert ok_stats.states == bad_stats.states
        assert bad_stats.transitions > ok_stats.transitions

    def test_dining_philosophers_can_eat_and_can_deadlock(self):
        from repro.explore import build_implicit, materialize
        from repro.generators.families import dining_philosophers_system

        table = materialize(build_implicit(dining_philosophers_system(3)))
        actions = {action for _s, action, _d in table.transitions}
        assert {"eat0", "eat1", "eat2"} <= actions
        # the all-hold-left deadlock is reachable: some state has no moves
        sources = {src for src, _a, _d in table.transitions}
        assert table.states - sources, "expected a reachable deadlock state"

    def test_token_ring_serves_round_robin(self):
        from repro.explore import build_implicit, materialize
        from repro.generators.families import token_ring_system

        ring = materialize(build_implicit(token_ring_system(3)))
        from repro.equivalence.language import accepted_strings_upto

        words = accepted_strings_upto(ring, 3)
        assert ("serve0",) in words
        assert ("serve0", "serve1") in words
        assert ("serve1",) not in words  # station 0 holds the token first

    def test_milner_scheduler_overlaps_tasks(self):
        from repro.explore import build_implicit, materialize
        from repro.generators.families import milner_scheduler_system

        scheduler = materialize(build_implicit(milner_scheduler_system(3)))
        from repro.equivalence.language import accepted_strings_upto

        words = accepted_strings_upto(scheduler, 2)
        # the next task can start before the previous one finishes
        assert ("start0", "start1") in words
        # but starts stay in round-robin order
        assert ("start1",) not in words

    def test_redundant_interleaving_minimises_to_the_plain_grid(self):
        from repro.equivalence.minimize import minimize_observational
        from repro.explore import compose_eager
        from repro.generators.families import redundant_interleaving_system

        spec = redundant_interleaving_system(2, 3, 2)
        eager = compose_eager(spec)
        minimal = minimize_observational(eager)
        assert minimal.num_states < eager.num_states
        assert minimal.num_states == 4 * 4  # two chains of length 3 -> 4 states each
