"""Tests for the parametric process families used by the benchmarks."""

from __future__ import annotations

import pytest

from repro.automata.dfa import determinize
from repro.core.classify import ModelClass, classify
from repro.equivalence.language import language_nfa
from repro.equivalence.minimize import minimize_strong
from repro.equivalence.strong import strongly_equivalent_processes
from repro.generators.expressions import (
    alternating_expression,
    left_deep_concat,
    random_star_expression,
    starred_unions,
)
from repro.generators.families import (
    binary_tree,
    chain,
    comb,
    cycle,
    duplicated_chain,
    kanellakis_inequivalent_pair,
    kanellakis_pair,
    nondeterministic_counter,
    restricted_counter,
    tau_diamond_tower,
    tau_ladder,
    tau_mesh,
)
from repro.expressions.syntax import length_of


class TestBasicFamilies:
    def test_chain_size(self):
        process = chain(5)
        assert process.num_states == 6
        assert process.num_transitions == 5

    def test_cycle_size_and_validation(self):
        assert cycle(4).num_states == 4
        with pytest.raises(ValueError):
            cycle(0)

    def test_binary_tree_is_a_finite_tree(self):
        tree = binary_tree(3)
        assert ModelClass.FINITE_TREE in classify(tree)
        assert tree.num_states == 2 ** 4 - 1

    def test_comb_structure(self):
        process = comb(4)
        assert ModelClass.RESTRICTED_OBSERVABLE in classify(process)
        assert process.num_states == 9  # 5 spine + 4 teeth

    def test_tau_ladder_has_tau(self):
        assert tau_ladder(3).has_tau()

    def test_duplicated_chain_minimises_to_plain_chain(self):
        bloated = duplicated_chain(4, 3)
        assert minimize_strong(bloated).num_states == 5

    def test_tau_mesh_shape_and_density(self):
        process = tau_mesh(16)
        assert process.num_states == 16  # 4x4 grid
        assert process.has_tau()
        # closure of the corner reaches the whole grid, so saturation is dense
        from repro.core.derivatives import tau_closure

        assert tau_closure(process)["g0_0"] == process.states

    def test_tau_mesh_rounds_the_side_up(self):
        assert tau_mesh(2000).num_states == 45 * 45
        assert tau_mesh(2).num_states == 4  # side is at least 2

    def test_tau_diamond_tower_structure(self):
        process = tau_diamond_tower(3)
        assert process.num_states == 3 * 3 + 1
        assert process.has_tau()
        with pytest.raises(ValueError):
            tau_diamond_tower(0)


class TestHardInstances:
    def test_nondeterministic_counter_blows_up_under_determinisation(self):
        process = nondeterministic_counter(6)
        dfa = determinize(language_nfa(process))
        assert len(dfa.states) >= 2 ** 6

    def test_restricted_counter_is_restricted(self):
        assert ModelClass.RESTRICTED in classify(restricted_counter(4))

    def test_counter_validation(self):
        with pytest.raises(ValueError):
            nondeterministic_counter(0)

    def test_kanellakis_pair_is_equivalent(self):
        left, right = kanellakis_pair(4)
        assert strongly_equivalent_processes(left, right)

    def test_kanellakis_inequivalent_pair_is_inequivalent(self):
        left, right = kanellakis_inequivalent_pair(4)
        assert not strongly_equivalent_processes(left, right)


class TestExpressionFamilies:
    def test_random_expression_reproducible(self):
        assert str(random_star_expression(8, seed=1)) == str(random_star_expression(8, seed=1))

    def test_alternating_expression_grows_linearly(self):
        small = length_of(alternating_expression(2))
        large = length_of(alternating_expression(4))
        assert large > small

    def test_left_deep_concat_length(self):
        assert length_of(left_deep_concat(5)) == 9  # 5 actions + 4 concat operators

    def test_starred_unions_width(self):
        expression = starred_unions(4)
        assert length_of(expression) == 8  # 4 actions + 3 unions + 1 star
