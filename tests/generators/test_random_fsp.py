"""Tests for the random process generators."""

from __future__ import annotations

import pytest

from repro.core.classify import ModelClass, classify
from repro.equivalence.observational import observationally_equivalent
from repro.equivalence.strong import strongly_equivalent
from repro.generators.random_fsp import (
    perturb,
    random_deterministic_fsp,
    random_equivalent_copy,
    random_finite_tree,
    random_fsp,
    random_observable_fsp,
    random_restricted_observable_fsp,
    random_rou_fsp,
)


class TestReproducibility:
    def test_same_seed_same_process(self):
        assert random_fsp(10, seed=3) == random_fsp(10, seed=3)

    def test_different_seed_usually_differs(self):
        assert random_fsp(10, seed=3) != random_fsp(10, seed=4)


class TestModelTargets:
    def test_general_generator_sizes(self):
        process = random_fsp(12, transition_density=2.0, seed=1)
        assert process.num_states == 12

    def test_generator_rejects_zero_states(self):
        with pytest.raises(ValueError):
            random_fsp(0)

    def test_connectivity(self):
        process = random_fsp(15, seed=5)
        assert process.reachable_states() == process.states

    @pytest.mark.parametrize("seed", range(3))
    def test_observable_generator(self, seed):
        process = random_observable_fsp(8, seed=seed)
        assert ModelClass.OBSERVABLE in classify(process)

    @pytest.mark.parametrize("seed", range(3))
    def test_restricted_observable_generator(self, seed):
        process = random_restricted_observable_fsp(8, seed=seed)
        assert ModelClass.RESTRICTED_OBSERVABLE in classify(process)

    @pytest.mark.parametrize("seed", range(3))
    def test_rou_generator(self, seed):
        process = random_rou_fsp(8, seed=seed)
        assert ModelClass.ROU in classify(process)

    @pytest.mark.parametrize("seed", range(3))
    def test_deterministic_generator(self, seed):
        process = random_deterministic_fsp(8, seed=seed)
        assert ModelClass.DETERMINISTIC in classify(process)

    @pytest.mark.parametrize("seed", range(3))
    def test_finite_tree_generator(self, seed):
        process = random_finite_tree(8, seed=seed)
        assert ModelClass.FINITE_TREE in classify(process)


class TestDerivedPairs:
    def test_perturb_changes_exactly_one_transition(self):
        process = random_observable_fsp(8, seed=2)
        perturbed = perturb(process, seed=2)
        difference = process.transitions ^ perturbed.transitions
        assert len(difference) == 1

    def test_equivalent_copy_is_strongly_equivalent_and_larger(self):
        process = random_observable_fsp(6, seed=9, all_accepting=True)
        copy = random_equivalent_copy(process, duplicates=2, seed=9)
        assert copy.num_states == process.num_states + 2
        for state in process.states:
            assert strongly_equivalent(copy, state, state)
        # every duplicated state is equivalent to its original
        for state in copy.states - process.states:
            original = state.split("#dup")[0]
            assert strongly_equivalent(copy, state, original)

    def test_equivalent_copy_preserves_weak_behaviour(self):
        process = random_fsp(6, tau_probability=0.3, seed=4, all_accepting=True)
        copy = random_equivalent_copy(process, duplicates=1, seed=4)
        for state in process.states:
            assert observationally_equivalent(copy, state, state)
