"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests from a source checkout without installing the
# package (e.g. straight after `git clone`).
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - depends on the environment
    sys.path.insert(0, str(_SRC))

from repro.core.fsp import FSP, TAU, from_transitions  # noqa: E402


@pytest.fixture
def simple_chain() -> FSP:
    """A three-state restricted chain ``c0 --a--> c1 --a--> c2``."""
    return from_transitions(
        [("c0", "a", "c1"), ("c1", "a", "c2")],
        start="c0",
        all_accepting=True,
    )


@pytest.fixture
def branching_process() -> FSP:
    """A standard process with branching and one accepting leaf."""
    return from_transitions(
        [
            ("s", "a", "l"),
            ("s", "a", "r"),
            ("l", "b", "t"),
            ("r", "c", "t"),
        ],
        start="s",
        accepting=["t"],
    )


@pytest.fixture
def tau_process() -> FSP:
    """A general process with tau-moves: s =tau=> m =a=> t, plus a direct a-move."""
    return from_transitions(
        [
            ("s", TAU, "m"),
            ("m", "a", "t"),
            ("s", "a", "t"),
            ("t", TAU, "t"),
        ],
        start="s",
        accepting=["t"],
    )
