"""Property-based test of Lemma 4.1 (the union characterisation of approx_k) -- experiment E15."""

from __future__ import annotations

from hypothesis import given, settings

from repro.equivalence.kobs import k_observational_equivalent_processes
from repro.reductions.star_ops import fsp_union
from repro.reductions.theorem41b import union_characterisation_holds
from tests.property.strategies import restricted_observable_strategy, rou_strategy

SETTINGS = settings(max_examples=25, deadline=None)


@given(rou_strategy(max_states=3), rou_strategy(max_states=3))
@SETTINGS
def test_lemma_41_on_rou_pairs(first, second):
    for k in (1, 2):
        assert union_characterisation_holds(first, second, k)


@given(restricted_observable_strategy(max_states=3), restricted_observable_strategy(max_states=3))
@SETTINGS
def test_lemma_41_on_restricted_observable_pairs(first, second):
    assert union_characterisation_holds(first, second, 1)


@given(rou_strategy(max_states=3))
@SETTINGS
def test_union_with_self_is_equivalent_to_self(process):
    """p u p approx_k p for every k -- a direct consequence of Lemma 4.1 with q = p."""
    union = fsp_union(process, process)
    for k in (1, 2):
        assert k_observational_equivalent_processes(union, process.with_alphabet(union.alphabet), k)
