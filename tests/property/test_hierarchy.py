"""Property-based tests for the relationships between the equivalences (E14, Propositions 2.2.3/2.2.4)."""

from __future__ import annotations

from hypothesis import given, settings

from repro.equivalence.failure import failure_equivalent
from repro.equivalence.kobs import k_observational_equivalent
from repro.equivalence.language import language_equivalent
from repro.equivalence.observational import observationally_equivalent
from repro.equivalence.strong import strongly_equivalent
from tests.property.strategies import (
    deterministic_strategy,
    restricted_observable_strategy,
    rou_strategy,
)

SETTINGS = settings(max_examples=30, deadline=None)


def _state_pairs(process):
    states = sorted(process.states)
    return [(p, q) for i, p in enumerate(states) for q in states[i + 1 :]]


@given(restricted_observable_strategy(max_states=4))
@SETTINGS
def test_proposition_223a_observational_implies_failure_implies_language(process):
    """On the restricted model: approx  implies  failure-equivalence  implies  approx_1."""
    for first, second in _state_pairs(process):
        if observationally_equivalent(process, first, second):
            assert failure_equivalent(process, first, second)
        if failure_equivalent(process, first, second):
            assert language_equivalent(process, first, second)


@given(restricted_observable_strategy(max_states=4))
@SETTINGS
def test_proposition_223b_approx1_is_language_equivalence(process):
    for first, second in _state_pairs(process):
        assert k_observational_equivalent(process, first, second, 1) == language_equivalent(
            process, first, second
        )


@given(deterministic_strategy(max_states=4))
@SETTINGS
def test_proposition_224_deterministic_collapse(process):
    """On the deterministic model approx_1 already equals observational equivalence."""
    for first, second in _state_pairs(process):
        level_one = k_observational_equivalent(process, first, second, 1)
        full = observationally_equivalent(process, first, second)
        assert level_one == full


@given(rou_strategy(max_states=4))
@SETTINGS
def test_rou_chain_between_language_and_observational(process):
    """Even in the r.o.u. model the chain approx => failure => approx_1 holds and is strict in general."""
    for first, second in _state_pairs(process):
        if observationally_equivalent(process, first, second):
            assert failure_equivalent(process, first, second)
            assert language_equivalent(process, first, second)


@given(restricted_observable_strategy(max_states=4))
@SETTINGS
def test_strong_equals_observational_on_observable_processes(process):
    """Definition 2.2.3: for observable processes strong equivalence IS observational equivalence."""
    for first, second in _state_pairs(process):
        assert strongly_equivalent(process, first, second) == observationally_equivalent(
            process, first, second
        )


@given(restricted_observable_strategy(max_states=4))
@SETTINGS
def test_approx_k_chain_is_monotone(process):
    """approx_{k+1} is contained in approx_k."""
    for first, second in _state_pairs(process):
        for k in (1, 2):
            if k_observational_equivalent(process, first, second, k + 1):
                assert k_observational_equivalent(process, first, second, k)
