"""Property tests: engine verdicts agree with the reference routes and carry
checkable witnesses.

Two families of properties pin the engine facade down:

* **agreement** -- for every notion, :meth:`Engine.check` on random process
  pairs returns the same boolean as the pre-engine reference route (disjoint
  union of the *original* processes + the single-process decision
  functions), so the quotient fast paths of :mod:`repro.engine.notions`
  cannot drift from the definitions;
* **witnesses** -- whenever the verdict is "not equivalent", the attached
  witness re-checks against the original pair: the HML formula is satisfied
  by exactly the left start state, the word is accepted by exactly one
  side's language, the refusal pair is a failure of exactly one side
  (:meth:`Verdict.verify_witness` re-derives this from first principles).
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.engine import Engine
from repro.equivalence.failure import failure_equivalent
from repro.equivalence.kobs import k_observational_equivalent
from repro.equivalence.language import language_equivalent
from repro.equivalence.observational import observationally_equivalent
from repro.equivalence.strong import strongly_equivalent
from tests.property.strategies import fsp_strategy, restricted_observable_strategy

MAX_EXAMPLES = 60


def _reference(first, second, decide, *args):
    """The pre-engine route: disjoint union of the originals, then decide."""
    combined = first.disjoint_union(second)
    return decide(combined, "L:" + first.start, "R:" + second.start, *args)


def _checked(notion, first, second, decide, *args, **params):
    """Engine verdict for the pair, asserted against the reference route."""
    engine = Engine()
    verdict = engine.check(first, second, notion, witness=True, **params)
    assert verdict.equivalent == _reference(first, second, decide, *args)
    if not verdict.equivalent:
        assert verdict.witness is not None, f"no witness for {notion} inequivalence"
        assert verdict.verify_witness() is True, (
            f"{notion} witness does not hold: {verdict.witness.describe()}"
        )
    return verdict


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(first=fsp_strategy(), second=fsp_strategy())
def test_strong_agreement_and_witness(first, second):
    _checked("strong", first, second, strongly_equivalent)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(first=fsp_strategy(), second=fsp_strategy())
def test_observational_agreement_and_witness(first, second):
    _checked("observational", first, second, observationally_equivalent)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(first=fsp_strategy(max_states=4), second=fsp_strategy(max_states=4))
def test_k_observational_agreement_and_witness(first, second):
    for k in (1, 2):
        _checked("k-observational", first, second, k_observational_equivalent, k, k=k)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(first=fsp_strategy(), second=fsp_strategy())
def test_language_agreement_and_witness(first, second):
    _checked("language", first, second, language_equivalent)


@settings(max_examples=MAX_EXAMPLES, deadline=None)
@given(first=restricted_observable_strategy(), second=restricted_observable_strategy())
def test_failure_agreement_and_witness(first, second):
    _checked("failure", first, second, failure_equivalent)


@settings(max_examples=30, deadline=None)
@given(first=fsp_strategy(), second=fsp_strategy())
def test_witness_is_one_sided(first, second):
    """A witness must separate in the stated direction, not merely differ."""
    engine = Engine()
    verdict = engine.check(first, second, "strong", witness=True)
    if verdict.witness is not None:
        # swapping the sides must falsify the certificate
        assert verdict.witness.holds(verdict.left, verdict.right)
        assert not verdict.witness.holds(verdict.right, verdict.left)
