"""Property-based tests for Proposition 2.2.1 and the algorithmic cross-checks (E13).

The properties exercised here are the load-bearing correctness claims of the
library:

* the saturation route of Theorem 4.1(a) computes the same partition as the
  direct fixed-point iteration of Definition 2.2.2;
* the partition returned by the strong-equivalence checker really is a strong
  bisimulation (a Sigma-fixed-point), and the observational partition really
  is a weak bisimulation (a (Sigma u {eps})-fixed-point);
* the three generalized-partitioning solvers agree.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.equivalence.observational import (
    limited_observational_partition_reference,
    observational_partition,
)
from repro.equivalence.relations import (
    is_strong_bisimulation,
    is_weak_bisimulation,
    relation_from_partition,
)
from repro.equivalence.strong import strong_bisimulation_partition
from repro.partition.generalized import (
    GeneralizedPartitioningInstance,
    Solver,
    is_valid_solution,
    solve,
)
from tests.property.strategies import fsp_strategy

SETTINGS = settings(max_examples=40, deadline=None)


@given(fsp_strategy())
@SETTINGS
def test_saturation_route_equals_fixed_point_reference(process):
    assert observational_partition(process) == limited_observational_partition_reference(process)


@given(fsp_strategy())
@SETTINGS
def test_strong_partition_induces_a_strong_bisimulation(process):
    partition = strong_bisimulation_partition(process)
    assert is_strong_bisimulation(process, relation_from_partition(partition))


@given(fsp_strategy())
@SETTINGS
def test_observational_partition_induces_a_weak_bisimulation(process):
    partition = observational_partition(process)
    assert is_weak_bisimulation(process, relation_from_partition(partition))


@given(fsp_strategy())
@SETTINGS
def test_observational_partition_is_coarser_than_strong(process):
    strong = strong_bisimulation_partition(process)
    weak = observational_partition(process)
    assert strong.refines(weak)


@given(fsp_strategy(max_states=6, max_transitions=12))
@SETTINGS
def test_partition_solvers_agree(process):
    instance = GeneralizedPartitioningInstance.from_fsp(process, include_tau=True)
    naive = solve(instance, Solver.NAIVE)
    ks = solve(instance, Solver.KANELLAKIS_SMOLKA)
    pt = solve(instance, Solver.PAIGE_TARJAN)
    assert naive == ks == pt
    assert is_valid_solution(instance, pt, reference=naive)


@given(fsp_strategy())
@SETTINGS
def test_partition_refines_extension_grouping(process):
    """Condition (1) of every equivalence: related states have equal extensions."""
    for partition in (strong_bisimulation_partition(process), observational_partition(process)):
        for block in partition:
            extensions = {process.extension(state) for state in block}
            assert len(extensions) == 1
