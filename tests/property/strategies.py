"""Hypothesis strategies for generating finite state processes.

The strategies produce small processes (a handful of states, one or two
actions) because the properties under test quantify over *all* behaviours of
the equivalence checkers, several of which are exponential; small shapes
already exercise every code path, and Hypothesis shrinks failures to minimal
counterexamples.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.fsp import ACCEPT, FSP, TAU


@st.composite
def fsp_strategy(
    draw,
    max_states: int = 5,
    alphabet: tuple[str, ...] = ("a", "b"),
    allow_tau: bool = True,
    all_accepting: bool = False,
    max_transitions: int = 10,
):
    """A random small FSP."""
    num_states = draw(st.integers(min_value=1, max_value=max_states))
    states = [f"s{i}" for i in range(num_states)]
    actions = list(alphabet) + ([TAU] if allow_tau else [])
    transition = st.tuples(
        st.sampled_from(states), st.sampled_from(actions), st.sampled_from(states)
    )
    transitions = draw(st.lists(transition, max_size=max_transitions, unique=True))
    if all_accepting:
        accepting = set(states)
    else:
        accepting = set(draw(st.lists(st.sampled_from(states), unique=True)))
    return FSP(
        states=states,
        start=states[0],
        alphabet=alphabet,
        transitions=transitions,
        variables=[ACCEPT],
        extensions=[(state, ACCEPT) for state in accepting],
    )


def restricted_observable_strategy(max_states: int = 5, alphabet: tuple[str, ...] = ("a", "b")):
    """A random small restricted observable FSP."""
    return fsp_strategy(
        max_states=max_states, alphabet=alphabet, allow_tau=False, all_accepting=True
    )


def rou_strategy(max_states: int = 4):
    """A random small r.o.u. FSP (single action, all accepting, no tau)."""
    return fsp_strategy(max_states=max_states, alphabet=("a",), allow_tau=False, all_accepting=True)


def deterministic_strategy(max_states: int = 5, alphabet: tuple[str, ...] = ("a", "b")):
    """A random small deterministic FSP (exactly one move per action per state)."""

    @st.composite
    def _build(draw):
        num_states = draw(st.integers(min_value=1, max_value=max_states))
        states = [f"d{i}" for i in range(num_states)]
        transitions = []
        for state in states:
            for action in alphabet:
                transitions.append((state, action, draw(st.sampled_from(states))))
        accepting = set(draw(st.lists(st.sampled_from(states), unique=True)))
        return FSP(
            states=states,
            start=states[0],
            alphabet=alphabet,
            transitions=transitions,
            variables=[ACCEPT],
            extensions=[(state, ACCEPT) for state in accepting],
        )

    return _build()
