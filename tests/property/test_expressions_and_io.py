"""Property-based tests for star expressions, minimisation and serialisation round-trips."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.equivalence.language import accepted_strings_upto
from repro.equivalence.minimize import minimize_observational, minimize_strong
from repro.equivalence.observational import observationally_equivalent_processes
from repro.equivalence.strong import strongly_equivalent_processes
from repro.expressions.regular import language_upto
from repro.expressions.semantics import representative_fsp
from repro.expressions.syntax import (
    ActionExpr,
    ConcatExpr,
    EmptyExpr,
    StarExpr,
    UnionExpr,
    length_of,
)
from repro.utils import serialization
from tests.property.strategies import fsp_strategy

SETTINGS = settings(max_examples=30, deadline=None)

_ACTIONS = st.sampled_from(["a", "b", "c"])


def _expression_strategy():
    return st.recursive(
        st.one_of(st.builds(EmptyExpr), st.builds(ActionExpr, _ACTIONS)),
        lambda children: st.one_of(
            st.builds(UnionExpr, children, children),
            st.builds(ConcatExpr, children, children),
            st.builds(StarExpr, children),
        ),
        max_leaves=6,
    )


@given(_expression_strategy())
@SETTINGS
def test_representative_fsp_language_matches_classical_semantics(expression):
    process = representative_fsp(expression)
    assert accepted_strings_upto(process, 3) == language_upto(expression, 3)


@given(_expression_strategy())
@SETTINGS
def test_representative_fsp_respects_lemma_231_state_bound(expression):
    process = representative_fsp(expression)
    assert process.num_states <= 2 * length_of(expression) + 1


@given(fsp_strategy())
@SETTINGS
def test_strong_minimisation_preserves_strong_equivalence(process):
    minimal = minimize_strong(process)
    assert minimal.num_states <= process.num_states
    assert strongly_equivalent_processes(process, minimal)


@given(fsp_strategy())
@SETTINGS
def test_observational_minimisation_preserves_observational_equivalence(process):
    minimal = minimize_observational(process)
    assert minimal.num_states <= process.num_states
    assert observationally_equivalent_processes(process, minimal)


@given(fsp_strategy())
@SETTINGS
def test_json_round_trip_is_lossless(process):
    assert serialization.loads(serialization.dumps(process)) == process
