"""Property tests: the lazy/on-the-fly routes agree with the eager ones.

Three cross-checks on random processes:

* materialising a lazy product equals the eager product construction
  (exactly, as FSP values);
* the on-the-fly verdict equals ``Engine.check`` on the materialised
  systems, for both notions;
* every verified trace reported on inequivalence replays as a genuine
  one-sided behaviour, and every ``TraceWitness`` holds.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.composition import ccs_composition, interleaving_product, synchronous_product
from repro.engine import default_engine
from repro.explore import (
    LazyCCSProduct,
    LazyInterleavingProduct,
    LazySynchronousProduct,
    check_implicit,
    materialize,
    verify_trace,
)
from tests.property.strategies import fsp_strategy

_PAIRS = st.tuples(
    fsp_strategy(max_states=4, alphabet=("a", "b"), max_transitions=7),
    fsp_strategy(max_states=4, alphabet=("a", "a!", "b"), max_transitions=7),
)


@settings(max_examples=60, deadline=None)
@given(_PAIRS)
def test_lazy_products_materialise_to_the_eager_products(pair):
    left, right = pair
    assert materialize(LazyCCSProduct(left, right)) == ccs_composition(left, right)
    assert materialize(LazyInterleavingProduct(left, right)) == interleaving_product(left, right)
    assert materialize(LazySynchronousProduct(left, right)) == synchronous_product(left, right)


@settings(max_examples=60, deadline=None)
@given(
    fsp_strategy(max_states=4, alphabet=("a", "b"), max_transitions=7),
    fsp_strategy(max_states=4, alphabet=("a", "b"), max_transitions=7),
    st.sampled_from(["strong", "observational"]),
)
def test_on_the_fly_verdict_matches_the_engine(left, right, notion):
    eager = default_engine().check(left, right, notion, align=True, witness=False).equivalent
    result = check_implicit(left, right, notion)
    assert result.equivalent == eager
    if result.trace is not None and result.trace_verified:
        verified, in_left = verify_trace(left, right, result.trace, notion)
        assert verified and in_left == result.trace_in_left


@settings(max_examples=40, deadline=None)
@given(
    fsp_strategy(max_states=4, alphabet=("a", "b"), max_transitions=7),
    fsp_strategy(max_states=4, alphabet=("a", "b"), max_transitions=7),
    st.sampled_from(["strong", "observational"]),
)
def test_engine_on_the_fly_witnesses_hold(left, right, notion):
    verdict = default_engine().check_on_the_fly(left, right, notion, witness=True)
    assert verdict.equivalent == (
        default_engine().check(left, right, notion, align=True, witness=False).equivalent
    )
    if verdict.witness is not None:
        assert verdict.witness.holds(left, right)
