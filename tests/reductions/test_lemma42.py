"""Tests for the Lemma 4.2 reduction (universality -> restricted observable approx_1)."""

from __future__ import annotations

import pytest

from repro.core.classify import ModelClass, classify
from repro.core.errors import ModelClassError
from repro.core.fsp import TAU, from_transitions
from repro.equivalence.language import accepted_strings_upto, is_universal
from repro.generators.random_fsp import random_fsp
from repro.reductions.lemma42 import (
    decide_universality_via_lemma42,
    lemma42_transform,
    normalize_for_lemma42,
)


def _universal_two_action():
    return from_transitions([("u", "a", "u"), ("u", "b", "u")], start="u", accepting=["u"])


def _missing_word_process():
    """Accepts everything except words containing two consecutive b's."""
    return from_transitions(
        [
            ("s", "a", "s"),
            ("s", "b", "t"),
            ("t", "a", "s"),
        ],
        start="s",
        accepting=["s", "t"],
        alphabet={"a", "b"},
    )


class TestNormalisation:
    def test_normalised_process_is_total_and_observable(self):
        original = from_transitions(
            [("p", "a", "q"), ("q", TAU, "r"), ("r", "b", "p")],
            start="p",
            accepting=["r"],
            alphabet={"a", "b"},
        )
        normalized = normalize_for_lemma42(original)
        assert not normalized.has_tau()
        for state in normalized.states:
            assert normalized.enabled_actions(state) == frozenset({"a", "b"})

    def test_normalisation_preserves_language(self):
        original = from_transitions(
            [("p", "a", "q"), ("q", TAU, "r"), ("r", "b", "p")],
            start="p",
            accepting=["r"],
            alphabet={"a", "b"},
        )
        normalized = normalize_for_lemma42(original)
        assert accepted_strings_upto(original, 4) == accepted_strings_upto(normalized, 4)

    def test_requires_two_action_alphabet(self):
        unary = from_transitions([("p", "a", "p")], start="p", accepting=["p"])
        with pytest.raises(ModelClassError):
            normalize_for_lemma42(unary)

    @pytest.mark.parametrize("seed", range(5))
    def test_normalisation_preserves_language_on_random_processes(self, seed):
        original = random_fsp(
            6, alphabet=("a", "b"), tau_probability=0.2, accepting_probability=0.4, seed=seed
        )
        normalized = normalize_for_lemma42(original)
        assert accepted_strings_upto(original, 4) == accepted_strings_upto(normalized, 4)


class TestTransformation:
    def test_result_is_restricted_observable(self):
        transformed = lemma42_transform(normalize_for_lemma42(_universal_two_action()))
        assert ModelClass.RESTRICTED_OBSERVABLE in classify(transformed)

    def test_requires_total_transitions(self):
        partial = from_transitions(
            [("p", "a", "p")], start="p", accepting=["p"], alphabet={"a", "b"}
        )
        with pytest.raises(ModelClassError):
            lemma42_transform(partial)

    def test_universal_instance_maps_to_universal_instance(self):
        normalized = normalize_for_lemma42(_universal_two_action())
        assert is_universal(normalized)
        transformed = lemma42_transform(normalized)
        assert is_universal(transformed)

    def test_non_universal_instance_maps_to_non_universal_instance(self):
        normalized = normalize_for_lemma42(_missing_word_process())
        assert not is_universal(normalized)
        transformed = lemma42_transform(normalized)
        assert not is_universal(transformed)


class TestEndToEnd:
    @pytest.mark.parametrize(
        "factory,expected",
        [(_universal_two_action, True), (_missing_word_process, False)],
    )
    def test_reduction_decides_universality(self, factory, expected):
        assert decide_universality_via_lemma42(factory()) is expected

    @pytest.mark.parametrize("seed", range(6))
    def test_reduction_agrees_with_direct_check_on_random_instances(self, seed):
        process = random_fsp(
            5, alphabet=("a", "b"), tau_probability=0.1, accepting_probability=0.6, seed=seed
        )
        direct = is_universal(process)
        via_reduction = decide_universality_via_lemma42(process)
        assert direct == via_reduction
