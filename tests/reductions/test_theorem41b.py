"""Tests for the Theorem 4.1(b) reduction: approx_k lifted to approx_{k+1}."""

from __future__ import annotations

import pytest

from repro.core.classify import ModelClass, classify
from repro.core.errors import ModelClassError
from repro.core.fsp import from_transitions
from repro.core.paper_figures import fig2_language_pair
from repro.equivalence.kobs import k_observational_equivalent_processes
from repro.generators.random_fsp import random_rou_fsp
from repro.reductions.theorem41b import (
    separating_pair,
    theorem41b_iterate,
    theorem41b_step,
    union_characterisation_holds,
)


class TestStep:
    def test_outputs_are_restricted_observable(self):
        first, second = fig2_language_pair()
        p_prime, q_prime = theorem41b_step(first, second)
        assert ModelClass.RESTRICTED_OBSERVABLE in classify(p_prime)
        assert ModelClass.RESTRICTED_OBSERVABLE in classify(q_prime)

    def test_size_growth_is_linear(self):
        first, second = fig2_language_pair()
        p_prime, q_prime = theorem41b_step(first, second)
        total_before = first.num_states + second.num_states
        assert p_prime.num_states <= 2 * total_before + 3
        assert q_prime.num_states <= 2 * total_before + 3

    def test_requires_restricted_observable(self, branching_process):
        with pytest.raises(ModelClassError):
            theorem41b_step(branching_process, branching_process)

    def test_iff_property_on_fig2_pair(self):
        """p approx_k q iff p' approx_{k+1} q', checked at k = 1 and k = 2."""
        first, second = fig2_language_pair()
        p_prime, q_prime = theorem41b_step(first, second)
        assert k_observational_equivalent_processes(first, second, 1)
        assert k_observational_equivalent_processes(p_prime, q_prime, 2)
        assert not k_observational_equivalent_processes(first, second, 2)
        assert not k_observational_equivalent_processes(p_prime, q_prime, 3)

    @pytest.mark.parametrize("seed", range(4))
    def test_iff_property_on_random_rou_pairs(self, seed):
        first = random_rou_fsp(4, seed=seed)
        second = random_rou_fsp(4, seed=seed + 100)
        p_prime, q_prime = theorem41b_step(first, second)
        for k in (1, 2):
            assert k_observational_equivalent_processes(
                first, second, k
            ) == k_observational_equivalent_processes(p_prime, q_prime, k + 1)

    def test_equivalent_inputs_stay_equivalent(self):
        process = from_transitions([("p", "a", "p1")], start="p", all_accepting=True)
        clone = from_transitions([("q", "a", "q1")], start="q", all_accepting=True)
        p_prime, q_prime = theorem41b_step(process, clone)
        for k in (1, 2, 3):
            assert k_observational_equivalent_processes(p_prime, q_prime, k)


class TestIterationAndSeparatingPairs:
    def test_iterate_zero_times_is_identity(self):
        first, second = fig2_language_pair()
        assert theorem41b_iterate(first, second, 0) == (first, second)

    @pytest.mark.parametrize("level", [1, 2, 3])
    def test_separating_pair_separates_exactly_at_level(self, level):
        first, second = separating_pair(level)
        assert k_observational_equivalent_processes(first, second, level)
        assert not k_observational_equivalent_processes(first, second, level + 1)

    def test_separating_pair_rejects_level_zero(self):
        with pytest.raises(ValueError):
            separating_pair(0)


class TestLemma41:
    def test_union_characterisation_on_fig2_pair(self):
        first, second = fig2_language_pair()
        for k in (1, 2):
            assert union_characterisation_holds(first, second, k)

    @pytest.mark.parametrize("seed", range(4))
    def test_union_characterisation_on_random_pairs(self, seed):
        first = random_rou_fsp(4, seed=seed)
        second = random_rou_fsp(4, seed=seed + 50)
        for k in (1, 2):
            assert union_characterisation_holds(first, second, k)
