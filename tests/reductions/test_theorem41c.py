"""Tests for the Theorem 4.1(c) constructions (chaos, accept->dead, r.o.u. hardness)."""

from __future__ import annotations

import pytest

from repro.core.classify import ModelClass, classify
from repro.core.errors import ModelClassError
from repro.core.fsp import from_transitions
from repro.core.paper_figures import chaos
from repro.equivalence.language import accepted_strings_upto
from repro.reductions.theorem41c import (
    accepting_to_dead,
    chaos_characterisation,
    equivalent_to_chaos,
    make_restricted,
    theorem41c_transform,
)


def _sou_language_a_plus():
    """An s.o.u. process without dead states whose language is {a}+."""
    return from_transitions([("p", "a", "q"), ("q", "a", "q")], start="p", accepting=["q"])


def _sou_language_not_a_plus():
    """An s.o.u. process without dead states whose language misses the word `a`."""
    return from_transitions(
        [("p", "a", "q"), ("q", "a", "r"), ("r", "a", "r")], start="p", accepting=["r"]
    )


class TestAcceptingToDead:
    def test_language_preserved_when_start_not_accepting(self):
        process = _sou_language_a_plus()
        transformed = accepting_to_dead(process)
        assert accepted_strings_upto(process, 4) == accepted_strings_upto(transformed, 4)

    def test_accepting_states_become_exactly_the_dead_states(self):
        transformed = accepting_to_dead(_sou_language_a_plus())
        for state in transformed.states:
            assert transformed.is_accepting(state) == (not transformed.enabled_actions(state))

    def test_requires_standard_observable(self, tau_process):
        with pytest.raises(ModelClassError):
            accepting_to_dead(tau_process)

    def test_already_dead_accept_states_untouched(self):
        process = from_transitions([("p", "a", "q")], start="p", accepting=["q"])
        transformed = accepting_to_dead(process)
        assert transformed.num_states == process.num_states


class TestMakeRestricted:
    def test_every_state_becomes_accepting(self, branching_process):
        restricted = make_restricted(branching_process)
        assert ModelClass.RESTRICTED in classify(restricted)
        assert restricted.num_states == branching_process.num_states


class TestChaosCharacterisation:
    def test_chaos_is_equivalent_to_itself(self):
        assert chaos_characterisation(chaos())
        assert equivalent_to_chaos(chaos())

    def test_characterisation_agrees_with_generic_approx2(self):
        candidates = [
            chaos(),
            # a* loop only: no dead derivative, so not chaos-like
            from_transitions([("p", "a", "p")], start="p", all_accepting=True),
            # finite chain: dies out entirely, so not chaos-like
            from_transitions([("p", "a", "q")], start="p", all_accepting=True),
            # chaos with an extra intermediate state (still chaos-like)
            from_transitions(
                [
                    ("p", "a", "p"),
                    ("p", "a", "d"),
                    ("p", "a", "m"),
                    ("m", "a", "p"),
                    ("m", "a", "d"),
                ],
                start="p",
                all_accepting=True,
            ),
            # a process with a "finite but non-trivial" derivative (violates condition iii)
            from_transitions(
                [("p", "a", "p"), ("p", "a", "d"), ("p", "a", "m"), ("m", "a", "d2")],
                start="p",
                all_accepting=True,
            ),
        ]
        for candidate in candidates:
            assert chaos_characterisation(candidate) == equivalent_to_chaos(candidate), candidate

    def test_characterisation_requires_unary_alphabet(self):
        binary = from_transitions([("p", "a", "p"), ("p", "b", "p")], start="p", all_accepting=True)
        with pytest.raises(ModelClassError):
            chaos_characterisation(binary)


class TestFullReduction:
    def test_a_plus_instance_maps_to_chaos_equivalent(self):
        transformed = theorem41c_transform(_sou_language_a_plus())
        assert ModelClass.ROU in classify(transformed)
        assert equivalent_to_chaos(transformed)
        assert chaos_characterisation(transformed)

    def test_non_a_plus_instance_maps_to_chaos_inequivalent(self):
        transformed = theorem41c_transform(_sou_language_not_a_plus())
        assert not equivalent_to_chaos(transformed)
        assert not chaos_characterisation(transformed)

    def test_rejects_processes_with_dead_states(self):
        with_dead = from_transitions([("p", "a", "q")], start="p", accepting=["q"])
        with pytest.raises(ModelClassError):
            theorem41c_transform(with_dead)

    def test_rejects_non_unary_processes(self):
        binary = from_transitions([("p", "a", "p"), ("p", "b", "p")], start="p", accepting=["p"])
        with pytest.raises(ModelClassError):
            theorem41c_transform(binary)
