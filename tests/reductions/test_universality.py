"""Tests for the trivial-NFA comparisons (Fig. 5d and the closing remark of Section 4)."""

from __future__ import annotations

import pytest

from repro.core.errors import ModelClassError
from repro.core.fsp import TAU, from_transitions
from repro.generators.random_fsp import random_fsp, random_restricted_observable_fsp
from repro.reductions.universality import (
    approx1_equals_trivial,
    approx2_equals_trivial_characterisation,
    approx2_equals_trivial_generic,
    has_tau_cycle,
    refusal_witness,
)


def _total_process():
    return from_transitions(
        [("u", "a", "u"), ("u", "b", "v"), ("v", "a", "u"), ("v", "b", "v")],
        start="u",
        all_accepting=True,
    )


def _partial_process():
    return from_transitions(
        [("u", "a", "u"), ("u", "b", "v")],
        start="u",
        all_accepting=True,
        alphabet={"a", "b"},
    )


class TestApprox1:
    def test_total_process_is_universal(self):
        assert approx1_equals_trivial(_total_process())

    def test_partial_process_is_not_universal(self):
        assert not approx1_equals_trivial(_partial_process())

    def test_requires_restricted(self, branching_process):
        with pytest.raises(ModelClassError):
            approx1_equals_trivial(branching_process)


class TestApprox2Characterisation:
    def test_total_process_matches_trivial_at_level_2(self):
        assert approx2_equals_trivial_characterisation(_total_process())
        assert approx2_equals_trivial_generic(_total_process())

    def test_partial_process_fails_at_level_2(self):
        assert not approx2_equals_trivial_characterisation(_partial_process())
        assert not approx2_equals_trivial_generic(_partial_process())

    def test_universal_language_but_refusing_state_fails_at_level_2(self):
        """A process can be approx_1 the trivial NFA without being approx_2 it."""
        process = from_transitions(
            [
                ("u", "a", "u"),
                ("u", "b", "u"),
                ("u", "a", "dead_end"),
                ("dead_end", "a", "u"),
            ],
            start="u",
            all_accepting=True,
            alphabet={"a", "b"},
        )
        assert approx1_equals_trivial(process)  # language is still Sigma*
        assert not approx2_equals_trivial_characterisation(process)
        assert not approx2_equals_trivial_generic(process)

    def test_tau_moves_count_as_weak_enabledness(self):
        process = from_transitions(
            [("u", TAU, "v"), ("v", "a", "u"), ("v", "b", "u"), ("u", "a", "v")],
            start="u",
            all_accepting=True,
        )
        assert approx2_equals_trivial_characterisation(process)

    @pytest.mark.parametrize("seed", range(8))
    def test_characterisation_agrees_with_generic_decision(self, seed):
        process = random_restricted_observable_fsp(5, seed=seed)
        assert approx2_equals_trivial_characterisation(process) == approx2_equals_trivial_generic(
            process
        )


class TestWitnesses:
    def test_refusal_witness_names_missing_actions(self):
        witness = refusal_witness(_partial_process())
        assert witness is not None
        state, missing = witness
        assert state == "v" and missing == frozenset({"a", "b"})

    def test_no_witness_for_total_process(self):
        assert refusal_witness(_total_process()) is None

    def test_has_tau_cycle(self):
        cyclic = from_transitions([("p", TAU, "q"), ("q", TAU, "p")], start="p", all_accepting=True)
        acyclic = from_transitions(
            [("p", TAU, "q"), ("q", "a", "p")], start="p", all_accepting=True
        )
        assert has_tau_cycle(cyclic)
        assert not has_tau_cycle(acyclic)
