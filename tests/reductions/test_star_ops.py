"""Tests for the process-level star-expression combinators used by the reductions."""

from __future__ import annotations

import pytest

from repro.core.classify import ModelClass, classify
from repro.core.errors import ModelClassError
from repro.core.fsp import from_transitions
from repro.equivalence.language import accepted_strings_upto
from repro.equivalence.strong import strongly_equivalent_processes
from repro.reductions.star_ops import fsp_prefix, fsp_union


@pytest.fixture
def chain_one():
    return from_transitions([("p", "a", "p1")], start="p", all_accepting=True)


@pytest.fixture
def chain_two():
    return from_transitions([("q", "a", "q1"), ("q1", "a", "q2")], start="q", all_accepting=True)


class TestUnion:
    def test_union_start_offers_both_initial_moves(self, chain_one, chain_two):
        union = fsp_union(chain_one, chain_two)
        assert union.successors(union.start, "a") == frozenset({"L:p1", "R:q1"})

    def test_union_language_is_the_set_union(self, chain_one, chain_two):
        union = fsp_union(chain_one, chain_two)
        expected = accepted_strings_upto(chain_one, 3) | accepted_strings_upto(chain_two, 3)
        assert accepted_strings_upto(union, 3) == expected

    def test_union_stays_restricted_observable(self, chain_one, chain_two):
        union = fsp_union(chain_one, chain_two)
        assert ModelClass.RESTRICTED_OBSERVABLE in classify(union)

    def test_union_extension_of_start_is_inherited(self):
        accepting = from_transitions([("p", "a", "p1")], start="p", all_accepting=True)
        non_accepting = from_transitions([("q", "a", "q1")], start="q", accepting=["q1"])
        union = fsp_union(non_accepting, non_accepting)
        assert not union.is_accepting(union.start)
        union_acc = fsp_union(accepting, accepting.rename_states(prefix="o"))
        assert union_acc.is_accepting(union_acc.start)

    def test_union_requires_same_signature(self, chain_one):
        other = from_transitions([("q", "b", "q1")], start="q", all_accepting=True)
        with pytest.raises(ModelClassError):
            fsp_union(chain_one, other)

    def test_union_is_commutative_up_to_strong_equivalence(self, chain_one, chain_two):
        left = fsp_union(chain_one, chain_two)
        right = fsp_union(chain_two, chain_one)
        assert strongly_equivalent_processes(left, right)

    def test_union_idempotent_up_to_strong_equivalence(self, chain_one):
        doubled = fsp_union(chain_one, chain_one.rename_states(prefix="o"))
        assert strongly_equivalent_processes(doubled, chain_one)


class TestPrefix:
    def test_prefix_adds_one_state_and_one_move(self, chain_one):
        prefixed = fsp_prefix("b", chain_one)
        assert prefixed.num_states == chain_one.num_states + 1
        assert prefixed.num_transitions == chain_one.num_transitions + 1
        assert prefixed.enabled_actions(prefixed.start) == frozenset({"b"})

    def test_prefix_language(self, chain_one):
        prefixed = fsp_prefix("b", chain_one)
        strings = accepted_strings_upto(prefixed, 3)
        assert ("b", "a") in strings and ("a",) not in strings

    def test_prefix_start_accepting_by_default(self, chain_one):
        assert fsp_prefix("b", chain_one).is_accepting("pfx")

    def test_prefix_standard_mode(self, chain_one):
        prefixed = fsp_prefix("b", chain_one, accepting_start=False)
        assert not prefixed.is_accepting(prefixed.start)

    def test_prefix_extends_alphabet(self, chain_one):
        prefixed = fsp_prefix("new", chain_one)
        assert "new" in prefixed.alphabet
