"""Tests for the Theorem 5.1 reductions (language equivalence -> failure equivalence)."""

from __future__ import annotations

import pytest

from repro.core.classify import ModelClass, classify
from repro.core.errors import ModelClassError
from repro.core.fsp import from_transitions
from repro.equivalence.failure import failure_equivalent_processes
from repro.equivalence.language import language_equivalent_processes
from repro.generators.random_fsp import random_restricted_observable_fsp, random_rou_fsp
from repro.reductions.theorem41c import accepting_to_dead
from repro.reductions.theorem51 import rou_transform, theorem51_transform


class TestMainReduction:
    def test_transform_shape(self, simple_chain):
        transformed = theorem51_transform(simple_chain)
        assert ModelClass.RESTRICTED_OBSERVABLE in classify(transformed)
        assert transformed.num_states == simple_chain.num_states + 1
        # every original state now has an arc to the dead sink for every action
        for state in simple_chain.states:
            for action in simple_chain.alphabet:
                assert "p_dead" in transformed.successors(state, action)

    def test_requires_restricted_observable(self, branching_process):
        with pytest.raises(ModelClassError):
            theorem51_transform(branching_process)

    def test_language_equal_implies_failure_equal_after_transform(self):
        first = from_transitions(
            [("p", "a", "p1"), ("p", "a", "p2"), ("p1", "b", "p3")],
            start="p",
            all_accepting=True,
            alphabet={"a", "b"},
        )
        second = from_transitions(
            [("q", "a", "q1"), ("q1", "b", "q2")],
            start="q",
            all_accepting=True,
            alphabet={"a", "b"},
        )
        assert language_equivalent_processes(first, second)
        assert not failure_equivalent_processes(first, second)  # before the transform they differ
        assert failure_equivalent_processes(theorem51_transform(first), theorem51_transform(second))

    def test_language_difference_is_preserved(self):
        first = from_transitions(
            [("p", "a", "p1")], start="p", all_accepting=True, alphabet={"a", "b"}
        )
        second = from_transitions(
            [("q", "a", "q1"), ("q1", "b", "q2")],
            start="q",
            all_accepting=True,
            alphabet={"a", "b"},
        )
        assert not language_equivalent_processes(first, second)
        assert not failure_equivalent_processes(
            theorem51_transform(first), theorem51_transform(second)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_iff_property_on_random_restricted_pairs(self, seed):
        first = random_restricted_observable_fsp(5, seed=seed)
        second = random_restricted_observable_fsp(5, seed=seed + 31)
        language_equal = language_equivalent_processes(first, second)
        failures_equal_after = failure_equivalent_processes(
            theorem51_transform(first), theorem51_transform(second)
        )
        assert language_equal == failures_equal_after

    def test_name_clash_with_existing_dead_state(self):
        process = from_transitions([("p_dead", "a", "x")], start="p_dead", all_accepting=True)
        transformed = theorem51_transform(process)
        assert transformed.num_states == process.num_states + 1


class TestRouReduction:
    def _prepared(self, process):
        """accepting_to_dead expects s.o.u. processes; the reduction then follows."""
        return rou_transform(accepting_to_dead(process))

    def test_transform_is_rou(self):
        process = from_transitions([("p", "a", "q"), ("q", "a", "q")], start="p", accepting=["q"])
        transformed = self._prepared(process)
        assert ModelClass.ROU in classify(transformed)

    def test_requires_unary(self, simple_chain):
        binary = from_transitions([("p", "a", "q"), ("p", "b", "q")], start="p", accepting=["q"])
        with pytest.raises(ModelClassError):
            rou_transform(binary)

    def test_requires_accepting_equals_dead(self):
        process = from_transitions([("p", "a", "q"), ("q", "a", "q")], start="p", accepting=["q"])
        with pytest.raises(ModelClassError):
            rou_transform(process)  # q is accepting but not dead

    @pytest.mark.parametrize("seed", range(6))
    def test_iff_property_on_random_sou_pairs(self, seed):
        first = random_rou_fsp(5, seed=seed)
        second = random_rou_fsp(5, seed=seed + 77)
        # view them as s.o.u. instances by making acceptance follow deadness
        first_sou = accepting_to_dead(
            from_transitions(first.transitions, start=first.start, accepting=[], alphabet={"a"})
        )
        second_sou = accepting_to_dead(
            from_transitions(second.transitions, start=second.start, accepting=[], alphabet={"a"})
        )
        # make acceptance = dead states explicitly (language = strings reaching a dead state)
        first_sou = _accept_dead(first_sou)
        second_sou = _accept_dead(second_sou)
        language_equal = language_equivalent_processes(first_sou, second_sou)
        failure_equal_after = failure_equivalent_processes(
            rou_transform(first_sou), rou_transform(second_sou)
        )
        assert language_equal == failure_equal_after


def _accept_dead(process):
    from repro.core.fsp import FSP, ACCEPT

    dead = [state for state in process.states if not process.enabled_actions(state)]
    return FSP(
        states=process.states,
        start=process.start,
        alphabet=process.alphabet,
        transitions=process.transitions,
        variables=[ACCEPT],
        extensions=[(state, ACCEPT) for state in dead],
    )
