"""Tests for the NFA substrate (with epsilon moves)."""

from __future__ import annotations

import pytest

from repro.automata.nfa import NFA
from repro.core.errors import InvalidProcessError
from repro.core.fsp import TAU, from_transitions


@pytest.fixture
def ab_star_nfa() -> NFA:
    """An NFA accepting (ab)* with an epsilon shortcut."""
    return NFA(
        states=["s", "mid", "back"],
        start="s",
        alphabet=["a", "b"],
        transitions=[("s", "a", "mid"), ("mid", "b", "back"), ("back", None, "s")],
        accepting=["s"],
    )


class TestConstruction:
    def test_validation_unknown_state(self):
        with pytest.raises(InvalidProcessError):
            NFA(["p"], "p", ["a"], [("p", "a", "zz")], [])

    def test_validation_unknown_symbol(self):
        with pytest.raises(InvalidProcessError):
            NFA(["p", "q"], "p", ["a"], [("p", "b", "q")], [])

    def test_validation_start(self):
        with pytest.raises(InvalidProcessError):
            NFA(["p"], "zz", ["a"], [], [])

    def test_validation_accepting(self):
        with pytest.raises(InvalidProcessError):
            NFA(["p"], "p", ["a"], [], ["zz"])


class TestLanguage:
    def test_accepts(self, ab_star_nfa):
        assert ab_star_nfa.accepts([])
        assert ab_star_nfa.accepts(["a", "b"])
        assert ab_star_nfa.accepts(["a", "b", "a", "b"])
        assert not ab_star_nfa.accepts(["a"])
        assert not ab_star_nfa.accepts(["b", "a"])
        assert not ab_star_nfa.accepts(["c"])

    def test_language_upto(self, ab_star_nfa):
        words = ab_star_nfa.language_upto(4)
        assert words == frozenset({(), ("a", "b"), ("a", "b", "a", "b")})

    def test_epsilon_closure(self, ab_star_nfa):
        assert ab_star_nfa.epsilon_closure({"back"}) == frozenset({"back", "s"})

    def test_step(self, ab_star_nfa):
        macro = ab_star_nfa.epsilon_closure({ab_star_nfa.start})
        assert ab_star_nfa.step(macro, "a") == frozenset({"mid"})

    def test_reverse_language(self, ab_star_nfa):
        reversed_nfa = ab_star_nfa.reverse()
        assert reversed_nfa.accepts(["b", "a"])
        assert not reversed_nfa.accepts(["a", "b"])
        assert reversed_nfa.accepts([])


class TestFspConversion:
    def test_from_fsp_maps_tau_to_epsilon(self):
        process = from_transitions([("p", TAU, "q"), ("q", "a", "r")], start="p", accepting=["r"])
        nfa = NFA.from_fsp(process)
        assert nfa.accepts(["a"])
        assert ("p", None, "q") in nfa.transitions

    def test_from_fsp_custom_accepting(self):
        process = from_transitions([("p", "a", "q")], start="p", accepting=["q"])
        nfa = NFA.from_fsp(process, accepting={"p"})
        assert nfa.accepts([])
        assert not nfa.accepts(["a"])

    def test_round_trip_preserves_language(self):
        process = from_transitions(
            [("p", "a", "q"), ("q", TAU, "r"), ("r", "b", "p")], start="p", accepting=["q"]
        )
        nfa = NFA.from_fsp(process)
        back = NFA.from_fsp(nfa.to_fsp())
        assert nfa.language_upto(4) == back.language_upto(4)

    def test_to_fsp_all_accepting(self):
        nfa = NFA(["p", "q"], "p", ["a"], [("p", "a", "q")], ["q"])
        restricted = nfa.to_fsp(all_accepting=True)
        assert restricted.accepting_states() == frozenset({"p", "q"})

    def test_repr(self, ab_star_nfa):
        assert "states=3" in repr(ab_star_nfa)
