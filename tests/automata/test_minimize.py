"""Tests for DFA minimisation (Hopcroft and Moore)."""

from __future__ import annotations

import pytest

from repro.automata.dfa import DFA, determinize
from repro.automata.equivalence import dfa_equivalent
from repro.automata.minimize import hopcroft_minimize, moore_minimize
from repro.automata.nfa import NFA


def _redundant_dfa() -> DFA:
    """A DFA for 'ends with a' with a duplicated accepting state."""
    return DFA(
        states=["n", "y1", "y2"],
        start="n",
        alphabet=["a", "b"],
        delta={
            ("n", "a"): "y1",
            ("n", "b"): "n",
            ("y1", "a"): "y2",
            ("y1", "b"): "n",
            ("y2", "a"): "y1",
            ("y2", "b"): "n",
        },
        accepting=["y1", "y2"],
    )


@pytest.mark.parametrize("minimize", [hopcroft_minimize, moore_minimize])
class TestMinimisation:
    def test_merges_equivalent_states(self, minimize):
        minimal = minimize(_redundant_dfa())
        assert len(minimal.states) == 2
        assert dfa_equivalent(minimal, _redundant_dfa())

    def test_idempotent(self, minimize):
        once = minimize(_redundant_dfa())
        twice = minimize(once)
        assert len(once.states) == len(twice.states)

    def test_drops_unreachable_states(self, minimize):
        dfa = DFA(
            states=["p", "island"],
            start="p",
            alphabet=["a"],
            delta={("p", "a"): "p", ("island", "a"): "island"},
            accepting=["p", "island"],
        )
        assert len(minimize(dfa).states) == 1

    def test_all_rejecting(self, minimize):
        dfa = DFA(
            states=["p", "q"],
            start="p",
            alphabet=["a"],
            delta={("p", "a"): "q", ("q", "a"): "p"},
            accepting=[],
        )
        assert len(minimize(dfa).states) == 1

    def test_preserves_language(self, minimize):
        nfa = NFA(
            states=["s", "m", "f"],
            start="s",
            alphabet=["a", "b"],
            transitions=[("s", "a", "s"), ("s", "b", "s"), ("s", "a", "m"), ("m", "a", "f")],
            accepting=["f"],
        )
        dfa = determinize(nfa)
        minimal = minimize(dfa)
        for length in range(5):
            for word in _words(["a", "b"], length):
                assert dfa.accepts(word) == minimal.accepts(word)


def _words(alphabet, length):
    if length == 0:
        yield []
        return
    for word in _words(alphabet, length - 1):
        for symbol in alphabet:
            yield word + [symbol]


def test_hopcroft_and_moore_agree_on_size():
    redundant = _redundant_dfa()
    assert len(hopcroft_minimize(redundant).states) == len(moore_minimize(redundant).states)


def test_minimal_dfa_is_canonical_up_to_equivalence():
    """Two different DFAs for the same language minimise to the same number of states."""
    first = determinize(NFA(["s", "f"], "s", ["a"], [("s", "a", "f"), ("f", "a", "f")], ["f"]))
    second = determinize(
        NFA(
            ["s", "x", "f"],
            "s",
            ["a"],
            [("s", "a", "x"), ("s", "a", "f"), ("x", "a", "f"), ("f", "a", "f")],
            ["x", "f"],
        )
    )
    assert dfa_equivalent(first, second)
    assert len(hopcroft_minimize(first).states) == len(hopcroft_minimize(second).states)
