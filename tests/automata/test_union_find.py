"""Tests for the union-find structure used by DFA equivalence."""

from __future__ import annotations

from repro.automata.union_find import UnionFind


def test_singletons_are_their_own_representatives():
    union = UnionFind(["a", "b"])
    assert union.find("a") == "a"
    assert not union.connected("a", "b")


def test_union_connects():
    union = UnionFind()
    assert union.union("a", "b")
    assert union.connected("a", "b")
    assert not union.union("a", "b")  # already connected


def test_transitivity():
    union = UnionFind()
    union.union("a", "b")
    union.union("b", "c")
    assert union.connected("a", "c")


def test_find_adds_unknown_elements():
    union = UnionFind()
    assert union.find("fresh") == "fresh"
    assert "fresh" in union


def test_sets_enumeration():
    union = UnionFind(["a", "b", "c", "d"])
    union.union("a", "b")
    union.union("c", "d")
    sets = {frozenset(group) for group in union.sets()}
    assert sets == {frozenset({"a", "b"}), frozenset({"c", "d"})}


def test_large_chain_of_unions():
    union = UnionFind()
    for index in range(100):
        union.union(index, index + 1)
    assert union.connected(0, 100)
    assert len(union.sets()) == 1
