"""Tests for DFA/NFA language equivalence, inclusion and universality."""

from __future__ import annotations

import pytest

from repro.automata.dfa import DFA, determinize
from repro.automata.equivalence import (
    dfa_equivalent,
    dfa_included,
    distinguishing_word,
    nfa_distinguishing_word,
    nfa_equivalent,
    nfa_included,
    nfa_universal,
    nfa_universality_counterexample,
)
from repro.automata.nfa import NFA
from repro.core.errors import InvalidProcessError


def _dfa_ends_with_a() -> DFA:
    return DFA(
        states=["n", "y"],
        start="n",
        alphabet=["a", "b"],
        delta={("n", "a"): "y", ("n", "b"): "n", ("y", "a"): "y", ("y", "b"): "n"},
        accepting=["y"],
    )


def _dfa_ends_with_a_redundant() -> DFA:
    return DFA(
        states=["n", "y", "y2"],
        start="n",
        alphabet=["a", "b"],
        delta={
            ("n", "a"): "y",
            ("n", "b"): "n",
            ("y", "a"): "y2",
            ("y", "b"): "n",
            ("y2", "a"): "y",
            ("y2", "b"): "n",
        },
        accepting=["y", "y2"],
    )


class TestDfaEquivalence:
    def test_equivalent_dfas(self):
        assert dfa_equivalent(_dfa_ends_with_a(), _dfa_ends_with_a_redundant())

    def test_inequivalent_dfas_with_witness(self):
        witness = distinguishing_word(_dfa_ends_with_a(), _dfa_ends_with_a().complement())
        assert witness is not None
        assert _dfa_ends_with_a().accepts(witness) != _dfa_ends_with_a().complement().accepts(
            witness
        )

    def test_alphabet_mismatch_rejected(self):
        other = DFA(["p"], "p", ["z"], {("p", "z"): "p"}, ["p"])
        with pytest.raises(InvalidProcessError):
            dfa_equivalent(_dfa_ends_with_a(), other)

    def test_inclusion(self):
        ends_with_a = _dfa_ends_with_a()
        everything = DFA(["u"], "u", ["a", "b"], {("u", "a"): "u", ("u", "b"): "u"}, ["u"])
        assert dfa_included(ends_with_a, everything)
        assert not dfa_included(everything, ends_with_a)


class TestNfaEquivalence:
    def test_thompson_style_equivalence(self):
        first = NFA(["s", "f"], "s", ["a"], [("s", "a", "f"), ("f", "a", "f")], ["f"])
        second = NFA(
            ["s", "m", "f"],
            "s",
            ["a"],
            [("s", "a", "m"), ("m", None, "f"), ("f", "a", "f")],
            ["f"],
        )
        assert nfa_equivalent(first, second)
        assert nfa_distinguishing_word(first, second) is None

    def test_inequivalence_witness_is_short(self):
        a_plus = NFA(["s", "f"], "s", ["a"], [("s", "a", "f"), ("f", "a", "f")], ["f"])
        a_star = NFA(["s"], "s", ["a"], [("s", "a", "s")], ["s"])
        witness = nfa_distinguishing_word(a_plus, a_star)
        assert witness == ()

    def test_different_alphabets_are_aligned(self):
        over_a = NFA(["s"], "s", ["a"], [("s", "a", "s")], ["s"])
        over_ab = NFA(["s"], "s", ["a", "b"], [("s", "a", "s")], ["s"])
        # as languages over the joint alphabet they are equal
        assert nfa_equivalent(over_a, over_ab)

    def test_inclusion(self):
        a_plus = NFA(["s", "f"], "s", ["a"], [("s", "a", "f"), ("f", "a", "f")], ["f"])
        a_star = NFA(["s"], "s", ["a"], [("s", "a", "s")], ["s"])
        assert nfa_included(a_plus, a_star)
        assert not nfa_included(a_star, a_plus)


class TestUniversality:
    def test_universal_nfa(self):
        universal = NFA(["u"], "u", ["a", "b"], [("u", "a", "u"), ("u", "b", "u")], ["u"])
        assert nfa_universal(universal)
        assert nfa_universality_counterexample(universal) is None

    def test_non_universal_nfa(self):
        missing_b = NFA(["u"], "u", ["a", "b"], [("u", "a", "u")], ["u"])
        assert not nfa_universal(missing_b)
        counterexample = nfa_universality_counterexample(missing_b)
        assert counterexample is not None and "b" in counterexample

    def test_universality_of_union_covering_all_words(self):
        # accepts words containing an a, plus words of only b's -> universal
        nfa = NFA(
            states=["s", "hasa"],
            start="s",
            alphabet=["a", "b"],
            transitions=[
                ("s", "b", "s"),
                ("s", "a", "hasa"),
                ("hasa", "a", "hasa"),
                ("hasa", "b", "hasa"),
            ],
            accepting=["s", "hasa"],
        )
        assert nfa_universal(nfa)

    def test_determinized_view_agrees_with_direct_checks(self):
        nfa = NFA(["s", "f"], "s", ["a"], [("s", "a", "f"), ("f", "a", "f")], ["f"])
        dfa = determinize(nfa)
        for word in ([], ["a"], ["a", "a"]):
            assert dfa.accepts(word) == nfa.accepts(word)
