"""Tests for the DFA class and the subset construction."""

from __future__ import annotations

import pytest

from repro.automata.dfa import DEAD_STATE, DFA, determinize
from repro.automata.nfa import NFA
from repro.core.errors import InvalidProcessError, StateSpaceLimitError


def _even_as_dfa() -> DFA:
    """A DFA accepting words with an even number of `a`s (over {a, b})."""
    return DFA(
        states=["even", "odd"],
        start="even",
        alphabet=["a", "b"],
        delta={
            ("even", "a"): "odd",
            ("even", "b"): "even",
            ("odd", "a"): "even",
            ("odd", "b"): "odd",
        },
        accepting=["even"],
    )


class TestDfaBasics:
    def test_must_be_complete(self):
        with pytest.raises(InvalidProcessError):
            DFA(["p"], "p", ["a"], {}, [])

    def test_transition_targets_must_exist(self):
        with pytest.raises(InvalidProcessError):
            DFA(["p"], "p", ["a"], {("p", "a"): "zz"}, [])

    def test_accepts(self):
        dfa = _even_as_dfa()
        assert dfa.accepts([])
        assert dfa.accepts(["a", "a"])
        assert dfa.accepts(["b", "a", "b", "a"])
        assert not dfa.accepts(["a"])
        assert not dfa.accepts(["z"])

    def test_complement(self):
        dfa = _even_as_dfa().complement()
        assert dfa.accepts(["a"])
        assert not dfa.accepts([])

    def test_product_intersection(self):
        even = _even_as_dfa()
        product = even.product(even.complement(), accept_mode="both")
        assert product.is_empty()

    def test_product_union(self):
        even = _even_as_dfa()
        union = even.product(even.complement(), accept_mode="either")
        assert not union.complement().reachable_states() & union.complement().accepting

    def test_product_difference(self):
        even = _even_as_dfa()
        difference = even.product(even, accept_mode="difference")
        assert difference.is_empty()

    def test_product_requires_same_alphabet(self):
        other = DFA(["p"], "p", ["z"], {("p", "z"): "p"}, ["p"])
        with pytest.raises(InvalidProcessError):
            _even_as_dfa().product(other)

    def test_shortest_accepted_word(self):
        dfa = _even_as_dfa().complement()
        assert dfa.shortest_accepted_word() == ("a",)
        assert _even_as_dfa().shortest_accepted_word() == ()

    def test_shortest_accepted_word_empty_language(self):
        empty = DFA(["p"], "p", ["a"], {("p", "a"): "p"}, [])
        assert empty.shortest_accepted_word() is None
        assert empty.is_empty()

    def test_restrict_to_reachable(self):
        dfa = DFA(
            states=["p", "unreachable"],
            start="p",
            alphabet=["a"],
            delta={("p", "a"): "p", ("unreachable", "a"): "p"},
            accepting=["p"],
        )
        assert dfa.restrict_to_reachable().states == frozenset({"p"})

    def test_repr(self):
        assert "states=2" in repr(_even_as_dfa())


class TestDeterminize:
    def test_subset_construction_language(self):
        nfa = NFA(
            states=["s", "m", "f"],
            start="s",
            alphabet=["a", "b"],
            transitions=[("s", "a", "s"), ("s", "b", "s"), ("s", "a", "m"), ("m", "b", "f")],
            accepting=["f"],
        )
        dfa = determinize(nfa)
        for word in (["a", "b"], ["b", "a", "b"], ["a", "a", "b"]):
            assert dfa.accepts(word) == nfa.accepts(word)
        for word in ([], ["a"], ["b", "b"]):
            assert dfa.accepts(word) == nfa.accepts(word)

    def test_dead_state_added_for_missing_moves(self):
        nfa = NFA(["p", "q"], "p", ["a", "b"], [("p", "a", "q")], ["q"])
        dfa = determinize(nfa)
        assert DEAD_STATE in dfa.states
        assert not dfa.accepts(["b"])

    def test_epsilon_moves_are_resolved(self):
        nfa = NFA(["p", "q"], "p", ["a"], [("p", None, "q"), ("q", "a", "q")], ["q"])
        dfa = determinize(nfa)
        assert dfa.accepts([])
        assert dfa.accepts(["a", "a"])

    def test_max_states_guard(self):
        # the classical "k-th symbol from the end" NFA blows up exponentially
        states = ["g"] + [f"d{i}" for i in range(8)]
        transitions = [("g", "a", "g"), ("g", "b", "g"), ("g", "a", "d0")]
        transitions += [(f"d{i}", c, f"d{i+1}") for i in range(7) for c in "ab"]
        nfa = NFA(states, "g", ["a", "b"], transitions, ["d7"])
        with pytest.raises(StateSpaceLimitError):
            determinize(nfa, max_states=16)

    def test_empty_alphabet(self):
        nfa = NFA(["p"], "p", [], [], ["p"])
        dfa = determinize(nfa)
        assert dfa.accepts([])
