"""Tests for JSON serialisation, Aldebaran I/O, DOT export and matrix helpers."""

from __future__ import annotations

import pytest

from repro.core.errors import InvalidProcessError
from repro.core.fsp import TAU, from_transitions
from repro.core.derivatives import weak_successors
from repro.generators.random_fsp import random_fsp
from repro.utils import aut_format, dot, matrices, serialization


@pytest.fixture
def sample_process():
    return from_transitions(
        [("p", "a", "q"), ("q", TAU, "r"), ("r", "b", "p")],
        start="p",
        accepting=["q", "r"],
        alphabet={"a", "b"},
    )


class TestProcessFileDispatch:
    """Extension-dispatched loading/saving with unknown-extension rejection."""

    def test_json_dispatch_round_trip(self, sample_process, tmp_path):
        path = tmp_path / "process.json"
        serialization.save_process_file(sample_process, path)
        assert serialization.load_process_file(path) == sample_process

    def test_aut_dispatch_preserves_acceptance(self, sample_process, tmp_path):
        path = tmp_path / "process.aut"
        serialization.save_process_file(sample_process, path)
        reloaded = serialization.load_process_file(path)
        assert len(reloaded.accepting_states()) == len(sample_process.accepting_states())
        assert reloaded.num_transitions == sample_process.num_transitions

    def test_plain_aut_loads_as_restricted(self, tmp_path):
        path = tmp_path / "plain.aut"
        path.write_text('des (0, 1, 2)\n(0, "a", 1)\n', encoding="utf-8")
        reloaded = serialization.load_process_file(path)
        assert reloaded.accepting_states() == reloaded.states

    def test_dot_dispatch_writes_but_never_reads(self, sample_process, tmp_path):
        path = tmp_path / "process.dot"
        serialization.save_process_file(sample_process, path)
        assert path.read_text(encoding="utf-8").startswith("digraph")
        with pytest.raises(InvalidProcessError, match="write-only"):
            serialization.load_process_file(path)

    @pytest.mark.parametrize("name", ["process.xml", "process.yaml", "process"])
    def test_unknown_extensions_rejected_with_format_list(self, name, tmp_path):
        path = tmp_path / name
        path.write_text("whatever", encoding="utf-8")
        with pytest.raises(InvalidProcessError, match="loadable formats"):
            serialization.load_process_file(path)

    def test_unknown_save_extension_rejected(self, sample_process, tmp_path):
        with pytest.raises(InvalidProcessError, match="supported formats"):
            serialization.save_process_file(sample_process, tmp_path / "out.xml")

    def test_extensions_are_case_insensitive(self, sample_process, tmp_path):
        path = tmp_path / "process.JSON"
        serialization.save_process_file(sample_process, path)
        assert serialization.load_process_file(path) == sample_process


class TestJsonSerialization:
    def test_round_trip(self, sample_process):
        assert serialization.loads(serialization.dumps(sample_process)) == sample_process

    @pytest.mark.parametrize("seed", range(4))
    def test_round_trip_random(self, seed):
        process = random_fsp(7, tau_probability=0.2, seed=seed)
        assert serialization.loads(serialization.dumps(process)) == process

    def test_file_round_trip(self, sample_process, tmp_path):
        path = tmp_path / "process.json"
        serialization.dump(sample_process, path)
        assert serialization.load(path) == sample_process

    def test_format_marker_required(self):
        with pytest.raises(InvalidProcessError):
            serialization.from_dict({"states": ["p"], "start": "p"})

    def test_newer_version_rejected(self, sample_process):
        document = serialization.to_dict(sample_process)
        document["version"] = 999
        with pytest.raises(InvalidProcessError):
            serialization.from_dict(document)


class TestAldebaran:
    def test_round_trip_with_acceptance_marker(self, sample_process):
        text = aut_format.dumps(sample_process, accepting_label="ACCEPT")
        loaded = aut_format.loads(text, accepting_label="ACCEPT")
        # state names change (integers) but sizes and tau usage survive
        assert loaded.num_states == sample_process.num_states
        assert loaded.num_transitions == sample_process.num_transitions
        assert loaded.has_tau()
        assert len(loaded.accepting_states()) == len(sample_process.accepting_states())

    def test_round_trip_all_accepting(self, simple_chain):
        text = aut_format.dumps(simple_chain)
        loaded = aut_format.loads(text, all_accepting=True)
        assert loaded.num_states == simple_chain.num_states
        assert loaded.accepting_states() == loaded.states

    def test_header_and_format(self, simple_chain):
        text = aut_format.dumps(simple_chain)
        assert text.startswith("des (0, 2, 3)")

    def test_malformed_header_rejected(self):
        with pytest.raises(InvalidProcessError):
            aut_format.loads("not a header\n(0, \"a\", 1)")

    def test_malformed_transition_rejected(self):
        with pytest.raises(InvalidProcessError):
            aut_format.loads('des (0, 1, 2)\n(0, "a" 1)')

    def test_transition_count_checked(self):
        with pytest.raises(InvalidProcessError):
            aut_format.loads('des (0, 2, 2)\n(0, "a", 1)')

    def test_empty_document_rejected(self):
        with pytest.raises(InvalidProcessError):
            aut_format.loads("")

    def test_file_round_trip(self, simple_chain, tmp_path):
        path = tmp_path / "process.aut"
        aut_format.dump(simple_chain, path, accepting_label="ACC")
        loaded = aut_format.load(path, accepting_label="ACC")
        assert loaded.num_states == simple_chain.num_states


class TestDot:
    def test_dot_output_contains_states_and_edges(self, sample_process):
        text = dot.to_dot(sample_process)
        assert "digraph" in text
        assert '"p" -> "q" [label="a"]' in text
        assert "doublecircle" in text  # accepting states
        assert "style=dashed" in text  # tau edge

    def test_write_dot(self, simple_chain, tmp_path):
        path = tmp_path / "chain.dot"
        dot.write_dot(simple_chain, path)
        assert path.read_text().startswith("digraph")


class TestMatrices:
    def test_weak_transition_matrices_agree_with_graph_traversal(self, sample_process):
        weak = matrices.weak_transition_matrices(sample_process)
        for action in sample_process.alphabet:
            pairs = matrices.matrix_to_pairs(sample_process, weak[action])
            for state in sample_process.states:
                expected = weak_successors(sample_process, state, action)
                actual = frozenset(dst for src, dst in pairs if src == state)
                assert actual == expected

    def test_epsilon_matrix_is_reflexive(self, sample_process):
        weak = matrices.weak_transition_matrices(sample_process)
        epsilon_pairs = matrices.matrix_to_pairs(sample_process, weak[""])
        for state in sample_process.states:
            assert (state, state) in epsilon_pairs

    def test_boolean_multiply_matches_manual(self):
        left = [[True, False], [False, True]]
        right = [[False, True], [True, False]]
        assert matrices.boolean_multiply(left, right) == [[False, True], [True, False]]

    def test_reflexive_transitive_closure(self):
        matrix = [[False, True, False], [False, False, True], [False, False, False]]
        closure = matrices.reflexive_transitive_closure(matrix)
        assert closure[0][2] is True
        assert closure[2][2] is True
        assert closure[2][0] is False


class TestContentDigest:
    """Content addressing: digest stability under permutation, sensitivity to change."""

    def test_digest_shape(self, sample_process):
        digest = serialization.content_digest(sample_process)
        assert digest.startswith("sha256:")
        assert len(digest) == len("sha256:") + 64

    def test_digest_stable_under_component_permutation(self, sample_process):
        from repro.core.fsp import FSP

        permuted = FSP(
            states=sorted(sample_process.states, reverse=True),
            start=sample_process.start,
            alphabet=sorted(sample_process.alphabet, reverse=True),
            transitions=sorted(sample_process.transitions, reverse=True),
            variables=sample_process.variables,
            extensions=sorted(sample_process.extensions, reverse=True),
        )
        assert serialization.content_digest(permuted) == serialization.content_digest(
            sample_process
        )

    def test_digest_stable_across_serialisation_round_trip(self):
        for seed in range(5):
            process = random_fsp(12, tau_probability=0.3, all_accepting=False, seed=seed)
            reloaded = serialization.loads(serialization.dumps(process))
            assert serialization.content_digest(reloaded) == serialization.content_digest(process)

    def test_digest_differs_on_any_semantic_change(self, sample_process):
        from repro.core.fsp import FSP

        digest = serialization.content_digest(sample_process)
        variants = [
            FSP(  # different start state
                states=sample_process.states,
                start="q",
                alphabet=sample_process.alphabet,
                transitions=sample_process.transitions,
                variables=sample_process.variables,
                extensions=sample_process.extensions,
            ),
            FSP(  # one extension dropped
                states=sample_process.states,
                start=sample_process.start,
                alphabet=sample_process.alphabet,
                transitions=sample_process.transitions,
                variables=sample_process.variables,
                extensions=[("q", "x")],
            ),
            FSP(  # extra observable action in the alphabet
                states=sample_process.states,
                start=sample_process.start,
                alphabet=sample_process.alphabet | {"c"},
                transitions=sample_process.transitions,
                variables=sample_process.variables,
                extensions=sample_process.extensions,
            ),
        ]
        digests = {serialization.content_digest(variant) for variant in variants}
        assert digest not in digests
        assert len(digests) == len(variants)

    def test_canonical_bytes_are_newline_free_and_deterministic(self, sample_process):
        blob = serialization.canonical_bytes(sample_process)
        assert b"\n" not in blob
        assert blob == serialization.canonical_bytes(sample_process)
