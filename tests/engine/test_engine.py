"""Tests for the :class:`repro.engine.Engine` facade: caching, batches, registry."""

from __future__ import annotations

import pytest

from repro.core.errors import ModelClassError
from repro.core.fsp import from_transitions
from repro.core.paper_figures import fig2_language_pair
from repro.engine import (
    Engine,
    Notion,
    NotionResult,
    available_notions,
    check,
    default_engine,
    expression_notions,
    get_notion,
    register_notion,
    reset_default_engine,
    unregister_notion,
)
from repro.utils import serialization


@pytest.fixture
def pair():
    return fig2_language_pair()


@pytest.fixture
def engine():
    return Engine()


class TestCheck:
    def test_answers_match_the_notions(self, engine, pair):
        first, second = pair
        assert engine.check(first, second, "language", align=True).equivalent
        assert not engine.check(first, second, "observational", align=True).equivalent
        assert not engine.check(first, second, "strong", align=True).equivalent
        assert not engine.check(first, second, "failure", align=True).equivalent
        assert engine.check(first, second, "k-observational", align=True, k=1).equivalent
        assert not engine.check(first, second, "k-observational", align=True, k=2).equivalent

    def test_verdict_is_truthy_on_equivalence(self, engine, pair):
        first, _ = pair
        assert engine.check(first, first, "strong")
        assert not engine.check(*pair, "strong", align=True)

    def test_aliases_resolve(self, engine, pair):
        first, _ = pair
        assert engine.check(first, first, "bisimulation").notion == "strong"
        assert engine.check(first, first, "weak").notion == "observational"
        assert engine.check(first, first, "trace").notion == "language"

    def test_unknown_notion_lists_the_registry(self, engine, pair):
        with pytest.raises(ValueError, match="registered notions"):
            engine.check(*pair, "telepathic")

    def test_unknown_parameter_rejected(self, engine, pair):
        with pytest.raises(TypeError, match="does not accept"):
            engine.check(*pair, "strong", depth=3)

    def test_mismatched_alphabets_require_align(self, engine):
        left = from_transitions([("p", "a", "p")], start="p", all_accepting=True)
        right = from_transitions([("q", "b", "q")], start="q", all_accepting=True)
        with pytest.raises(ModelClassError):
            engine.check(left, right, "strong")
        verdict = engine.check(left, right, "strong", align=True)
        assert not verdict.equivalent

    def test_stats_carry_sizes_and_timing(self, engine, pair):
        verdict = engine.check(*pair, "observational", align=True)
        assert verdict.stats.left_states == pair[0].num_states
        assert verdict.stats.seconds >= 0.0
        assert not verdict.stats.from_cache


class TestCaching:
    def test_repeat_check_hits_the_verdict_cache(self, engine, pair):
        cold = engine.check(*pair, "observational", align=True)
        warm = engine.check(*pair, "observational", align=True)
        assert not cold.stats.from_cache
        assert warm.stats.from_cache
        assert warm.equivalent == cold.equivalent
        info = engine.cache_info()
        assert info["hits"] == 1

    def test_structurally_equal_processes_share_one_handle(self, engine, pair):
        first, _ = pair
        copy = from_transitions(
            [(s, a, t) for s, a, t in first.transitions],
            start=first.start,
            alphabet=first.alphabet,
            all_accepting=True,
        )
        assert first == copy
        assert engine.process(first) is engine.process(copy)

    def test_cached_inequivalence_upgrades_to_witness_on_demand(self, engine, pair):
        without = engine.check(*pair, "strong", align=True, witness=False)
        assert without.witness is None
        upgraded = engine.check(*pair, "strong", align=True, witness=True)
        assert upgraded.witness is not None
        again = engine.check(*pair, "strong", align=True, witness=True)
        assert again.stats.from_cache

    def test_params_are_part_of_the_cache_key(self, engine, pair):
        assert engine.check(*pair, "k-observational", align=True, k=1).equivalent
        assert not engine.check(*pair, "k-observational", align=True, k=2).equivalent

    def test_default_valued_params_share_the_cache_entry(self, engine, pair):
        """Explicit defaults (the shim call shape) must not duplicate cache keys."""
        engine.check(*pair, "failure", align=True)
        assert engine.check(*pair, "failure", align=True, max_macro_states=None).stats.from_cache
        engine.check(*pair, "strong", align=True)
        hit = engine.check(
            *pair, "strong", align=True, method="paige-tarjan", require_observable=False
        )
        assert hit.stats.from_cache

    def test_process_cache_is_bounded(self, pair):
        small = Engine(max_processes=2, max_verdicts=2)
        for i in range(4):
            fsp = from_transitions([("p", "a", f"q{i}")], start="p", all_accepting=True)
            small.process(fsp)
        assert small.cache_info()["processes"] == 2

    def test_clear_resets_everything(self, engine, pair):
        engine.check(*pair, "language", align=True)
        engine.clear()
        assert engine.cache_info() == {"processes": 0, "verdicts": 0, "hits": 0, "misses": 0}


class TestCheckMany:
    def test_manifest_shapes(self, engine, pair):
        first, second = pair
        result = engine.check_many(
            [
                (first, second),
                (first, second, "language"),
                {"left": first, "right": second, "notion": "k-observational", "k": 1},
            ]
        )
        assert len(result) == 3
        assert [v.notion for v in result] == ["observational", "language", "k-observational"]
        assert [v.equivalent for v in result] == [False, True, True]
        assert result.summary()["checks"] == 3

    def test_repeated_pairs_hit_the_cache(self, engine, pair):
        result = engine.check_many([pair] * 10, notion="strong")
        assert result.cache_hits == 9
        assert result.num_inequivalent == 10

    def test_paths_are_loaded_once_per_batch(self, engine, pair, tmp_path, monkeypatch):
        import repro.engine.engine as engine_module

        first, second = pair
        left_path = tmp_path / "left.json"
        right_path = tmp_path / "right.json"
        serialization.dump(first, left_path)
        serialization.dump(second, right_path)
        loads = []
        original = serialization.load_process_file
        monkeypatch.setattr(
            engine_module,
            "_parse_check_spec",
            engine_module._parse_check_spec,
        )
        monkeypatch.setattr(
            serialization,
            "load_process_file",
            lambda path: (loads.append(str(path)), original(path))[1],
        )
        result = engine.check_many(
            [(str(left_path), str(right_path)), (str(left_path), str(right_path), "language")]
        )
        assert len(result) == 2
        assert len(loads) == 2  # two distinct files, each loaded exactly once

    def test_bad_entry_reports_the_index(self, engine):
        with pytest.raises(ValueError, match="check #0"):
            engine.check_many([{"left": "only.json"}])
        with pytest.raises(ValueError, match="check #0"):
            engine.check_many([("too", "many", "items", "here")])


class TestMinimize:
    def test_minimize_dispatch(self, engine):
        bloated = from_transitions(
            [("p", "a", "x"), ("p", "a", "y"), ("x", "b", "z"), ("y", "b", "z")],
            start="p",
            all_accepting=True,
        )
        strong_min = engine.minimize(bloated, "strong")
        obs_min = engine.minimize(bloated, "observational")
        assert strong_min.num_states < bloated.num_states
        assert obs_min.num_states <= strong_min.num_states
        with pytest.raises(ValueError, match="minimisation"):
            engine.minimize(bloated, "language")


class TestExpressions:
    def test_expression_checks_match_the_legacy_answers(self, engine):
        assert not engine.check_expressions("a.(b + c)", "a.b + a.c", "strong").equivalent
        assert engine.check_expressions("a.(b + c)", "a.b + a.c", "language").equivalent
        assert not engine.check_expressions("a.(b + c)", "a.b + a.c", "failure").equivalent
        assert engine.check_expressions("a + b", "b + a", "strong").equivalent

    def test_language_expression_witness_is_checkable(self, engine):
        verdict = engine.check_expressions("a.b", "a.c", "language")
        assert not verdict.equivalent
        assert verdict.witness is not None
        assert verdict.verify_witness() is True

    def test_strong_expression_witness_is_checkable(self, engine):
        verdict = engine.check_expressions("a.(b + c)", "a.b + a.c", "strong")
        assert not verdict.equivalent
        assert verdict.verify_witness() is True


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(available_notions()) >= {
            "strong",
            "observational",
            "k-observational",
            "language",
            "failure",
        }
        assert set(expression_notions()) >= {"strong", "observational", "language", "failure"}

    def test_register_and_unregister_a_custom_notion(self, engine, pair):
        class AlwaysEqual(Notion):
            name = "always-equal"
            provides_witness = False
            supports_expressions = False

            def check(self, left, right, want_witness, **params):
                return NotionResult(True)

        register_notion(AlwaysEqual())
        try:
            assert "always-equal" in available_notions()
            assert "always-equal" not in expression_notions()
            assert engine.check(*pair, "always-equal", align=True).equivalent
        finally:
            unregister_notion("always-equal")
        assert "always-equal" not in available_notions()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_notion(get_notion("strong"))


class TestDefaultEngine:
    def test_module_level_check_uses_the_shared_engine(self, pair):
        reset_default_engine()
        try:
            verdict = check(*pair, "language", align=True)
            assert verdict.equivalent
            assert default_engine().cache_info()["misses"] >= 1
        finally:
            reset_default_engine()

    def test_free_function_shims_share_the_default_engine(self, pair):
        from repro.equivalence.strong import strongly_equivalent_processes

        reset_default_engine()
        try:
            first, _ = pair
            assert strongly_equivalent_processes(first, first)
            assert strongly_equivalent_processes(first, first)
            assert default_engine().cache_info()["hits"] >= 1
        finally:
            reset_default_engine()
