"""Engine.check_on_the_fly: verdicts, witnesses and stats for the lazy route."""

from __future__ import annotations

import pytest

from repro.core.errors import StateSpaceLimitError
from repro.core.fsp import from_transitions
from repro.engine import Engine, TraceWitness, check_on_the_fly
from repro.explore import build_implicit
from repro.generators.families import (
    interleaved_cycles_pair,
    interleaved_cycles_product_size,
    token_ring_system,
)


@pytest.fixture()
def engine():
    return Engine()


def test_composed_specs_are_accepted_directly(engine):
    ok, bad = interleaved_cycles_pair([4, 3, 3])
    verdict = engine.check_on_the_fly(ok, bad, "strong")
    assert not verdict.equivalent
    assert verdict.stats.details["route"].startswith("on-the-fly")
    assert verdict.stats.details["pairs_visited"] <= interleaved_cycles_product_size([4, 3, 3])


def test_verified_trace_becomes_a_checkable_witness(engine):
    ok, bad = interleaved_cycles_pair([3, 3])
    verdict = engine.check_on_the_fly(ok, bad, "strong", witness=True)
    assert isinstance(verdict.witness, TraceWitness)
    from repro.explore import compose_eager

    assert verdict.witness.holds(compose_eager(ok), compose_eager(bad))
    assert "snag" in verdict.witness.describe()


def test_witness_false_suppresses_the_certificate(engine):
    ok, bad = interleaved_cycles_pair([3, 3])
    assert engine.check_on_the_fly(ok, bad, "strong", witness=False).witness is None


def test_process_handles_and_implicits_are_accepted(engine):
    fsp = from_transitions([("p", "a", "p")], start="p", all_accepting=True)
    handle = engine.process(fsp)
    implicit = build_implicit(token_ring_system(3))
    assert engine.check_on_the_fly(handle, fsp, "strong").equivalent
    assert engine.check_on_the_fly(implicit, implicit, "observational").equivalent


def test_max_pairs_bound_is_honoured(engine):
    ok, _bad = interleaved_cycles_pair([5, 5, 5])
    with pytest.raises(StateSpaceLimitError):
        engine.check_on_the_fly(ok, ok, "strong", max_pairs=3)


def test_unsupported_notion_raises(engine):
    fsp = from_transitions([("p", "a", "p")], start="p", all_accepting=True)
    with pytest.raises(ValueError, match="strong"):
        engine.check_on_the_fly(fsp, fsp, "language")


def test_module_level_function_uses_the_default_engine():
    fsp = from_transitions([("p", "a", "p")], start="p", all_accepting=True)
    assert check_on_the_fly(fsp, fsp, "strong").equivalent


def test_fsp_operands_keep_verify_witness_working(engine):
    from repro.core.fsp import from_transitions

    left = from_transitions(
        [("s0", "a", "s1"), ("s1", "a", "s0")], start="s0", all_accepting=True
    )
    right = from_transitions([("s0", "a", "s1")], start="s0", all_accepting=True)
    verdict = engine.check_on_the_fly(left, right, "strong", witness=True)
    assert not verdict.equivalent
    assert verdict.left is left and verdict.right is right
    assert verdict.verify_witness() is True


def test_composed_operands_leave_processes_unset(engine):
    ok, bad = interleaved_cycles_pair([3, 3])
    verdict = engine.check_on_the_fly(ok, bad, "strong", witness=True)
    assert verdict.left is None and verdict.right is None
    assert verdict.verify_witness() is None  # nothing materialised to re-check
