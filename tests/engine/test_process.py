"""Tests for the :class:`repro.engine.Process` handle and its artifact caches."""

from __future__ import annotations

import pytest

from repro.core.fsp import from_transitions
from repro.core.paper_figures import fig2_language_pair
from repro.engine import Process
from repro.equivalence.minimize import minimize_observational, minimize_strong
from repro.equivalence.observational import observational_partition
from repro.equivalence.strong import strong_bisimulation_partition
from repro.partition.generalized import Solver
from repro.utils import serialization


@pytest.fixture
def bloated():
    return from_transitions(
        [("p", "a", "x"), ("p", "a", "y"), ("x", "b", "z"), ("y", "b", "z")],
        start="p",
        all_accepting=True,
    )


class TestArtifactCaching:
    def test_artifacts_are_computed_once(self, bloated):
        handle = Process(bloated)
        assert handle.lts() is handle.lts()
        assert handle.weak_kernel() is handle.weak_kernel()
        assert handle.weak_view() is handle.weak_view()
        assert handle.saturated_lts() is handle.saturated_lts()
        assert handle.strong_partition() is handle.strong_partition()
        assert handle.observational_partition() is handle.observational_partition()
        assert handle.minimized_strong() is handle.minimized_strong()
        assert handle.minimized_observational() is handle.minimized_observational()
        assert handle.language_dfa() is handle.language_dfa()

    def test_weak_view_shares_the_kernel(self, bloated):
        handle = Process(bloated)
        assert handle.weak_view().kernel is handle.weak_kernel()

    def test_artifact_summary_tracks_materialisation(self, bloated):
        handle = Process(bloated)
        summary = handle.artifact_summary()
        assert summary["lts"] is False
        assert summary["strong_partitions"] == 0
        handle.minimized_strong()
        summary = handle.artifact_summary()
        assert summary["lts"] is True
        assert summary["strong_partitions"] == 1
        assert summary["minimized_strong"] == 1

    def test_partitions_cached_per_solver(self, bloated):
        handle = Process(bloated)
        by_pt = handle.strong_partition(Solver.PAIGE_TARJAN)
        by_ks = handle.strong_partition("kanellakis-smolka")
        assert by_pt.as_frozen() == by_ks.as_frozen()
        assert handle.artifact_summary()["strong_partitions"] == 2

    def test_solver_accepted_as_string(self, bloated):
        handle = Process(bloated)
        assert handle.strong_partition("paige-tarjan") is handle.strong_partition(
            Solver.PAIGE_TARJAN
        )


class TestAgainstReferenceRoutes:
    def test_partitions_match_free_functions(self, bloated):
        handle = Process(bloated)
        assert (
            handle.strong_partition().as_frozen()
            == strong_bisimulation_partition(bloated).as_frozen()
        )
        assert (
            handle.observational_partition().as_frozen()
            == observational_partition(bloated).as_frozen()
        )

    def test_quotients_match_free_functions(self, bloated):
        handle = Process(bloated)
        assert handle.minimized_strong() == minimize_strong(bloated)
        assert handle.minimized_observational() == minimize_observational(bloated)

    def test_language_dfa_accepts_the_language(self):
        first, _ = fig2_language_pair()
        dfa = Process(first).language_dfa()
        assert dfa.accepts(())
        assert dfa.accepts(("a", "a"))
        assert not dfa.accepts(("a", "a", "a"))


class TestConstructors:
    def test_from_file(self, tmp_path):
        first, _ = fig2_language_pair()
        path = tmp_path / "p.json"
        serialization.dump(first, path)
        assert Process.from_file(path).fsp == first

    def test_from_expression(self):
        handle = Process.from_expression("a.b")
        assert handle.fsp.alphabet == {"a", "b"}
        assert handle.language_dfa().accepts(("a", "b"))

    def test_from_ccs(self):
        handle = Process.from_ccs("a.0")
        assert handle.fsp.num_states == 2

    def test_rejects_non_fsp(self):
        with pytest.raises(TypeError):
            Process("not a process")
